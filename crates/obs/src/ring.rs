//! Lock-free SPSC span ring buffers.
//!
//! A [`SpanRing`] is the bounded staging area between a span producer (one
//! engine shard, or the single driver thread of an unsharded machine) and
//! the deferred serialization that runs at phase barriers. The contract is
//! single-producer/single-consumer: one thread calls [`SpanRing::push`],
//! one thread (possibly the same one, at a barrier) calls
//! [`SpanRing::drain`]. Under that discipline every operation is wait-free
//! and the hot path never takes a lock, never allocates, and never blocks:
//! a full ring *drops* the span and bumps a saturating counter instead.
//!
//! Layout: a power-of-two array of fixed-width slots, each slot four
//! `AtomicU64` words holding an encoded [`Span`] (kind + presence flags +
//! proc, start, end, index). Word-level atomics keep the structure safe
//! Rust end to end — the producer publishes a slot with a release store of
//! the head index, the consumer acquires it before decoding — and the
//! head/tail indices live on their own cache lines so the producer and
//! consumer do not false-share.

use crate::span::{Span, SpanKind};
use bvl_model::{ProcId, Steps};
use std::sync::atomic::{AtomicU64, Ordering};

/// Pad to a cache line so the producer-side and consumer-side indices do
/// not false-share.
#[repr(align(64))]
struct CacheLine(AtomicU64);

/// One encoded span: flags+kind+proc word, start, end, index.
const SLOT_WORDS: usize = 4;

const FLAG_PROC: u64 = 1 << 8;
const FLAG_INDEX: u64 = 1 << 9;

#[inline]
fn encode(span: &Span) -> [u64; SLOT_WORDS] {
    let mut w0 = span.kind as u64;
    if let Some(p) = span.proc {
        w0 |= FLAG_PROC | (u64::from(p.0) << 32);
    }
    if span.index.is_some() {
        w0 |= FLAG_INDEX;
    }
    [
        w0,
        span.start.get(),
        span.end.get(),
        span.index.unwrap_or(0),
    ]
}

#[inline]
fn decode(w: [u64; SLOT_WORDS]) -> Span {
    let kind = SpanKind::ALL[(w[0] & 0xFF) as usize % SpanKind::ALL.len()];
    Span {
        kind,
        start: Steps(w[1]),
        end: Steps(w[2]),
        proc: (w[0] & FLAG_PROC != 0).then(|| ProcId((w[0] >> 32) as u32)),
        index: (w[0] & FLAG_INDEX != 0).then_some(w[3]),
    }
}

/// A fixed-capacity, power-of-two, cache-line-padded SPSC span buffer;
/// see the module docs.
pub struct SpanRing {
    slots: Vec<[AtomicU64; SLOT_WORDS]>,
    mask: u64,
    head: CacheLine,    // next sequence number to publish (producer-owned)
    tail: CacheLine,    // next sequence number to consume (consumer-owned)
    dropped: AtomicU64, // pushes refused because the ring was full
}

impl std::fmt::Debug for SpanRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "SpanRing(capacity={}, len={}, dropped={})",
            self.capacity(),
            self.len(),
            self.dropped()
        )
    }
}

impl SpanRing {
    /// A ring holding at least `capacity` spans (rounded up to the next
    /// power of two, minimum 1).
    pub fn new(capacity: usize) -> SpanRing {
        let cap = capacity.max(1).next_power_of_two();
        SpanRing {
            slots: (0..cap)
                .map(|_| std::array::from_fn(|_| AtomicU64::new(0)))
                .collect(),
            mask: cap as u64 - 1,
            head: CacheLine(AtomicU64::new(0)),
            tail: CacheLine(AtomicU64::new(0)),
            dropped: AtomicU64::new(0),
        }
    }

    /// Slot count (a power of two).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Spans currently buffered (exact under the SPSC discipline).
    pub fn len(&self) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let tail = self.tail.0.load(Ordering::Acquire);
        head.wrapping_sub(tail) as usize
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes refused so far because the ring was full (saturating).
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Producer side: append `span`, or — when the ring is full — drop it,
    /// bump the `dropped` counter, and return `false`. Never blocks.
    #[inline]
    pub fn push(&self, span: &Span) -> bool {
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Acquire);
        if head.wrapping_sub(tail) > self.mask {
            let d = &self.dropped;
            let cur = d.load(Ordering::Relaxed);
            d.store(cur.saturating_add(1), Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[(head & self.mask) as usize];
        let words = encode(span);
        for (cell, w) in slot.iter().zip(words) {
            cell.store(w, Ordering::Relaxed);
        }
        self.head.0.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Consumer side: move every buffered span into `out`, in push order.
    /// Returns how many were drained.
    pub fn drain(&self, out: &mut Vec<Span>) -> usize {
        let head = self.head.0.load(Ordering::Acquire);
        let mut tail = self.tail.0.load(Ordering::Relaxed);
        let n = head.wrapping_sub(tail) as usize;
        out.reserve(n);
        while tail != head {
            let slot = &self.slots[(tail & self.mask) as usize];
            let words = std::array::from_fn(|i| slot[i].load(Ordering::Relaxed));
            out.push(decode(words));
            tail = tail.wrapping_add(1);
        }
        self.tail.0.store(tail, Ordering::Release);
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(i: u64) -> Span {
        Span::new(SpanKind::Stall, Steps(i), Steps(i + 2))
            .on(ProcId(i as u32 * 3))
            .at_index(i * 7)
    }

    #[test]
    fn encode_decode_roundtrips_every_shape() {
        let shapes = [
            Span::new(SpanKind::Superstep, Steps(0), Steps(9)),
            Span::new(SpanKind::LocalWork, Steps(3), Steps(5)).on(ProcId(0)),
            Span::new(SpanKind::Routing, Steps(1), Steps(4)).at_index(0),
            Span::new(SpanKind::CbCombine, Steps(u64::MAX - 1), Steps(u64::MAX))
                .on(ProcId(u32::MAX))
                .at_index(u64::MAX),
        ];
        for s in shapes {
            assert_eq!(decode(encode(&s)), s);
        }
    }

    #[test]
    fn push_drain_preserves_order() {
        let ring = SpanRing::new(8);
        for i in 0..5 {
            assert!(ring.push(&span(i)));
        }
        assert_eq!(ring.len(), 5);
        let mut out = Vec::new();
        assert_eq!(ring.drain(&mut out), 5);
        assert_eq!(out, (0..5).map(span).collect::<Vec<_>>());
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn full_ring_drops_instead_of_blocking() {
        let ring = SpanRing::new(4);
        for i in 0..4 {
            assert!(ring.push(&span(i)));
        }
        assert!(!ring.push(&span(4)));
        assert!(!ring.push(&span(5)));
        assert_eq!(ring.dropped(), 2);
        // The first four are intact; post-drain pushes succeed again.
        let mut out = Vec::new();
        ring.drain(&mut out);
        assert_eq!(out.len(), 4);
        assert!(ring.push(&span(6)));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(SpanRing::new(0).capacity(), 1);
        assert_eq!(SpanRing::new(1).capacity(), 1);
        assert_eq!(SpanRing::new(3).capacity(), 4);
        assert_eq!(SpanRing::new(1000).capacity(), 1024);
    }

    #[test]
    fn wraps_around_many_times() {
        let ring = SpanRing::new(4);
        let mut out = Vec::new();
        for round in 0..50u64 {
            for i in 0..3 {
                assert!(ring.push(&span(round * 3 + i)));
            }
            ring.drain(&mut out);
        }
        assert_eq!(out.len(), 150);
        assert!(out.iter().enumerate().all(|(i, s)| s.start == Steps(i as u64)));
    }

    #[test]
    fn cross_thread_producer_consumer() {
        let ring = std::sync::Arc::new(SpanRing::new(64));
        let producer = {
            let ring = ring.clone();
            std::thread::spawn(move || {
                let mut pushed = 0u64;
                for i in 0..10_000 {
                    if ring.push(&span(i)) {
                        pushed += 1;
                    }
                }
                pushed
            })
        };
        let mut out = Vec::new();
        while !producer.is_finished() {
            ring.drain(&mut out);
        }
        ring.drain(&mut out);
        let pushed = producer.join().expect("producer");
        assert_eq!(out.len() as u64, pushed);
        assert_eq!(pushed + ring.dropped(), 10_000);
        // Drained spans decode intact (monotone starts, correct fields).
        let mut prev = None;
        for s in &out {
            assert_eq!(s.end, s.start + Steps(2));
            if let Some(p) = prev {
                assert!(s.start > p);
            }
            prev = Some(s.start);
        }
    }
}

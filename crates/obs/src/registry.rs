//! The span/metrics registry.
//!
//! A [`Registry`] is a cheap cloneable handle that engines thread through
//! their hot paths. Disabled (the default) it is a `None` — every
//! instrumentation site compiles to a single branch on that option and
//! touches no memory. Enabled, it records at an execution [`Tier`]:
//!
//! * **per-processor counters** — a flat `p × N` array of `AtomicU64`s,
//!   lock-free, indexed by [`Counter`] (`CountersOnly` and up);
//! * **fixed-bucket histograms** — power-of-two latency buckets plus count
//!   and sum, also plain atomics, indexed by [`Hist`];
//! * **a span plane** — spans admitted by the tier's deterministic
//!   [`Sampler`] land in a lock-free SPSC [`SpanRing`] and are moved to
//!   the serialization sink in batches at phase barriers
//!   ([`Registry::flush_spans`]); sharded engines stage into their own
//!   per-shard rings and deposit via [`Registry::absorb_spans`]. A full
//!   ring drops the span and bumps [`Registry::spans_dropped`] — the
//!   observability plane never blocks the run it is observing.
//!
//! The handle carries an *effective* tier at or below the tier the
//! registry was built with ([`Registry::at_tier`]), so one shared
//! registry can serve runs that request less observability without any
//! shared-state mutation. [`Registry::spans`] returns the log in a
//! canonical content order (start, end, kind, proc, index) — emission
//! interleaving across shards never shows in the output, which is what
//! keeps exported traces bit-identical at any shard count.
//!
//! All writes saturate rather than panic: observability must never abort a
//! run it is observing.

use crate::ring::SpanRing;
use crate::span::Span;
use crate::tier::{Sampler, Tier};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use bvl_model::ProcId;

/// Per-processor counter slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Messages submitted to the medium.
    Submitted,
    /// Messages delivered into an input buffer.
    Delivered,
    /// Messages acquired by the receiving processor.
    Acquired,
    /// Stall windows entered (LogP Stalling Rule).
    StallEpisodes,
    /// Total steps spent stalled.
    StallSteps,
    /// Local operations executed.
    LocalOps,
    /// Duplicate deliveries dropped at the input buffer (adversarial media
    /// replay a message; the engine deduplicates by message id).
    Duplicates,
    /// Result-store cells served from cache (`bvl-lab` scheduler; recorded
    /// on processor 0 — the service is not a per-processor machine).
    CacheHits,
    /// Result-store cells that had to be computed (`bvl-lab` scheduler).
    CacheMisses,
}

impl Counter {
    /// Every counter, for iteration in reports.
    pub const ALL: [Counter; 9] = [
        Counter::Submitted,
        Counter::Delivered,
        Counter::Acquired,
        Counter::StallEpisodes,
        Counter::StallSteps,
        Counter::LocalOps,
        Counter::Duplicates,
        Counter::CacheHits,
        Counter::CacheMisses,
    ];

    /// Stable snake_case label.
    pub const fn as_str(self) -> &'static str {
        match self {
            Counter::Submitted => "submitted",
            Counter::Delivered => "delivered",
            Counter::Acquired => "acquired",
            Counter::StallEpisodes => "stall_episodes",
            Counter::StallSteps => "stall_steps",
            Counter::LocalOps => "local_ops",
            Counter::Duplicates => "duplicates",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
        }
    }

    const COUNT: usize = Counter::ALL.len();

    #[inline]
    fn slot(self) -> usize {
        match self {
            Counter::Submitted => 0,
            Counter::Delivered => 1,
            Counter::Acquired => 2,
            Counter::StallEpisodes => 3,
            Counter::StallSteps => 4,
            Counter::LocalOps => 5,
            Counter::Duplicates => 6,
            Counter::CacheHits => 7,
            Counter::CacheMisses => 8,
        }
    }
}

/// Histogram slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Submit-to-deliver latency of each message, in steps.
    DeliveryLatency,
    /// Length of each stall window, in steps.
    StallDuration,
    /// Per-processor barrier wait (`w_max - w_i`) per superstep.
    BarrierWait,
    /// Total cost of each superstep.
    SuperstepCost,
    /// Wall-clock microseconds spent computing one result-store cell miss
    /// (`bvl-lab` scheduler).
    CellCompute,
    /// Wall-clock microseconds spent serving one HTTP request (`bvl-lab`
    /// front end).
    ServeLatency,
}

impl Hist {
    /// Every histogram, for iteration in reports.
    pub const ALL: [Hist; 6] = [
        Hist::DeliveryLatency,
        Hist::StallDuration,
        Hist::BarrierWait,
        Hist::SuperstepCost,
        Hist::CellCompute,
        Hist::ServeLatency,
    ];

    /// Stable snake_case label.
    pub const fn as_str(self) -> &'static str {
        match self {
            Hist::DeliveryLatency => "delivery_latency",
            Hist::StallDuration => "stall_duration",
            Hist::BarrierWait => "barrier_wait",
            Hist::SuperstepCost => "superstep_cost",
            Hist::CellCompute => "cell_compute_us",
            Hist::ServeLatency => "serve_latency_us",
        }
    }

    const COUNT: usize = Hist::ALL.len();

    #[inline]
    fn slot(self) -> usize {
        match self {
            Hist::DeliveryLatency => 0,
            Hist::StallDuration => 1,
            Hist::BarrierWait => 2,
            Hist::SuperstepCost => 3,
            Hist::CellCompute => 4,
            Hist::ServeLatency => 5,
        }
    }
}

/// Number of power-of-two buckets: bucket `i` holds values whose bit length
/// is `i` (bucket 0 holds the value 0), so bucket upper bounds are
/// `0, 1, 3, 7, …, u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

/// Ceiling on the default span staging-ring capacity (power of two).
/// [`Registry::tiered`] sizes rings as `4·procs` rounded up to a power of
/// two, clamped to `[256, DEFAULT_RING_CAPACITY]` — comfortably above the
/// largest per-barrier burst the engines emit at `Full` tier (`2·procs+2`
/// spans per BSP superstep) without paying a 128 KiB zeroed allocation on
/// every small-machine run. Anything beyond capacity is dropped, counted,
/// and reported — never blocked on.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// The procs-scaled default staging capacity (see [`DEFAULT_RING_CAPACITY`]).
fn default_ring_capacity(procs: usize) -> usize {
    (4 * procs.max(64)).next_power_of_two().min(DEFAULT_RING_CAPACITY)
}

#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`.
#[inline]
fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistCells {
    buckets: Vec<AtomicU64>, // HIST_BUCKETS entries
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCells {
    fn new() -> HistCells {
        HistCells {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Read-only snapshot of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// `(inclusive upper bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or `None` when the histogram is empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bound);
            }
        }
        self.buckets.last().map(|&(b, _)| b)
    }
}

/// Add `n` to an atomic cell, clamping at `u64::MAX` instead of wrapping.
fn saturating_fetch_add(cell: &AtomicU64, n: u64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = cur.saturating_add(n);
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(seen) => cur = seen,
        }
    }
}

/// Plain (non-atomic) histogram cells inside a [`CounterBlock`]. Inline
/// arrays: a whole block is one heap allocation (the counter cells), not
/// one per histogram. No staged `count` — the observation count is the
/// bucket total, derived once at absorb time instead of maintained per
/// observation.
#[derive(Clone, Copy)]
struct LocalHist {
    buckets: [u64; HIST_BUCKETS],
    sum: u64,
}

impl LocalHist {
    fn new() -> LocalHist {
        LocalHist {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

/// Thread-local staging area for counters and histogram observations.
///
/// The shared [`Registry`] cells are atomics so every handle can read a
/// consistent snapshot at any time, but an atomic read-modify-write on the
/// engines' per-message path is an order of magnitude more expensive than a
/// plain add. A `CounterBlock` is the counter analogue of the per-shard
/// [`SpanRing`]: each engine shard (or single driver thread) owns one,
/// records into plain `u64` cells while it runs, and settles the whole
/// block into the shared registry with [`Registry::absorb_counters`] at its
/// phase barrier — one atomic add per *touched* cell per barrier instead of
/// one per event. Obtain one sized for a registry via
/// [`Registry::counter_block`].
///
/// Recording into a block is infallible and never blocks; adds and sums
/// saturate exactly like the registry's own cells.
pub struct CounterBlock {
    procs: usize,
    counters: Vec<u64>,              // procs * Counter::COUNT, proc-major
    hists: [LocalHist; Hist::COUNT], // inline: no per-histogram allocation
}

impl std::fmt::Debug for CounterBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "CounterBlock(procs={})", self.procs)
    }
}

impl CounterBlock {
    /// An empty block sized for a `procs`-processor machine.
    pub fn new(procs: usize) -> CounterBlock {
        let procs = procs.max(1);
        CounterBlock {
            procs,
            counters: vec![0; procs * Counter::COUNT],
            hists: [LocalHist::new(); Hist::COUNT],
        }
    }

    /// Stage `n` onto a per-processor counter (saturating). Out-of-range
    /// processors fold onto the last slot, mirroring [`Registry::add`].
    #[inline]
    pub fn add(&mut self, proc: ProcId, c: Counter, n: u64) {
        let p = proc.index().min(self.procs - 1);
        let cell = &mut self.counters[p * Counter::COUNT + c.slot()];
        *cell = cell.saturating_add(n);
    }

    /// Stage one histogram observation.
    #[inline]
    pub fn observe(&mut self, h: Hist, value: u64) {
        let cells = &mut self.hists[h.slot()];
        cells.buckets[bucket_of(value)] += 1;
        cells.sum = cells.sum.saturating_add(value);
    }

    /// Stage a batch of observations on one histogram. Equivalent to
    /// calling [`CounterBlock::observe`] per value, but the histogram is
    /// resolved once and the sum is folded locally with a single
    /// saturating step at the end — the right shape for engines that
    /// produce a whole phase's observations at a barrier (the BSP machine
    /// records every processor's barrier wait per superstep this way).
    #[inline]
    pub fn observe_many<I: IntoIterator<Item = u64>>(&mut self, h: Hist, values: I) {
        let cells = &mut self.hists[h.slot()];
        // Zero is the overwhelmingly common observation in barrier-wait
        // style batches (the slowest processor always waits zero, and
        // uniform supersteps wait zero everywhere), and zeros touch
        // neither the sum nor any bucket but the first — count them in a
        // register and land them in one add.
        let mut zeros = 0u64;
        let mut sum = 0u128;
        for v in values {
            if v == 0 {
                zeros += 1;
            } else {
                cells.buckets[bucket_of(v)] += 1;
                sum += u128::from(v);
            }
        }
        cells.buckets[0] += zeros;
        cells.sum = cells.sum.saturating_add(u64::try_from(sum).unwrap_or(u64::MAX));
    }

    /// Reset every cell to zero (done automatically by
    /// [`Registry::absorb_counters`]).
    pub fn clear(&mut self) {
        self.counters.fill(0);
        for h in &mut self.hists {
            h.buckets = [0; HIST_BUCKETS];
            h.sum = 0;
        }
    }
}

struct Inner {
    procs: usize,
    sampler: Sampler,
    ring_capacity: usize,
    counters: Vec<AtomicU64>, // procs * Counter::COUNT, proc-major
    hists: Vec<HistCells>,    // Hist::COUNT entries
    // Staging lane for single-driver engines; allocated on first span so
    // counter-only (and span-free) runs never pay for the slots.
    ring: OnceLock<SpanRing>,
    sink: Mutex<Vec<Span>>,    // deferred serialization target
    extern_dropped: AtomicU64, // drops reported by per-shard rings
}

impl Inner {
    fn new(procs: usize, tier: Tier, sample_key: u64, ring_capacity: usize) -> Inner {
        let procs = procs.max(1);
        Inner {
            procs,
            sampler: Sampler::new(tier, sample_key),
            ring_capacity: ring_capacity.max(1).next_power_of_two(),
            counters: (0..procs * Counter::COUNT).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..Hist::COUNT).map(|_| HistCells::new()).collect(),
            ring: OnceLock::new(),
            sink: Mutex::new(Vec::new()),
            extern_dropped: AtomicU64::new(0),
        }
    }

    fn ring(&self) -> &SpanRing {
        self.ring.get_or_init(|| SpanRing::new(self.ring_capacity))
    }
}

/// Cheap cloneable handle to the metrics store; see the module docs.
#[derive(Clone)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
    /// Effective tier of this handle (≤ the construction tier).
    tier: Tier,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry::disabled()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Registry(disabled)"),
            Some(i) => write!(
                f,
                "Registry(procs={}, tier={}, spans={})",
                i.procs,
                self.tier.label(),
                self.spans().len()
            ),
        }
    }
}

impl Registry {
    /// The no-op registry (the default). Every recording call is a single
    /// branch and returns immediately.
    pub fn disabled() -> Registry {
        Registry {
            inner: None,
            tier: Tier::Off,
        }
    }

    /// A recording registry sized for a `procs`-processor machine,
    /// recording everything ([`Tier::Full`]).
    pub fn enabled(procs: usize) -> Registry {
        Registry::tiered(procs, Tier::Full, 0)
    }

    /// A registry recording at `tier`. `sample_key` keys the deterministic
    /// span sampler at [`Tier::Sampled`] (derive it from the run's
    /// `SeedStream` lane via `SeedStream::lane_key` so one cell keeps the
    /// same subset at any shard or thread count); it is ignored at the
    /// other tiers.
    pub fn tiered(procs: usize, tier: Tier, sample_key: u64) -> Registry {
        Registry::tiered_with_capacity(procs, tier, sample_key, default_ring_capacity(procs))
    }

    /// [`Registry::tiered`] with an explicit span-ring capacity (rounded
    /// up to a power of two). Small capacities force overflow — useful for
    /// testing the drop path; production code uses the default.
    pub fn tiered_with_capacity(
        procs: usize,
        tier: Tier,
        sample_key: u64,
        ring_capacity: usize,
    ) -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::new(procs, tier, sample_key, ring_capacity))),
            tier,
        }
    }

    /// A handle to the same store recording at `min(tier, self.tier)`:
    /// narrower handles share counters and spans with wider ones, so a
    /// per-run tier choice never forks the data.
    #[must_use]
    pub fn at_tier(&self, tier: Tier) -> Registry {
        Registry {
            inner: self.inner.clone(),
            tier: self.tier.min(tier),
        }
    }

    /// This handle's effective tier ([`Tier::Off`] when disabled).
    pub fn tier(&self) -> Tier {
        if self.inner.is_some() {
            self.tier
        } else {
            Tier::Off
        }
    }

    /// Whether this handle records anything (counters or more).
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some() && self.tier.counters_on()
    }

    /// Whether this handle records spans (i.e. the tier is `Sampled` or
    /// `Full`). Engines gate span *construction* on this so lower tiers
    /// pay nothing for the spans they would not keep.
    #[inline]
    pub fn spans_enabled(&self) -> bool {
        self.inner.is_some() && self.tier.spans_on()
    }

    /// Whether `span` is in this handle's kept subset: always at `Full`,
    /// a deterministic content-keyed choice at `Sampled`, never below.
    /// Sharded engines staging spans in their own rings call this before
    /// pushing, so sampling happens at record time on every path.
    #[inline]
    pub fn admits(&self, span: &Span) -> bool {
        match &self.inner {
            Some(inner) if self.tier.spans_on() => inner.sampler.admits(span),
            _ => false,
        }
    }

    /// Phase-granular sampling decision (see [`Sampler::admits_phase`]):
    /// whether the burst of spans anchored to phase `index` is kept.
    /// Engines that emit all of a phase's spans at one barrier check this
    /// once and push the admitted burst with [`Registry::span_admitted`],
    /// skipping the per-span sampler entirely.
    #[inline]
    pub fn admits_phase(&self, index: u64) -> bool {
        match &self.inner {
            Some(inner) if self.tier.spans_on() => inner.sampler.admits_phase(index),
            _ => false,
        }
    }

    /// Stage a span whose phase was already admitted by
    /// [`Registry::admits_phase`] — tier-gated but not re-sampled.
    /// Single-producer discipline, like [`Registry::span`].
    #[inline]
    pub fn span_admitted(&self, span: Span) {
        if let Some(inner) = &self.inner {
            if self.tier.spans_on() {
                inner.ring().push(&span);
            }
        }
    }

    /// The configured span-ring capacity (per-shard rings use the same
    /// size as the registry's own staging lane). 0 when disabled.
    pub fn ring_capacity(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.ring_capacity)
    }

    /// Number of processor slots (0 when disabled).
    pub fn procs(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.procs)
    }

    /// Add `n` to a per-processor counter. Out-of-range processors are
    /// folded onto the last slot rather than panicking.
    #[inline]
    pub fn add(&self, proc: ProcId, c: Counter, n: u64) {
        if !self.tier.counters_on() {
            return;
        }
        if let Some(inner) = &self.inner {
            let p = (proc.index()).min(inner.procs - 1);
            inner.counters[p * Counter::COUNT + c.slot()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        if !self.tier.counters_on() {
            return;
        }
        if let Some(inner) = &self.inner {
            let cells = &inner.hists[h.slot()];
            cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            // Saturating accumulate: a wrapped sum would silently corrupt
            // attribution, a panic would abort the observed run.
            saturating_fetch_add(&cells.sum, value);
        }
    }

    /// A fresh [`CounterBlock`] sized for this registry, or `None` when
    /// this handle records no counters (so the engine hot path can skip
    /// staging entirely with one `Option` check).
    pub fn counter_block(&self) -> Option<CounterBlock> {
        match &self.inner {
            Some(inner) if self.tier.counters_on() => Some(CounterBlock::new(inner.procs)),
            _ => None,
        }
    }

    /// Phase-barrier hook for counters: fold a staged [`CounterBlock`]
    /// into the shared cells — one atomic add per touched cell — and clear
    /// the block for the next phase. Blocks sized for more processors than
    /// the registry fold their tail onto the last slot, mirroring
    /// [`Registry::add`].
    pub fn absorb_counters(&self, block: &mut CounterBlock) {
        if let Some(inner) = &self.inner {
            if self.tier.counters_on() {
                if block.procs == inner.procs {
                    // Matched layout (the block came from this registry):
                    // fold cell-for-cell. Per-processor cells are
                    // single-writer — each processor's counters are only
                    // ever advanced by the shard that owns it, and absorbs
                    // happen at barriers on the driver thread — so a
                    // relaxed read-modify-write pair is enough; readers
                    // still see atomic snapshots.
                    for (cell, &v) in inner.counters.iter().zip(&block.counters) {
                        if v != 0 {
                            // Same wrapping semantics as `Registry::add`.
                            let cur = cell.load(Ordering::Relaxed);
                            cell.store(cur.wrapping_add(v), Ordering::Relaxed);
                        }
                    }
                } else {
                    for (i, &v) in block.counters.iter().enumerate() {
                        if v != 0 {
                            let (p, c) = (i / Counter::COUNT, i % Counter::COUNT);
                            let p = p.min(inner.procs - 1);
                            inner.counters[p * Counter::COUNT + c].fetch_add(v, Ordering::Relaxed);
                        }
                    }
                }
                for (h, local) in block.hists.iter().enumerate() {
                    let cells = &inner.hists[h];
                    let mut count = 0u64;
                    for (b, &n) in local.buckets.iter().enumerate() {
                        if n != 0 {
                            count += n;
                            cells.buckets[b].fetch_add(n, Ordering::Relaxed);
                        }
                    }
                    if count != 0 {
                        cells.count.fetch_add(count, Ordering::Relaxed);
                        saturating_fetch_add(&cells.sum, local.sum);
                    }
                }
            }
        }
        block.clear();
    }

    /// Record a span: sampled by the tier, staged in the registry's own
    /// SPSC ring. Single-producer discipline — this path is for the one
    /// driver thread of an unsharded run; engine shards stage into their
    /// own [`SpanRing`]s and deposit with [`Registry::absorb_spans`]. A
    /// full ring drops the span and counts it; call
    /// [`Registry::flush_spans`] at phase barriers to keep headroom.
    #[inline]
    pub fn span(&self, span: Span) {
        if let Some(inner) = &self.inner {
            if self.tier.spans_on() && inner.sampler.admits(&span) {
                inner.ring().push(&span);
            }
        }
    }

    /// Phase-barrier hook: move the staging ring's contents into the
    /// serialization sink (one lock acquisition per barrier, amortized
    /// over every span recorded since the previous one).
    pub fn flush_spans(&self) {
        if let Some(inner) = &self.inner {
            if let Some(ring) = inner.ring.get() {
                if !ring.is_empty() {
                    let mut sink = inner.sink.lock().expect("span sink poisoned");
                    ring.drain(&mut sink);
                }
            }
        }
    }

    /// Deposit a batch drained from a per-shard ring into the sink (the
    /// batch is emptied). Order across shards does not matter:
    /// [`Registry::spans`] canonicalizes.
    pub fn absorb_spans(&self, batch: &mut Vec<Span>) {
        if let Some(inner) = &self.inner {
            if !batch.is_empty() {
                let mut sink = inner.sink.lock().expect("span sink poisoned");
                sink.append(batch);
            }
        }
        batch.clear();
    }

    /// Fold drops observed by a per-shard ring into
    /// [`Registry::spans_dropped`] (saturating).
    pub fn note_spans_dropped(&self, n: u64) {
        if n == 0 {
            return;
        }
        if let Some(inner) = &self.inner {
            saturating_fetch_add(&inner.extern_dropped, n);
        }
    }

    /// Spans dropped because a ring was full (registry staging lane plus
    /// every per-shard ring that reported in). Zero is the healthy state;
    /// nonzero means the trace is a prefix-sampled subset and the ring
    /// capacity (or the tier) should come down.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| {
            i.ring
                .get()
                .map_or(0, SpanRing::dropped)
                .saturating_add(i.extern_dropped.load(Ordering::Relaxed))
        })
    }

    /// Total of a counter across all processors.
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            (0..inner.procs)
                .map(|p| inner.counters[p * Counter::COUNT + c.slot()].load(Ordering::Relaxed))
                .fold(0u64, u64::saturating_add)
        })
    }

    /// A counter's value for one processor.
    pub fn counter_for(&self, proc: ProcId, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            let p = proc.index().min(inner.procs - 1);
            inner.counters[p * Counter::COUNT + c.slot()].load(Ordering::Relaxed)
        })
    }

    /// Snapshot of one histogram (empty when disabled).
    pub fn histogram(&self, h: Hist) -> HistSnapshot {
        let Some(inner) = &self.inner else {
            return HistSnapshot::default();
        };
        let cells = &inner.hists[h.slot()];
        let buckets = cells
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_bound(i), n))
            })
            .collect();
        HistSnapshot {
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Copy of the span log in canonical content order — `(start, end,
    /// kind, proc, index)` — which is independent of emission
    /// interleaving, so two runs that record the same span *set* render
    /// the same log regardless of shard or thread count. Flushes the
    /// staging ring first. Empty when disabled.
    pub fn spans(&self) -> Vec<Span> {
        let Some(inner) = &self.inner else {
            return Vec::new();
        };
        self.flush_spans();
        let mut spans = inner.sink.lock().expect("span sink poisoned").clone();
        spans.sort_by_key(span_sort_key);
        spans
    }
}

/// The canonical content order used by [`Registry::spans`]. Total on span
/// content: two spans compare equal only if they are field-for-field
/// identical, so the sort is deterministic for any emission interleaving.
fn span_sort_key(s: &Span) -> (u64, u64, u8, bool, u32, bool, u64) {
    (
        s.start.get(),
        s.end.get(),
        s.kind as u8,
        s.proc.is_some(),
        s.proc.map_or(0, |p| p.0),
        s.index.is_some(),
        s.index.unwrap_or(0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use bvl_model::Steps;

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        r.add(ProcId(0), Counter::Submitted, 5);
        r.observe(Hist::DeliveryLatency, 9);
        r.span(Span::new(SpanKind::Stall, Steps(0), Steps(1)));
        assert!(!r.is_enabled());
        assert!(!r.spans_enabled());
        assert_eq!(r.tier(), Tier::Off);
        assert_eq!(r.counter(Counter::Submitted), 0);
        assert_eq!(r.histogram(Hist::DeliveryLatency).count, 0);
        assert!(r.spans().is_empty());
        assert_eq!(r.spans_dropped(), 0);
    }

    #[test]
    fn counters_accumulate_per_proc() {
        let r = Registry::enabled(4);
        r.add(ProcId(1), Counter::Delivered, 3);
        r.add(ProcId(1), Counter::Delivered, 2);
        r.add(ProcId(3), Counter::Delivered, 1);
        // Out-of-range folds onto the last slot instead of panicking.
        r.add(ProcId(99), Counter::Delivered, 1);
        assert_eq!(r.counter_for(ProcId(1), Counter::Delivered), 5);
        assert_eq!(r.counter_for(ProcId(3), Counter::Delivered), 2);
        assert_eq!(r.counter(Counter::Delivered), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::enabled(1);
        for v in [0u64, 1, 1, 2, 7, 8] {
            r.observe(Hist::StallDuration, v);
        }
        let h = r.histogram(Hist::StallDuration);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 19);
        // Buckets: 0 -> bound 0 (1), 1 -> bound 1 (2), 2 -> bound 3 (1),
        // 7 -> bound 7 (1), 8 -> bound 15 (1).
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (3, 1), (7, 1), (15, 1)]);
        assert_eq!(h.quantile_bound(0.5), Some(1));
        assert_eq!(h.quantile_bound(1.0), Some(15));
        assert!((h.mean() - 19.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn spans_kept_in_order_and_shared_by_clones() {
        let r = Registry::enabled(2);
        let r2 = r.clone();
        r.span(Span::new(SpanKind::CbCombine, Steps(0), Steps(4)));
        r2.span(Span::new(SpanKind::CbBroadcast, Steps(4), Steps(8)));
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::CbCombine);
        assert_eq!(spans[1].kind, SpanKind::CbBroadcast);
    }

    #[test]
    fn span_order_is_canonical_not_emission() {
        let r = Registry::enabled(2);
        r.span(Span::new(SpanKind::Stall, Steps(9), Steps(12)).on(ProcId(1)));
        r.span(Span::new(SpanKind::Stall, Steps(2), Steps(5)).on(ProcId(0)));
        r.span(Span::new(SpanKind::Stall, Steps(2), Steps(5)).on(ProcId(1)));
        let spans = r.spans();
        assert_eq!(spans[0].start, Steps(2));
        assert_eq!(spans[0].proc, Some(ProcId(0)));
        assert_eq!(spans[1].proc, Some(ProcId(1)));
        assert_eq!(spans[2].start, Steps(9));
        // Reading twice is stable (spans stay in the sink).
        assert_eq!(r.spans(), spans);
    }

    #[test]
    fn counters_only_tier_drops_spans_keeps_counters() {
        let r = Registry::tiered(2, Tier::CountersOnly, 0);
        r.add(ProcId(0), Counter::LocalOps, 7);
        r.observe(Hist::SuperstepCost, 11);
        r.span(Span::new(SpanKind::Superstep, Steps(0), Steps(11)));
        assert!(r.is_enabled());
        assert!(!r.spans_enabled());
        assert_eq!(r.counter(Counter::LocalOps), 7);
        assert_eq!(r.histogram(Hist::SuperstepCost).count, 1);
        assert!(r.spans().is_empty());
        // Dropped-before-construction spans are not "dropped" overflow.
        assert_eq!(r.spans_dropped(), 0);
    }

    #[test]
    fn off_tier_handle_on_enabled_store_is_inert() {
        let full = Registry::enabled(2);
        let off = full.at_tier(Tier::Off);
        assert!(!off.is_enabled());
        off.add(ProcId(0), Counter::LocalOps, 5);
        off.span(Span::new(SpanKind::Superstep, Steps(0), Steps(1)));
        assert_eq!(full.counter(Counter::LocalOps), 0);
        assert!(full.spans().is_empty());
        // The wide handle still records into the shared store.
        full.add(ProcId(0), Counter::LocalOps, 2);
        assert_eq!(off.counter(Counter::LocalOps), 2, "reads ignore the tier");
    }

    #[test]
    fn at_tier_narrows_never_widens() {
        let counters = Registry::tiered(1, Tier::CountersOnly, 0);
        assert_eq!(counters.at_tier(Tier::Full).tier(), Tier::CountersOnly);
        let sampled = Registry::tiered(1, Tier::Sampled { rate: 8 }, 3);
        assert_eq!(
            sampled.at_tier(Tier::Sampled { rate: 32 }).tier(),
            Tier::Sampled { rate: 32 }
        );
        assert_eq!(sampled.at_tier(Tier::Full).tier(), Tier::Sampled { rate: 8 });
    }

    #[test]
    fn sampled_tier_keeps_a_deterministic_subset() {
        let spans: Vec<Span> = (0..512)
            .map(|i| Span::new(SpanKind::Stall, Steps(i), Steps(i + 2)).on(ProcId((i % 8) as u32)))
            .collect();
        let run = |order_rev: bool| {
            let r = Registry::tiered(8, Tier::Sampled { rate: 4 }, 99);
            let iter: Box<dyn Iterator<Item = &Span>> = if order_rev {
                Box::new(spans.iter().rev())
            } else {
                Box::new(spans.iter())
            };
            for s in iter {
                r.span(*s);
            }
            r.spans()
        };
        let fwd = run(false);
        let rev = run(true);
        assert_eq!(fwd, rev, "kept subset is emission-order independent");
        assert!(!fwd.is_empty() && fwd.len() < spans.len());
    }

    #[test]
    fn overflow_drops_and_counts_instead_of_blocking() {
        let r = Registry::tiered_with_capacity(1, Tier::Full, 0, 4);
        for i in 0..10u64 {
            r.span(Span::new(SpanKind::Stall, Steps(i), Steps(i + 1)));
        }
        assert_eq!(r.spans_dropped(), 6);
        assert_eq!(r.spans().len(), 4);
        // After a flush the ring has headroom again.
        r.span(Span::new(SpanKind::Stall, Steps(90), Steps(91)));
        assert_eq!(r.spans().len(), 5);
        r.note_spans_dropped(3);
        assert_eq!(r.spans_dropped(), 9);
    }

    #[test]
    fn absorb_spans_deposits_shard_batches() {
        let r = Registry::enabled(4);
        let mut batch = vec![
            Span::new(SpanKind::Stall, Steps(5), Steps(9)).on(ProcId(3)),
            Span::new(SpanKind::Stall, Steps(1), Steps(2)).on(ProcId(2)),
        ];
        r.absorb_spans(&mut batch);
        assert!(batch.is_empty());
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].start, Steps(1));
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
    }
}

//! The span/metrics registry.
//!
//! A [`Registry`] is a cheap cloneable handle that engines thread through
//! their hot paths. Disabled (the default) it is a `None` — every
//! instrumentation site compiles to a single branch on that option and
//! touches no memory. Enabled, it holds:
//!
//! * **per-processor counters** — a flat `p × N` array of `AtomicU64`s,
//!   lock-free, indexed by [`Counter`];
//! * **fixed-bucket histograms** — power-of-two latency buckets plus count
//!   and sum, also plain atomics, indexed by [`Hist`];
//! * **a span log** — an append-only `Vec<Span>` behind a mutex. Spans are
//!   emitted by the single driver thread of a run, so the lock is
//!   uncontended; counters and histograms stay lock-free so parallel sweep
//!   cells can share a registry if they choose to.
//!
//! All writes saturate rather than panic: observability must never abort a
//! run it is observing.

use crate::span::Span;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use bvl_model::ProcId;

/// Per-processor counter slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Counter {
    /// Messages submitted to the medium.
    Submitted,
    /// Messages delivered into an input buffer.
    Delivered,
    /// Messages acquired by the receiving processor.
    Acquired,
    /// Stall windows entered (LogP Stalling Rule).
    StallEpisodes,
    /// Total steps spent stalled.
    StallSteps,
    /// Local operations executed.
    LocalOps,
    /// Duplicate deliveries dropped at the input buffer (adversarial media
    /// replay a message; the engine deduplicates by message id).
    Duplicates,
    /// Result-store cells served from cache (`bvl-lab` scheduler; recorded
    /// on processor 0 — the service is not a per-processor machine).
    CacheHits,
    /// Result-store cells that had to be computed (`bvl-lab` scheduler).
    CacheMisses,
}

impl Counter {
    /// Every counter, for iteration in reports.
    pub const ALL: [Counter; 9] = [
        Counter::Submitted,
        Counter::Delivered,
        Counter::Acquired,
        Counter::StallEpisodes,
        Counter::StallSteps,
        Counter::LocalOps,
        Counter::Duplicates,
        Counter::CacheHits,
        Counter::CacheMisses,
    ];

    /// Stable snake_case label.
    pub const fn as_str(self) -> &'static str {
        match self {
            Counter::Submitted => "submitted",
            Counter::Delivered => "delivered",
            Counter::Acquired => "acquired",
            Counter::StallEpisodes => "stall_episodes",
            Counter::StallSteps => "stall_steps",
            Counter::LocalOps => "local_ops",
            Counter::Duplicates => "duplicates",
            Counter::CacheHits => "cache_hits",
            Counter::CacheMisses => "cache_misses",
        }
    }

    const COUNT: usize = Counter::ALL.len();

    #[inline]
    fn slot(self) -> usize {
        match self {
            Counter::Submitted => 0,
            Counter::Delivered => 1,
            Counter::Acquired => 2,
            Counter::StallEpisodes => 3,
            Counter::StallSteps => 4,
            Counter::LocalOps => 5,
            Counter::Duplicates => 6,
            Counter::CacheHits => 7,
            Counter::CacheMisses => 8,
        }
    }
}

/// Histogram slots.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Hist {
    /// Submit-to-deliver latency of each message, in steps.
    DeliveryLatency,
    /// Length of each stall window, in steps.
    StallDuration,
    /// Per-processor barrier wait (`w_max - w_i`) per superstep.
    BarrierWait,
    /// Total cost of each superstep.
    SuperstepCost,
    /// Wall-clock microseconds spent computing one result-store cell miss
    /// (`bvl-lab` scheduler).
    CellCompute,
    /// Wall-clock microseconds spent serving one HTTP request (`bvl-lab`
    /// front end).
    ServeLatency,
}

impl Hist {
    /// Every histogram, for iteration in reports.
    pub const ALL: [Hist; 6] = [
        Hist::DeliveryLatency,
        Hist::StallDuration,
        Hist::BarrierWait,
        Hist::SuperstepCost,
        Hist::CellCompute,
        Hist::ServeLatency,
    ];

    /// Stable snake_case label.
    pub const fn as_str(self) -> &'static str {
        match self {
            Hist::DeliveryLatency => "delivery_latency",
            Hist::StallDuration => "stall_duration",
            Hist::BarrierWait => "barrier_wait",
            Hist::SuperstepCost => "superstep_cost",
            Hist::CellCompute => "cell_compute_us",
            Hist::ServeLatency => "serve_latency_us",
        }
    }

    const COUNT: usize = Hist::ALL.len();

    #[inline]
    fn slot(self) -> usize {
        match self {
            Hist::DeliveryLatency => 0,
            Hist::StallDuration => 1,
            Hist::BarrierWait => 2,
            Hist::SuperstepCost => 3,
            Hist::CellCompute => 4,
            Hist::ServeLatency => 5,
        }
    }
}

/// Number of power-of-two buckets: bucket `i` holds values whose bit length
/// is `i` (bucket 0 holds the value 0), so bucket upper bounds are
/// `0, 1, 3, 7, …, u64::MAX`.
pub const HIST_BUCKETS: usize = 65;

#[inline]
fn bucket_of(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Upper bound (inclusive) of bucket `i`.
#[inline]
fn bucket_bound(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

struct HistCells {
    buckets: Vec<AtomicU64>, // HIST_BUCKETS entries
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistCells {
    fn new() -> HistCells {
        HistCells {
            buckets: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

/// Read-only snapshot of one histogram.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values (saturating).
    pub sum: u64,
    /// `(inclusive upper bound, count)` per non-empty bucket, ascending.
    pub buckets: Vec<(u64, u64)>,
}

impl HistSnapshot {
    /// Mean observed value, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Inclusive upper bound of the bucket containing the `q`-quantile
    /// (`0.0 ≤ q ≤ 1.0`), or `None` when the histogram is empty.
    pub fn quantile_bound(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for &(bound, n) in &self.buckets {
            seen += n;
            if seen >= rank {
                return Some(bound);
            }
        }
        self.buckets.last().map(|&(b, _)| b)
    }
}

struct Inner {
    procs: usize,
    counters: Vec<AtomicU64>, // procs * Counter::COUNT, proc-major
    hists: Vec<HistCells>,    // Hist::COUNT entries
    spans: Mutex<Vec<Span>>,
}

impl Inner {
    fn new(procs: usize) -> Inner {
        let procs = procs.max(1);
        Inner {
            procs,
            counters: (0..procs * Counter::COUNT).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..Hist::COUNT).map(|_| HistCells::new()).collect(),
            spans: Mutex::new(Vec::new()),
        }
    }
}

/// Cheap cloneable handle to the metrics store; see the module docs.
#[derive(Clone, Default)]
pub struct Registry {
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            None => write!(f, "Registry(disabled)"),
            Some(i) => write!(f, "Registry(procs={}, spans={})", i.procs, self.spans().len()),
        }
    }
}

impl Registry {
    /// The no-op registry (the default). Every recording call is a single
    /// branch and returns immediately.
    pub fn disabled() -> Registry {
        Registry { inner: None }
    }

    /// A recording registry sized for a `procs`-processor machine.
    pub fn enabled(procs: usize) -> Registry {
        Registry {
            inner: Some(Arc::new(Inner::new(procs))),
        }
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Number of processor slots (0 when disabled).
    pub fn procs(&self) -> usize {
        self.inner.as_ref().map_or(0, |i| i.procs)
    }

    /// Add `n` to a per-processor counter. Out-of-range processors are
    /// folded onto the last slot rather than panicking.
    #[inline]
    pub fn add(&self, proc: ProcId, c: Counter, n: u64) {
        if let Some(inner) = &self.inner {
            let p = (proc.index()).min(inner.procs - 1);
            inner.counters[p * Counter::COUNT + c.slot()].fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&self, h: Hist, value: u64) {
        if let Some(inner) = &self.inner {
            let cells = &inner.hists[h.slot()];
            cells.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
            cells.count.fetch_add(1, Ordering::Relaxed);
            // Saturating accumulate: a wrapped sum would silently corrupt
            // attribution, a panic would abort the observed run.
            let mut cur = cells.sum.load(Ordering::Relaxed);
            loop {
                let next = cur.saturating_add(value);
                match cells
                    .sum
                    .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
                {
                    Ok(_) => break,
                    Err(seen) => cur = seen,
                }
            }
        }
    }

    /// Append a span to the log.
    #[inline]
    pub fn span(&self, span: Span) {
        if let Some(inner) = &self.inner {
            inner.spans.lock().expect("span log poisoned").push(span);
        }
    }

    /// Total of a counter across all processors.
    pub fn counter(&self, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            (0..inner.procs)
                .map(|p| inner.counters[p * Counter::COUNT + c.slot()].load(Ordering::Relaxed))
                .fold(0u64, u64::saturating_add)
        })
    }

    /// A counter's value for one processor.
    pub fn counter_for(&self, proc: ProcId, c: Counter) -> u64 {
        self.inner.as_ref().map_or(0, |inner| {
            let p = proc.index().min(inner.procs - 1);
            inner.counters[p * Counter::COUNT + c.slot()].load(Ordering::Relaxed)
        })
    }

    /// Snapshot of one histogram (empty when disabled).
    pub fn histogram(&self, h: Hist) -> HistSnapshot {
        let Some(inner) = &self.inner else {
            return HistSnapshot::default();
        };
        let cells = &inner.hists[h.slot()];
        let buckets = cells
            .buckets
            .iter()
            .enumerate()
            .filter_map(|(i, b)| {
                let n = b.load(Ordering::Relaxed);
                (n > 0).then_some((bucket_bound(i), n))
            })
            .collect();
        HistSnapshot {
            count: cells.count.load(Ordering::Relaxed),
            sum: cells.sum.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Copy of the span log, in emission order (empty when disabled).
    pub fn spans(&self) -> Vec<Span> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.spans.lock().expect("span log poisoned").clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use bvl_model::Steps;

    #[test]
    fn disabled_registry_is_inert() {
        let r = Registry::disabled();
        r.add(ProcId(0), Counter::Submitted, 5);
        r.observe(Hist::DeliveryLatency, 9);
        r.span(Span::new(SpanKind::Stall, Steps(0), Steps(1)));
        assert!(!r.is_enabled());
        assert_eq!(r.counter(Counter::Submitted), 0);
        assert_eq!(r.histogram(Hist::DeliveryLatency).count, 0);
        assert!(r.spans().is_empty());
    }

    #[test]
    fn counters_accumulate_per_proc() {
        let r = Registry::enabled(4);
        r.add(ProcId(1), Counter::Delivered, 3);
        r.add(ProcId(1), Counter::Delivered, 2);
        r.add(ProcId(3), Counter::Delivered, 1);
        // Out-of-range folds onto the last slot instead of panicking.
        r.add(ProcId(99), Counter::Delivered, 1);
        assert_eq!(r.counter_for(ProcId(1), Counter::Delivered), 5);
        assert_eq!(r.counter_for(ProcId(3), Counter::Delivered), 2);
        assert_eq!(r.counter(Counter::Delivered), 7);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let r = Registry::enabled(1);
        for v in [0u64, 1, 1, 2, 7, 8] {
            r.observe(Hist::StallDuration, v);
        }
        let h = r.histogram(Hist::StallDuration);
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 19);
        // Buckets: 0 -> bound 0 (1), 1 -> bound 1 (2), 2 -> bound 3 (1),
        // 7 -> bound 7 (1), 8 -> bound 15 (1).
        assert_eq!(h.buckets, vec![(0, 1), (1, 2), (3, 1), (7, 1), (15, 1)]);
        assert_eq!(h.quantile_bound(0.5), Some(1));
        assert_eq!(h.quantile_bound(1.0), Some(15));
        assert!((h.mean() - 19.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn spans_kept_in_order_and_shared_by_clones() {
        let r = Registry::enabled(2);
        let r2 = r.clone();
        r.span(Span::new(SpanKind::CbCombine, Steps(0), Steps(4)));
        r2.span(Span::new(SpanKind::CbBroadcast, Steps(4), Steps(8)));
        let spans = r.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].kind, SpanKind::CbCombine);
        assert_eq!(spans[1].kind, SpanKind::CbBroadcast);
    }

    #[test]
    fn bucket_bounds_cover_u64() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_bound(64), u64::MAX);
    }
}

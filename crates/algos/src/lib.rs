//! # bvl-algos — algorithm workloads over the BSP and LogP machines
//!
//! The paper's comparison is about *algorithm design*: which abstraction is
//! more convenient, and what do its primitives cost. This crate provides the
//! classic kernels both model communities used as benchmarks, written
//! natively against each machine:
//!
//! * [`bsp`] — prefix sums (recursive doubling), broadcast (direct vs
//!   two-phase, the textbook `g`-vs-`ℓ` trade-off), tree reduction, parallel
//!   sample sort (the workload Gerbessiotis–Valiant style direct BSP
//!   algorithms target), block matrix multiplication, and the histogram /
//!   counting kernel at the heart of the Radixsort discussed in §6.
//! * [`logp`] — the Karp et al. optimal single-item broadcast schedule,
//!   k-ary tree summation sized by the capacity constraint, and an
//!   all-to-all (total exchange) kernel that respects the capacity limit by
//!   staggered scheduling.
//!
//! Every kernel returns both its computed result (verified against a
//! sequential reference in tests) and the machine's cost/makespan, so the
//! experiment binaries can compare model predictions.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bsp;
pub mod logp;

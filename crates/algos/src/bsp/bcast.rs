//! Broadcast on BSP: the textbook `g`-vs-`ℓ` trade-off.
//!
//! * **Direct**: the root sends `p−1` messages in one superstep — cost
//!   `(p−1) + g(p−1) + ℓ`. Bandwidth-bound at the root.
//! * **Two-phase tree**: `⌈log₂ p⌉` supersteps of doubling, each a
//!   1-relation — cost `≈ log p · (1 + g + ℓ)`. Latency-bound.
//!
//! Which wins depends on `g(p−1)` vs `(log p)(g + ℓ)` — exactly the kind of
//! parameter-driven choice the bridging-model methodology is for.

use bvl_bsp::{BspMachine, BspParams, FnProcess, RunReport, Status};
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Broadcast strategy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BcastStrategy {
    /// Root sends to everyone in one superstep.
    Direct,
    /// Recursive doubling over `⌈log₂ p⌉` supersteps.
    Doubling,
}

/// Broadcast `value` from processor 0; returns (per-processor value, report).
pub fn broadcast(
    params: BspParams,
    value: Word,
    strategy: BcastStrategy,
) -> Result<(Vec<Word>, RunReport), ModelError> {
    let p = params.p;

    let procs: Vec<FnProcess<Option<Word>>> = (0..p)
        .map(|i| {
            let init = if i == 0 { Some(value) } else { None };
            FnProcess::new(init, move |have, ctx| {
                let p = ctx.p();
                let me = ctx.me().index();
                if have.is_none() {
                    if let Some(m) = ctx.recv() {
                        *have = Some(m.payload.expect_word());
                    }
                }
                match strategy {
                    BcastStrategy::Direct => {
                        if ctx.superstep_index() == 0 {
                            if me == 0 {
                                let v = have.expect("root holds the value");
                                for j in 1..p {
                                    ctx.send(ProcId::from(j), Payload::word(0, v));
                                }
                            }
                            Status::Continue
                        } else {
                            Status::Halt
                        }
                    }
                    BcastStrategy::Doubling => {
                        let k = ctx.superstep_index();
                        let stride = 1usize << k;
                        if stride >= p {
                            return Status::Halt;
                        }
                        if let Some(v) = *have {
                            // Informed processors are exactly 0..stride.
                            if me < stride && me + stride < p {
                                ctx.send(ProcId::from(me + stride), Payload::word(0, v));
                            }
                        }
                        Status::Continue
                    }
                }
            })
        })
        .collect();

    let mut machine = BspMachine::new(params, procs);
    let report = machine.run(64)?;
    let mut out = Vec::with_capacity(p);
    for pr in machine.into_processes() {
        out.push(pr.into_state().expect("everyone informed"));
    }
    Ok((out, report))
}

/// Predicted cost of each strategy (for the ablation experiment).
pub fn predicted_cost(params: &BspParams, strategy: BcastStrategy) -> u64 {
    let p = params.p as u64;
    match strategy {
        BcastStrategy::Direct => (p - 1) + params.g * (p - 1) + params.l,
        BcastStrategy::Doubling => {
            let rounds = (params.p.max(2) as f64).log2().ceil() as u64;
            rounds * (1 + params.g + params.l) + params.l
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_inform_everyone() {
        for strategy in [BcastStrategy::Direct, BcastStrategy::Doubling] {
            for p in [1usize, 2, 5, 8, 16] {
                let params = BspParams::new(p, 2, 8).unwrap();
                let (vals, _) = broadcast(params, 42, strategy).unwrap();
                assert_eq!(vals, vec![42; p], "{strategy:?} p={p}");
            }
        }
    }

    #[test]
    fn direct_is_one_communication_superstep() {
        let params = BspParams::new(16, 2, 8).unwrap();
        let (_, report) = broadcast(params, 7, BcastStrategy::Direct).unwrap();
        assert_eq!(report.records[0].h, 15);
        assert_eq!(report.supersteps, 2);
    }

    #[test]
    fn doubling_uses_one_relations() {
        let params = BspParams::new(16, 2, 8).unwrap();
        let (_, report) = broadcast(params, 7, BcastStrategy::Doubling).unwrap();
        for rec in &report.records {
            assert!(rec.h <= 1);
        }
        assert_eq!(report.supersteps, 5); // 4 doubling rounds + final check
    }

    #[test]
    fn crossover_matches_parameters() {
        // Large g, small l: doubling wins. Small g, huge l: direct wins.
        let bandwidth_poor = BspParams::new(64, 50, 2).unwrap();
        let latency_poor = BspParams::new(64, 1, 500).unwrap();
        let (_, r_dir) = broadcast(bandwidth_poor, 1, BcastStrategy::Direct).unwrap();
        let (_, r_dbl) = broadcast(bandwidth_poor, 1, BcastStrategy::Doubling).unwrap();
        assert!(r_dbl.cost < r_dir.cost, "doubling should win under poor bandwidth");
        let (_, r_dir) = broadcast(latency_poor, 1, BcastStrategy::Direct).unwrap();
        let (_, r_dbl) = broadcast(latency_poor, 1, BcastStrategy::Doubling).unwrap();
        assert!(r_dir.cost < r_dbl.cost, "direct should win under poor latency");
    }
}

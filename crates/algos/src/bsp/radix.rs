//! Parallel LSD radix sort on BSP — the algorithm §6 contrasts with its
//! capacity-troubled LogP formulation. On BSP every pass is three plain
//! supersteps (histogram exchange, nothing, key permutation), each an
//! ordinary h-relation priced by `w + g·h + ℓ` regardless of skew.

use bvl_bsp::{BspMachine, BspParams, BspProcess, RunReport, Status, SuperstepCtx};
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Digit radix (messages carry `RADIX` histogram words; keys are sorted by
/// `DIGIT_BITS`-bit digits).
pub const DIGIT_BITS: u32 = 4;
/// `2^DIGIT_BITS`.
pub const RADIX: usize = 1 << DIGIT_BITS;

fn digit(key: Word, pass: u32) -> usize {
    ((key as u64 >> (pass * DIGIT_BITS)) & (RADIX as u64 - 1)) as usize
}

struct RadixProc {
    keys: Vec<Word>,
    /// Target block size per processor (balanced redistribution).
    block: usize,
    passes: u32,
    pass: u32,
    /// 0 = send histogram, 1 = collect histograms & send keys, 2 = collect keys.
    stage: u8,
}

impl BspProcess for RadixProc {
    fn superstep(&mut self, ctx: &mut SuperstepCtx<'_>) -> Status {
        let p = ctx.p();
        let me = ctx.me().index();
        match self.stage {
            0 => {
                // Stable local order by the current digit only (Rust's sort
                // is stable, preserving the previous passes' order — the
                // LSD invariant).
                let pass = self.pass;
                self.keys.sort_by_key(|&k| digit(k, pass));
                ctx.charge(self.keys.len() as u64);
                // Broadcast the local histogram to everyone.
                let mut hist = vec![0 as Word; RADIX];
                for &k in &self.keys {
                    hist[digit(k, pass)] += 1;
                }
                for j in 0..p {
                    ctx.send(ProcId::from(j), Payload::words(0, &hist));
                }
                self.stage = 1;
                Status::Continue
            }
            1 => {
                // Assemble the global bucket layout: offsets[b] = number of
                // keys in smaller buckets; within a bucket, processors
                // contribute in id order (stability across processors).
                let mut hists: Vec<Vec<Word>> = vec![Vec::new(); p];
                while let Some(m) = ctx.recv() {
                    hists[m.src.index()] = m.payload.data().to_vec();
                }
                ctx.charge((p * RADIX) as u64);
                let bucket_total = |b: usize| -> u64 {
                    hists.iter().map(|h| h.get(b).copied().unwrap_or(0) as u64).sum()
                };
                let mut bucket_start = [0u64; RADIX + 1];
                for b in 0..RADIX {
                    bucket_start[b + 1] = bucket_start[b] + bucket_total(b);
                }
                // Global rank of my first key of bucket b.
                let mut my_rank = [0u64; RADIX];
                for b in 0..RADIX {
                    let before_me: u64 = (0..me)
                        .map(|j| hists[j].get(b).copied().unwrap_or(0) as u64)
                        .sum();
                    my_rank[b] = bucket_start[b] + before_me;
                }
                // Ship every key to the processor owning its global rank.
                let pass = self.pass;
                for &k in &self.keys {
                    let b = digit(k, pass);
                    let rank = my_rank[b];
                    my_rank[b] += 1;
                    let dst = ((rank as usize) / self.block).min(p - 1);
                    ctx.send(ProcId::from(dst), Payload::words(1, &[rank as Word, k]));
                }
                ctx.charge(self.keys.len() as u64);
                self.keys.clear();
                self.stage = 2;
                Status::Continue
            }
            _ => {
                // Collect and order by global rank.
                let mut got: Vec<(Word, Word)> = Vec::new();
                while let Some(m) = ctx.recv() {
                    got.push((m.payload.data()[0], m.payload.data()[1]));
                }
                got.sort_unstable();
                ctx.charge(got.len() as u64);
                self.keys = got.into_iter().map(|(_, k)| k).collect();
                self.pass += 1;
                self.stage = 0;
                if self.pass >= self.passes {
                    Status::Halt
                } else {
                    Status::Continue
                }
            }
        }
    }
}

/// Sort non-negative keys distributed over the processors; `passes` digit
/// passes cover keys `< 2^(passes·DIGIT_BITS)`. Returns (sorted blocks in
/// processor order, report).
pub fn radix_sort(
    params: BspParams,
    keys: Vec<Vec<Word>>,
    passes: u32,
) -> Result<(Vec<Vec<Word>>, RunReport), ModelError> {
    let p = params.p;
    assert_eq!(keys.len(), p);
    let total: usize = keys.iter().map(|k| k.len()).sum();
    assert!(
        keys.iter().flatten().all(|&k| k >= 0),
        "radix sort expects non-negative keys"
    );
    let block = total.div_ceil(p).max(1);
    let procs: Vec<RadixProc> = keys
        .into_iter()
        .map(|keys| RadixProc {
            keys,
            block,
            passes,
            pass: 0,
            stage: 0,
        })
        .collect();
    let mut machine = BspMachine::new(params, procs);
    let report = machine.run(8 * passes as u64 + 8)?;
    let out = machine.into_processes().into_iter().map(|pr| pr.keys).collect();
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    fn check(p: usize, per: usize, bits: u32, seed: u64) {
        let passes = bits.div_ceil(DIGIT_BITS);
        let mut rng = SeedStream::new(seed).derive("rx", 0);
        let keys: Vec<Vec<Word>> = (0..p)
            .map(|_| (0..per).map(|_| rng.gen_range(0..(1i64 << bits))).collect())
            .collect();
        let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
        want.sort_unstable();
        let params = BspParams::new(p, 2, 16).unwrap();
        let (blocks, report) = radix_sort(params, keys, passes).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, want, "p={p} per={per} bits={bits}");
        assert_eq!(report.supersteps, 3 * passes as u64);
    }

    #[test]
    fn sorts_random_keys() {
        check(4, 40, 8, 1);
        check(8, 32, 12, 2);
        check(16, 25, 16, 3);
    }

    #[test]
    fn sorts_skewed_keys() {
        // All keys share the low digit: the histogram exchange is uniform
        // and the key redistribution is balanced regardless — the point of
        // doing this on BSP.
        let p = 8;
        let keys: Vec<Vec<Word>> = (0..p)
            .map(|i| (0..20).map(|q| ((q * p + i) as Word) * 16).collect())
            .collect();
        let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
        want.sort_unstable();
        let params = BspParams::new(p, 2, 16).unwrap();
        let (blocks, _) = radix_sort(params, keys, 3).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn single_pass_sorts_by_low_digit() {
        let p = 4;
        let keys: Vec<Vec<Word>> = vec![vec![3, 1], vec![2, 0], vec![1, 3], vec![0, 2]];
        let params = BspParams::new(p, 1, 4).unwrap();
        let (blocks, _) = radix_sort(params, keys, 1).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, vec![0, 0, 1, 1, 2, 2, 3, 3]);
    }

    #[test]
    fn uneven_blocks_balance_out() {
        let p = 4;
        let mut keys: Vec<Vec<Word>> = vec![Vec::new(); p];
        keys[0] = (0..40).rev().collect();
        let params = BspParams::new(p, 2, 8).unwrap();
        let (blocks, _) = radix_sort(params, keys, 2).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, (0..40).collect::<Vec<Word>>());
        // Redistribution balanced the load.
        assert!(blocks.iter().all(|b| b.len() == 10));
    }
}

//! Tree reduction on BSP.

use bvl_bsp::{BspMachine, BspParams, FnProcess, RunReport, Status};
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Reduce one value per processor with an associative, commutative operator
/// to processor 0, by halving: in round `k`, the upper half of the live
/// range sends to the lower half. `⌈log₂ p⌉` supersteps of 1-relations.
pub fn reduce(
    params: BspParams,
    values: &[Word],
    op: fn(Word, Word) -> Word,
) -> Result<(Word, RunReport), ModelError> {
    let p = params.p;
    assert_eq!(values.len(), p);
    let procs: Vec<FnProcess<Word>> = values
        .iter()
        .map(|&v| {
            FnProcess::new(v, move |acc, ctx| {
                let p = ctx.p();
                let me = ctx.me().index();
                while let Some(m) = ctx.recv() {
                    *acc = op(*acc, m.payload.expect_word());
                    ctx.charge(1);
                }
                // Live range size after k rounds: ceil(p / 2^k).
                let k = ctx.superstep_index();
                let live = p.div_ceil(1 << k.min(40));
                if live <= 1 {
                    return Status::Halt;
                }
                let half = live.div_ceil(2);
                if me >= half && me < live {
                    ctx.send(ProcId::from(me - half), Payload::word(0, *acc));
                }
                Status::Continue
            })
        })
        .collect();
    let mut machine = BspMachine::new(params, procs);
    let report = machine.run(64)?;
    let result = *machine.process(0).state();
    Ok((result, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_and_maxima() {
        for p in [1usize, 2, 3, 8, 15, 16] {
            let params = BspParams::new(p, 2, 8).unwrap();
            let values: Vec<Word> = (0..p as Word).map(|i| i * 3 - 5).collect();
            let (sum, _) = reduce(params, &values, |a, b| a + b).unwrap();
            assert_eq!(sum, values.iter().sum::<Word>(), "p={p}");
            let (mx, _) = reduce(params, &values, Word::max).unwrap();
            assert_eq!(mx, *values.iter().max().unwrap(), "p={p}");
        }
    }

    #[test]
    fn logarithmic_supersteps() {
        let params = BspParams::new(64, 2, 8).unwrap();
        let (_, report) = reduce(params, &[1; 64], |a, b| a + b).unwrap();
        assert!(report.supersteps <= 8, "{}", report.supersteps);
        for rec in &report.records {
            assert!(rec.h <= 1);
        }
    }
}

//! Parallel prefix sums on BSP (recursive doubling).
//!
//! `⌈log₂ p⌉` supersteps, each routing a 1-relation: in superstep `k`,
//! processor `i` sends its running partial to `i + 2^k` and adds what it
//! received from `i − 2^k`. Cost `≈ ⌈log p⌉·(1 + g + ℓ)` — the standard
//! example of a latency-bound BSP kernel.

use bvl_bsp::{BspMachine, BspParams, FnProcess, RunReport, Status};
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Compute inclusive prefix sums of one value per processor.
/// Returns (per-processor prefix, host run report).
pub fn prefix_sums(params: BspParams, values: &[Word]) -> Result<(Vec<Word>, RunReport), ModelError> {
    let p = params.p;
    assert_eq!(values.len(), p);

    let procs: Vec<FnProcess<Word>> = values
        .iter()
        .map(|&v| {
            FnProcess::new(v, move |acc, ctx| {
                let p = ctx.p();
                let k = ctx.superstep_index();
                // Fold in the partial sent by i - 2^(k-1) last superstep,
                // *before* forwarding (Hillis-Steele).
                if k > 0 {
                    if let Some(m) = ctx.recv() {
                        *acc += m.payload.expect_word();
                        ctx.charge(1);
                    }
                }
                let stride = 1usize << k;
                if stride >= p {
                    return Status::Halt;
                }
                let i = ctx.me().index();
                if i + stride < p {
                    ctx.send(ProcId::from(i + stride), Payload::word(0, *acc));
                }
                Status::Continue
            })
        })
        .collect();

    let mut machine = BspMachine::new(params, procs);
    let report = machine.run(64)?;
    let out = machine
        .into_processes()
        .into_iter()
        .map(|pr| pr.into_state())
        .collect();
    Ok((out, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check(p: usize, values: Vec<Word>) {
        let params = BspParams::new(p, 2, 8).unwrap();
        let (got, report) = prefix_sums(params, &values).unwrap();
        let mut acc = 0;
        let want: Vec<Word> = values
            .iter()
            .map(|&v| {
                acc += v;
                acc
            })
            .collect();
        assert_eq!(got, want);
        // ceil(log2 p) + 1 supersteps (the last one only folds).
        let expect_ss = (p.max(2) as f64).log2().ceil() as u64 + 1;
        assert!(report.supersteps <= expect_ss, "{} supersteps", report.supersteps);
    }

    #[test]
    fn small_and_power_of_two() {
        check(1, vec![5]);
        check(2, vec![3, 4]);
        check(8, (1..=8).collect());
        check(16, vec![1; 16]);
    }

    #[test]
    fn non_power_of_two_and_negatives() {
        check(7, vec![-1, 2, -3, 4, -5, 6, -7]);
        check(13, (0..13).map(|i| i * i - 20).collect());
    }

    #[test]
    fn superstep_relations_are_one_relations() {
        let params = BspParams::new(8, 3, 10).unwrap();
        let (_, report) = prefix_sums(params, &[1; 8]).unwrap();
        for rec in &report.records {
            assert!(rec.h <= 1, "superstep {} has h = {}", rec.index, rec.h);
        }
    }
}

//! Parallel sample sort on BSP.
//!
//! The classic direct-BSP sorting algorithm (Gerbessiotis–Valiant style):
//!
//! 1. local sort; every processor picks `p−1` evenly spaced samples and
//!    sends them to processor 0 — an h-relation with `h = p(p−1)` at P0;
//! 2. P0 sorts the `p(p−1)` samples, picks `p−1` splitters, broadcasts;
//! 3. every processor partitions its keys by splitter and routes each
//!    bucket to its owner (the irregular all-to-all);
//! 4. local merge.
//!
//! Four supersteps; with `n/p` keys per processor the bucket relation has
//! expected degree `O(n/p)` for random inputs.

use bvl_bsp::{BspMachine, BspParams, FnProcess, RunReport, Status};
use bvl_exec::RunOptions;
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Sort `n` keys distributed round-robin-block over the processors.
/// `keys[i]` is processor `i`'s initial block (blocks may differ in size).
/// Returns (per-processor sorted blocks, concatenation globally sorted, report).
pub fn sample_sort(
    params: BspParams,
    keys: Vec<Vec<Word>>,
) -> Result<(Vec<Vec<Word>>, RunReport), ModelError> {
    sample_sort_with(params, keys, &RunOptions::new())
}

/// [`sample_sort`] under shared [`RunOptions`]: the machine is
/// instrumented with `opts` before running, so registries, tracing,
/// thread/shard counts and the pseudo-streaming window all apply. This is
/// the entry point the workload studies use — the plain [`sample_sort`]
/// delegates here with default options.
pub fn sample_sort_with(
    params: BspParams,
    keys: Vec<Vec<Word>>,
    opts: &RunOptions,
) -> Result<(Vec<Vec<Word>>, RunReport), ModelError> {
    let p = params.p;
    assert_eq!(keys.len(), p);
    if p == 1 {
        let mut k = keys;
        k[0].sort_unstable();
        // A trivial one-superstep machine for uniform reporting.
        let params1 = params;
        let mut m = BspMachine::new(
            params1,
            vec![FnProcess::new((), |_, _| Status::Halt)],
        );
        m.instrument(opts);
        let report = m.run(2)?;
        return Ok((k, report));
    }

    let mut machine = BspMachine::new(params, sample_sort_processes(keys));
    machine.instrument(opts);
    let report = machine.run(16)?;
    let out: Vec<Vec<Word>> = machine
        .into_processes()
        .into_iter()
        .map(|pr| pr.into_state().received)
        .collect();
    Ok((out, report))
}

/// Per-processor state of the sample-sort program. Public so drivers that
/// run the program on *other* machines (the Theorem 2 cross-simulation in
/// the workload studies) can recover the sorted blocks from the final
/// process states.
#[derive(Debug, Default)]
pub struct SortState {
    /// This processor's (locally sorted) initial block.
    pub mine: Vec<Word>,
    /// The broadcast splitters.
    pub splitters: Vec<Word>,
    /// The sorted bucket this processor owns at the end.
    pub received: Vec<Word>,
}

/// Build the sample-sort SPMD program itself — one [`FnProcess`] per
/// processor, `keys[i]` seeding processor `i` — without committing to a
/// machine. [`sample_sort_with`] runs it on a native [`BspMachine`]; the
/// workload studies also feed it to `simulate_bsp_on_logp` so the same
/// program is measured on both machines. Requires `keys.len() ≥ 2`
/// (single-processor sorting has no samples to route).
pub fn sample_sort_processes(keys: Vec<Vec<Word>>) -> Vec<FnProcess<SortState>> {
    assert!(keys.len() >= 2, "sample-sort program needs p >= 2");

    const TAG_SAMPLE: u32 = 1;
    const TAG_SPLIT: u32 = 2;
    const TAG_KEY: u32 = 3;

    keys.into_iter()
        .map(|block| {
            FnProcess::new(
                SortState {
                    mine: block,
                    splitters: Vec::new(),
                    received: Vec::new(),
                },
                move |st, ctx| {
                    let p = ctx.p();
                    let me = ctx.me().index();
                    match ctx.superstep_index() {
                        0 => {
                            // Local sort + sample.
                            st.mine.sort_unstable();
                            ctx.charge(st.mine.len() as u64);
                            let n = st.mine.len();
                            for k in 1..p {
                                if n > 0 {
                                    let idx = (k * n) / p;
                                    let s = st.mine[idx.min(n - 1)];
                                    ctx.send(ProcId(0), Payload::word(TAG_SAMPLE, s));
                                }
                            }
                            Status::Continue
                        }
                        1 => {
                            // P0 selects and broadcasts splitters.
                            if me == 0 {
                                let mut samples: Vec<Word> = Vec::new();
                                while let Some(m) = ctx.recv() {
                                    samples.push(m.payload.expect_word());
                                }
                                samples.sort_unstable();
                                ctx.charge(samples.len() as u64);
                                let m = samples.len();
                                let splitters: Vec<Word> = (1..p)
                                    .map(|k| samples[(k * m / p).min(m.saturating_sub(1))])
                                    .collect();
                                for j in 0..p {
                                    ctx.send(
                                        ProcId::from(j),
                                        Payload::words(TAG_SPLIT, &splitters),
                                    );
                                }
                            }
                            Status::Continue
                        }
                        2 => {
                            // Partition by splitters; route buckets.
                            let m = ctx.recv().expect("splitters");
                            debug_assert_eq!(m.payload.tag, TAG_SPLIT);
                            st.splitters = m.payload.data().to_vec();
                            for &key in &st.mine {
                                let owner = st.splitters.partition_point(|&s| s < key);
                                ctx.send(ProcId::from(owner), Payload::word(TAG_KEY, key));
                            }
                            ctx.charge(st.mine.len() as u64);
                            Status::Continue
                        }
                        _ => {
                            while let Some(m) = ctx.recv() {
                                st.received.push(m.payload.expect_word());
                            }
                            st.received.sort_unstable();
                            ctx.charge(st.received.len() as u64);
                            Status::Halt
                        }
                    }
                },
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    fn check(p: usize, per: usize, seed: u64) {
        let mut rng = SeedStream::new(seed).derive("ss", 0);
        let keys: Vec<Vec<Word>> = (0..p)
            .map(|_| (0..per).map(|_| rng.gen_range(-500..500)).collect())
            .collect();
        let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
        want.sort_unstable();
        let params = BspParams::new(p, 2, 16).unwrap();
        let (blocks, report) = sample_sort(params, keys).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, want, "p={p} per={per}");
        // Bucket boundaries respect processor order.
        for w in blocks.windows(2) {
            if let (Some(&a), Some(&b)) = (w[0].last(), w[1].first()) {
                assert!(a <= b);
            }
        }
        assert!(report.supersteps <= 4 + 1);
    }

    #[test]
    fn sorts_random_inputs() {
        check(4, 32, 1);
        check(8, 50, 2);
        check(16, 20, 3);
    }

    #[test]
    fn sorts_skewed_inputs() {
        // All keys equal: everything lands in one bucket, still correct.
        let p = 4;
        let keys: Vec<Vec<Word>> = (0..p).map(|_| vec![7; 16]).collect();
        let params = BspParams::new(p, 2, 16).unwrap();
        let (blocks, _) = sample_sort(params, keys).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, vec![7; 64]);
    }

    #[test]
    fn single_processor_trivial() {
        let params = BspParams::new(1, 1, 1).unwrap();
        let (blocks, _) = sample_sort(params, vec![vec![3, 1, 2]]).unwrap();
        assert_eq!(blocks[0], vec![1, 2, 3]);
    }

    #[test]
    fn empty_blocks_ok() {
        let p = 4;
        let mut keys: Vec<Vec<Word>> = vec![Vec::new(); p];
        keys[2] = vec![5, -5, 0];
        let params = BspParams::new(p, 2, 16).unwrap();
        let (blocks, _) = sample_sort(params, keys).unwrap();
        let got: Vec<Word> = blocks.iter().flatten().copied().collect();
        assert_eq!(got, vec![-5, 0, 5]);
    }
}

//! Distributed histogram / counting on BSP — the per-digit kernel of the
//! parallel Radixsort the paper's §6 discusses (whose LogP formulation "may
//! violate the capacity constraint"; on BSP it is just an h-relation).

use bvl_bsp::{BspMachine, BspParams, FnProcess, RunReport, Status};
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Compute the global histogram of values in `[0, buckets)`; bucket `b` ends
/// up at processor `b % p`. Returns (flat histogram, report).
pub fn histogram(
    params: BspParams,
    values: &[Vec<Word>],
    buckets: usize,
) -> Result<(Vec<u64>, RunReport), ModelError> {
    let p = params.p;
    assert_eq!(values.len(), p);

    struct St {
        local: Vec<Word>,
        owned: Vec<(usize, u64)>,
    }

    let procs: Vec<FnProcess<St>> = values
        .iter()
        .map(|vals| {
            let local = vals.clone();
            FnProcess::new(
                St {
                    local,
                    owned: Vec::new(),
                },
                move |st, ctx| {
                    let p = ctx.p();
                    match ctx.superstep_index() {
                        0 => {
                            // Local counts, then one message per nonzero
                            // bucket to its owner.
                            let mut counts = vec![0u64; buckets];
                            for &v in &st.local {
                                assert!((0..buckets as Word).contains(&v));
                                counts[v as usize] += 1;
                            }
                            ctx.charge(st.local.len() as u64);
                            for (b, &c) in counts.iter().enumerate() {
                                if c > 0 {
                                    ctx.send(
                                        ProcId::from(b % p),
                                        Payload::words(0, &[b as Word, c as Word]),
                                    );
                                }
                            }
                            Status::Continue
                        }
                        _ => {
                            let mut sums = std::collections::BTreeMap::new();
                            while let Some(m) = ctx.recv() {
                                let b = m.payload.data()[0] as usize;
                                let c = m.payload.data()[1] as u64;
                                *sums.entry(b).or_insert(0u64) += c;
                                ctx.charge(1);
                            }
                            st.owned = sums.into_iter().collect();
                            Status::Halt
                        }
                    }
                },
            )
        })
        .collect();

    let mut machine = BspMachine::new(params, procs);
    let report = machine.run(8)?;
    let mut hist = vec![0u64; buckets];
    for pr in machine.into_processes() {
        for (b, c) in pr.into_state().owned {
            hist[b] = c;
        }
    }
    Ok((hist, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    #[test]
    fn counts_match_sequential() {
        let p = 8;
        let buckets = 16;
        let mut rng = SeedStream::new(5).derive("h", 0);
        let values: Vec<Vec<Word>> = (0..p)
            .map(|_| (0..40).map(|_| rng.gen_range(0..buckets as Word)).collect())
            .collect();
        let mut want = vec![0u64; buckets];
        for v in values.iter().flatten() {
            want[*v as usize] += 1;
        }
        let params = BspParams::new(p, 2, 8).unwrap();
        let (got, report) = histogram(params, &values, buckets).unwrap();
        assert_eq!(got, want);
        assert_eq!(report.supersteps, 2);
    }

    #[test]
    fn skewed_input_is_a_hot_spot_relation() {
        // Every processor counts only bucket 0: owner P0 receives p messages.
        let p = 8;
        let values: Vec<Vec<Word>> = (0..p).map(|_| vec![0; 10]).collect();
        let params = BspParams::new(p, 2, 8).unwrap();
        let (got, report) = histogram(params, &values, 4).unwrap();
        assert_eq!(got[0], 80);
        assert_eq!(report.records[0].h, p as u64);
    }

    #[test]
    fn empty_inputs() {
        let p = 4;
        let values: Vec<Vec<Word>> = vec![Vec::new(); p];
        let params = BspParams::new(p, 1, 4).unwrap();
        let (got, _) = histogram(params, &values, 8).unwrap();
        assert_eq!(got, vec![0; 8]);
    }
}

//! Block matrix multiplication on BSP (ring rotation).
//!
//! `C = A·B` for `n×n` matrices with `p | n`: processor `j` owns row block
//! `A_j` (rows `j·n/p ..`) and column block `B_j` (columns `j·n/p ..`).
//! Over `p` supersteps the `B` blocks rotate around the ring; each processor
//! multiplies its `A` block against the visiting `B` block, filling in the
//! corresponding columns of its `C` row block. A bandwidth-bound kernel:
//! each superstep routes `h = n·(n/p)/W` messages of `W` words.

use bvl_bsp::{BspMachine, BspParams, FnProcess, RunReport, Status};
use bvl_model::{ModelError, Payload, ProcId, Word};

/// Words per message when shipping matrix blocks (messages are constant
/// size in the model; a block travels as `⌈len/W⌉` messages).
pub const BLOCK_MSG_WORDS: usize = 8;

/// Dense row-major `n×n` matrix.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Matrix {
    /// Dimension.
    pub n: usize,
    /// Row-major data.
    pub data: Vec<Word>,
}

impl Matrix {
    /// Zero matrix.
    pub fn zero(n: usize) -> Matrix {
        Matrix {
            n,
            data: vec![0; n * n],
        }
    }

    /// Element accessor.
    pub fn at(&self, i: usize, j: usize) -> Word {
        self.data[i * self.n + j]
    }

    /// Element mutator.
    pub fn set(&mut self, i: usize, j: usize, v: Word) {
        self.data[i * self.n + j] = v;
    }

    /// Sequential reference product.
    pub fn mul_ref(&self, other: &Matrix) -> Matrix {
        let n = self.n;
        let mut c = Matrix::zero(n);
        for i in 0..n {
            for k in 0..n {
                let a = self.at(i, k);
                if a == 0 {
                    continue;
                }
                for j in 0..n {
                    c.data[i * n + j] += a * other.at(k, j);
                }
            }
        }
        c
    }
}

/// Multiply on a `p`-processor BSP ring. Returns (C, report).
pub fn matmul(params: BspParams, a: &Matrix, b: &Matrix) -> Result<(Matrix, RunReport), ModelError> {
    let p = params.p;
    let n = a.n;
    assert_eq!(b.n, n);
    assert!(n.is_multiple_of(p), "p must divide n");
    let bs = n / p; // block side

    // Column block j of B, flattened column-block-major: rows 0..n of
    // columns j*bs..(j+1)*bs.
    let col_block = |m: &Matrix, j: usize| -> Vec<Word> {
        let mut v = Vec::with_capacity(n * bs);
        for i in 0..n {
            for c in j * bs..(j + 1) * bs {
                v.push(m.at(i, c));
            }
        }
        v
    };

    struct St {
        a_rows: Vec<Word>,  // bs x n, row-major
        b_cols: Vec<Word>,  // n x bs (current visiting block)
        b_owner: usize,     // which column block is visiting
        c_rows: Vec<Word>,  // bs x n, row-major
        incoming: Vec<Word>,
    }

    let procs: Vec<FnProcess<St>> = (0..p)
        .map(|j| {
            let a_rows: Vec<Word> =
                a.data[j * bs * n..(j + 1) * bs * n].to_vec();
            let b_cols = col_block(b, j);
            FnProcess::new(
                St {
                    a_rows,
                    b_cols,
                    b_owner: j,
                    c_rows: vec![0; bs * n],
                    incoming: Vec::new(),
                },
                move |st, ctx| {
                    let p = ctx.p();
                    let n = bs * p;
                    let me = ctx.me().index();
                    let round = ctx.superstep_index() as usize;
                    if round > 0 {
                        // Receive the visiting block shipped last superstep.
                        st.incoming.clear();
                        while let Some(m) = ctx.recv() {
                            st.incoming.extend_from_slice(m.payload.data());
                        }
                        st.b_cols = std::mem::take(&mut st.incoming);
                        st.b_owner = (st.b_owner + 1) % p;
                    }
                    if round >= p {
                        return Status::Halt;
                    }
                    // Multiply A_me (bs x n) by the visiting B block (n x bs)
                    // into C columns owned by b_owner.
                    let jb = st.b_owner;
                    for i in 0..bs {
                        for c in 0..bs {
                            let mut acc = 0;
                            for k in 0..n {
                                acc += st.a_rows[i * n + k] * st.b_cols[k * bs + c];
                            }
                            st.c_rows[i * n + jb * bs + c] = acc;
                        }
                    }
                    ctx.charge((bs * bs * n) as u64);
                    if round + 1 < p {
                        // Ship the visiting block to the left neighbour
                        // (blocks travel leftwards so owner increases).
                        let dst = ProcId::from((me + p - 1) % p);
                        for chunk in st.b_cols.chunks(BLOCK_MSG_WORDS) {
                            ctx.send(dst, Payload::words(0, chunk));
                        }
                    }
                    Status::Continue
                },
            )
        })
        .collect();

    let mut machine = BspMachine::new(params, procs);
    let report = machine.run((p + 2) as u64)?;
    let mut c = Matrix::zero(n);
    for (j, pr) in machine.into_processes().into_iter().enumerate() {
        let st = pr.into_state();
        c.data[j * bs * n..(j + 1) * bs * n].copy_from_slice(&st.c_rows);
    }
    Ok((c, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    fn random_matrix(n: usize, seed: u64) -> Matrix {
        let mut rng = SeedStream::new(seed).derive("mat", 0);
        Matrix {
            n,
            data: (0..n * n).map(|_| rng.gen_range(-5..=5)).collect(),
        }
    }

    #[test]
    fn matches_reference_product() {
        for (p, n) in [(2usize, 4usize), (4, 8), (4, 12), (8, 16)] {
            let a = random_matrix(n, p as u64);
            let b = random_matrix(n, p as u64 + 100);
            let params = BspParams::new(p, 2, 16).unwrap();
            let (c, report) = matmul(params, &a, &b).unwrap();
            assert_eq!(c, a.mul_ref(&b), "p={p} n={n}");
            assert_eq!(report.supersteps as usize, p + 1);
        }
    }

    #[test]
    fn identity_behaves() {
        let n = 8;
        let mut id = Matrix::zero(n);
        for i in 0..n {
            id.set(i, i, 1);
        }
        let a = random_matrix(n, 7);
        let params = BspParams::new(4, 1, 4).unwrap();
        let (c, _) = matmul(params, &a, &id).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn h_matches_block_traffic() {
        let p = 4;
        let n = 8;
        let params = BspParams::new(p, 2, 16).unwrap();
        let a = random_matrix(n, 1);
        let b = random_matrix(n, 2);
        let (_, report) = matmul(params, &a, &b).unwrap();
        let block_words = n * (n / p);
        let msgs = block_words.div_ceil(BLOCK_MSG_WORDS) as u64;
        // Rotation supersteps ship one block per processor.
        assert_eq!(report.records[0].h, msgs);
    }
}

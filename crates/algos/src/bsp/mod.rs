//! Native BSP algorithms.

pub mod bcast;
pub mod histogram;
pub mod matmul;
pub mod prefix;
pub mod radix;
pub mod reduce;
pub mod sort;

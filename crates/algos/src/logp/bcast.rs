//! Optimal single-item broadcast on LogP (Karp, Sahay, Santos, Schauser).
//!
//! Every informed processor keeps transmitting to uninformed ones, one
//! submission every `G`; a receiver becomes a sender `L + 2o` after the
//! submission that reaches it. The greedy schedule (earliest submission
//! slot first) is optimal for single-item broadcast in LogP. We compute the
//! schedule offline ([`broadcast_schedule`]) and then *execute* it on the
//! machine — whose measured inform times must reproduce the computed ones
//! exactly, which the tests assert.

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, LogpProcess, Op, ProcView};
use bvl_model::{Envelope, ModelError, Payload, ProcId, Steps, Word};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// The offline greedy schedule: per processor, the ordered list of targets
/// it transmits to, plus each processor's predicted inform time.
#[derive(Clone, Debug)]
pub struct BroadcastSchedule {
    /// `targets[i]` = processors `i` sends the item to, in order.
    pub targets: Vec<Vec<ProcId>>,
    /// Predicted time at which each processor holds the item (acquisition
    /// complete); 0 for the root.
    pub inform_time: Vec<Steps>,
    /// Predicted makespan (= max inform time).
    pub makespan: Steps,
}

/// Compute the greedy optimal broadcast schedule from processor 0.
pub fn broadcast_schedule(params: &LogpParams) -> BroadcastSchedule {
    let p = params.p;
    let (l, o, g) = (params.l, params.o, params.g);
    let mut targets: Vec<Vec<ProcId>> = vec![Vec::new(); p];
    let mut inform = vec![Steps::MAX; p];
    inform[0] = Steps::ZERO;
    // Heap of (next submission time, proc).
    let mut heap: BinaryHeap<Reverse<(Steps, usize)>> = BinaryHeap::new();
    heap.push(Reverse((Steps(o), 0))); // root's first submission at o
    for (next, slot) in inform.iter_mut().enumerate().skip(1) {
        let Reverse((sub, sender)) = heap.pop().expect("informed senders exist");
        targets[sender].push(ProcId::from(next));
        // Receiver acquires at sub + L + o and submits its first at + o.
        let informed_at = sub + Steps(l + o);
        *slot = informed_at;
        heap.push(Reverse((sub + Steps(g), sender)));
        heap.push(Reverse((informed_at + Steps(o), next)));
    }
    let makespan = inform.iter().copied().max().unwrap_or(Steps::ZERO);
    BroadcastSchedule {
        targets,
        inform_time: inform,
        makespan,
    }
}

/// The per-processor broadcast program: receive once (root skips), then
/// transmit to the scheduled targets back-to-back (the machine's gap rule
/// spaces the submissions by `G` automatically).
pub struct BcastProc {
    value: Option<Word>,
    targets: Vec<ProcId>,
    next_target: usize,
    informed_at: Option<Steps>,
}

impl BcastProc {
    fn new(value: Option<Word>, targets: Vec<ProcId>) -> BcastProc {
        BcastProc {
            value,
            targets,
            next_target: 0,
            informed_at: value.map(|_| Steps::ZERO),
        }
    }

    /// When this processor acquired the item.
    pub fn informed_at(&self) -> Option<Steps> {
        self.informed_at
    }

    /// The received value.
    pub fn value(&self) -> Option<Word> {
        self.value
    }
}

impl LogpProcess for BcastProc {
    fn next_op(&mut self, _view: &ProcView) -> Op {
        match self.value {
            None => Op::Recv,
            Some(v) => {
                if self.next_target < self.targets.len() {
                    let dst = self.targets[self.next_target];
                    self.next_target += 1;
                    Op::Send {
                        dst,
                        payload: Payload::word(0, v),
                    }
                } else {
                    Op::Halt
                }
            }
        }
    }

    fn on_recv(&mut self, msg: Envelope) {
        self.value = Some(msg.payload.expect_word());
        self.informed_at = Some(msg.delivered + Steps(0)); // refined below by machine timing
    }
}

/// Outcome of an executed broadcast.
#[derive(Clone, Debug)]
pub struct BcastReport {
    /// Measured makespan.
    pub makespan: Steps,
    /// Predicted makespan from the greedy schedule.
    pub predicted: Steps,
    /// Every processor received the value.
    pub complete: bool,
}

/// Execute the optimal broadcast of `value` from processor 0 and compare
/// with the schedule's prediction. Runs stall-free by construction.
pub fn optimal_broadcast(
    params: LogpParams,
    value: Word,
    seed: u64,
) -> Result<BcastReport, ModelError> {
    let schedule = broadcast_schedule(&params);
    let procs: Vec<BcastProc> = (0..params.p)
        .map(|i| {
            BcastProc::new(
                if i == 0 { Some(value) } else { None },
                schedule.targets[i].clone(),
            )
        })
        .collect();
    let config = LogpConfig {
        forbid_stalling: true,
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, procs);
    let report = machine.run()?;
    let complete = machine
        .into_programs()
        .iter()
        .all(|b| b.value() == Some(value));
    Ok(BcastReport {
        makespan: report.makespan,
        predicted: schedule.makespan,
        complete,
    })
}

/// The naive alternative: the root transmits to all `p−1` processors itself,
/// finishing around `o + G(p−2) + L + o`.
pub fn direct_broadcast(params: LogpParams, value: Word, seed: u64) -> Result<Steps, ModelError> {
    let p = params.p;
    let mut procs = vec![BcastProc::new(
        Some(value),
        (1..p).map(ProcId::from).collect(),
    )];
    procs.extend((1..p).map(|_| BcastProc::new(None, Vec::new())));
    let config = LogpConfig {
        forbid_stalling: true,
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, procs);
    Ok(machine.run()?.makespan)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_informs_everyone_once() {
        let params = LogpParams::new(16, 8, 1, 2).unwrap();
        let s = broadcast_schedule(&params);
        let mut count = [0usize; 16];
        for t in s.targets.iter().flatten() {
            count[t.index()] += 1;
        }
        assert_eq!(count[0], 0);
        assert!(count[1..].iter().all(|&c| c == 1));
        assert!(s.makespan > Steps::ZERO);
    }

    #[test]
    fn executed_broadcast_matches_schedule_prediction() {
        for (p, l, o, g) in [(8, 8, 1, 2), (16, 6, 2, 3), (32, 16, 1, 4), (13, 10, 2, 5)] {
            let params = LogpParams::new(p, l, o, g).unwrap();
            let rep = optimal_broadcast(params, 99, 1).unwrap();
            assert!(rep.complete);
            assert_eq!(
                rep.makespan, rep.predicted,
                "p={p} L={l} o={o} G={g}: measured vs greedy schedule"
            );
        }
    }

    #[test]
    fn optimal_beats_direct_for_large_p() {
        let params = LogpParams::new(64, 8, 1, 2).unwrap();
        let opt = optimal_broadcast(params, 1, 1).unwrap().makespan;
        let dir = direct_broadcast(params, 1, 1).unwrap();
        assert!(opt < dir, "optimal {opt:?} vs direct {dir:?}");
    }

    #[test]
    fn direct_broadcast_time_formula() {
        let params = LogpParams::new(8, 8, 1, 2).unwrap();
        let t = direct_broadcast(params, 1, 1).unwrap();
        // Last submission at o + (p-2)G, delivery + L, acquisition + o.
        assert_eq!(t, Steps(1 + 6 * 2 + 8 + 1));
    }

    #[test]
    fn trivial_sizes() {
        let params = LogpParams::new(1, 4, 1, 2).unwrap();
        let rep = optimal_broadcast(params, 5, 1).unwrap();
        assert_eq!(rep.makespan, Steps::ZERO);
        let params = LogpParams::new(2, 4, 1, 2).unwrap();
        let rep = optimal_broadcast(params, 5, 1).unwrap();
        assert!(rep.complete);
    }
}

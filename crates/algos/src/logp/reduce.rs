//! Summation (reduction) on LogP — the ascend half of the §4.1 CB tree.
//!
//! A complete `k`-ary tree with `k = max{2, ⌈L/G⌉}`: leaves transmit their
//! value to the parent; internal nodes wait for all children, fold, and
//! forward. At most `k ≤ ⌈L/G⌉` messages are ever in transit to one parent,
//! so the algorithm is stall-free by construction (and the machine checks).

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, LogpProcess, Op, ProcView};
use bvl_model::{Envelope, ModelError, Payload, ProcId, Steps, Word};

struct ReduceProc {
    acc: Word,
    op: fn(Word, Word) -> Word,
    expected: usize,
    received: usize,
    parent: Option<ProcId>,
    sent: bool,
    /// `Some(parity)` in the capacity-1 regime: ascend sends are confined to
    /// timed slots `t ≡ parity·L (mod 2L)`, the §4.1 discipline that keeps
    /// siblings' messages out of each other's capacity window.
    slot: Option<u64>,
    l: u64,
}

impl LogpProcess for ReduceProc {
    fn next_op(&mut self, view: &ProcView) -> Op {
        if self.received < self.expected {
            return Op::Recv;
        }
        match self.parent {
            Some(parent) if !self.sent => {
                if let Some(parity) = self.slot {
                    let period = 2 * self.l;
                    let base = parity * self.l;
                    let now = view.now.get();
                    let t = if now <= base {
                        base
                    } else {
                        base + (now - base).div_ceil(period) * period
                    };
                    if t > now {
                        return Op::WaitUntil(Steps(t));
                    }
                }
                self.sent = true;
                Op::Send {
                    dst: parent,
                    payload: Payload::word(0, self.acc),
                }
            }
            _ => Op::Halt,
        }
    }

    fn on_recv(&mut self, msg: Envelope) {
        self.acc = (self.op)(self.acc, msg.payload.expect_word());
        self.received += 1;
    }
}

/// Reduce one value per processor to processor 0 with a commutative,
/// associative operator. Returns (result, makespan).
pub fn tree_reduce(
    params: LogpParams,
    values: &[Word],
    op: fn(Word, Word) -> Word,
    seed: u64,
) -> Result<(Word, Steps), ModelError> {
    let p = params.p;
    assert_eq!(values.len(), p);
    let k = 2usize.max(params.capacity() as usize);
    let timed = params.capacity() == 1;
    let procs: Vec<ReduceProc> = values
        .iter()
        .enumerate()
        .map(|(i, &v)| {
            let children = (1..=k).map(|c| k * i + c).filter(|&c| c < p).count();
            ReduceProc {
                acc: v,
                op,
                expected: children,
                received: 0,
                parent: if i == 0 {
                    None
                } else {
                    Some(ProcId::from((i - 1) / k))
                },
                sent: false,
                slot: if timed && i > 0 {
                    Some(((i - 1) % k) as u64 % 2)
                } else {
                    None
                },
                l: params.l,
            }
        })
        .collect();
    let config = LogpConfig {
        forbid_stalling: true,
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, procs);
    let report = machine.run()?;
    let result = machine.program(0).acc;
    Ok((result, report.makespan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_match_for_various_shapes() {
        for (p, l, g) in [(1usize, 8, 2), (2, 8, 2), (9, 8, 2), (32, 16, 4), (27, 6, 6)] {
            let params = LogpParams::new(p, l, 1, g).unwrap();
            let values: Vec<Word> = (0..p as Word).map(|i| 2 * i - 3).collect();
            let (sum, _) = tree_reduce(params, &values, |a, b| a + b, 1).unwrap();
            assert_eq!(sum, values.iter().sum::<Word>(), "p={p}");
        }
    }

    #[test]
    fn makespan_scales_with_tree_depth() {
        // Deeper tree (smaller capacity => binary) takes longer than a wide
        // one at the same L.
        let narrow = LogpParams::new(64, 8, 1, 8).unwrap(); // capacity 1 -> binary
        let wide = LogpParams::new(64, 8, 1, 2).unwrap(); // capacity 4 -> 4-ary
        let values = vec![1; 64];
        let (_, t_narrow) = tree_reduce(narrow, &values, |a, b| a + b, 1).unwrap();
        let (_, t_wide) = tree_reduce(wide, &values, |a, b| a + b, 1).unwrap();
        assert!(t_wide < t_narrow, "wide {t_wide:?} narrow {t_narrow:?}");
    }

    #[test]
    fn max_reduction() {
        let params = LogpParams::new(16, 8, 1, 2).unwrap();
        let values: Vec<Word> = (0..16).map(|i| (i * 7) % 13).collect();
        let (mx, _) = tree_reduce(params, &values, Word::max, 2).unwrap();
        assert_eq!(mx, *values.iter().max().unwrap());
    }
}

//! The §6 Radixsort hazard: counting phases that "may violate the capacity
//! constraint and whose cost cannot be estimated reliably".
//!
//! A parallel radix pass needs, per digit value, the global count of keys
//! with that digit — a message from every processor holding such keys to
//! the digit's owner. For *uniform* keys this is a balanced relation; for
//! *skewed* keys (everyone holds the same digit) it is a `p`-to-1 hot spot
//! that blows through `⌈L/G⌉` when scheduled naively — exactly the LogP
//! program the paper points to as requiring "considerable ingenuity".
//!
//! Two schedules for the same communication:
//!
//! * [`naive_count_phase`] — fire all count messages immediately (the
//!   textbook translation); stalls on skew.
//! * [`staggered_count_phase`] — the capacity-respecting rewrite: sender
//!   `i` transmits its count for owner `d` in slot `((d − i) mod digits)·G`
//!   — a latin-square schedule where every owner receives at most one
//!   message per gap and every sender transmits at most one per gap, so
//!   the capacity constraint holds for *any* key distribution. Locally
//!   computable, but it is a different program — the restructuring the
//!   paper says takes "considerable ingenuity".

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{ModelError, Payload, ProcId, Steps, Word};

/// Outcome of one counting phase.
#[derive(Clone, Debug)]
pub struct CountPhaseReport {
    /// Phase makespan.
    pub makespan: Steps,
    /// Stall episodes (naive schedule on skewed keys stalls; staggered
    /// never does).
    pub stall_episodes: u64,
    /// Total time senders spent stalling.
    pub total_stall: Steps,
    /// Mean end-to-end message latency — the quantity that degrades
    /// unpredictably under the Stalling Rule.
    pub mean_latency: f64,
    /// The per-owner digit counts computed by the phase.
    pub counts: Vec<u64>,
}

fn local_histogram(keys: &[Word], digits: usize) -> Vec<u64> {
    let mut h = vec![0u64; digits];
    for &k in keys {
        h[(k.unsigned_abs() as usize) % digits] += 1;
    }
    h
}

fn run_phase(
    params: LogpParams,
    keys: &[Vec<Word>],
    digits: usize,
    staggered: bool,
    seed: u64,
) -> Result<CountPhaseReport, ModelError> {
    let p = params.p;
    assert_eq!(keys.len(), p);
    assert!(digits <= p, "one owner per digit");
    let hists: Vec<Vec<u64>> = keys.iter().map(|k| local_histogram(k, digits)).collect();

    // Receiver side: owner d receives one message from every processor
    // whose histogram has a nonzero count for d.
    let mut senders_to: Vec<Vec<usize>> = vec![Vec::new(); digits];
    for (i, h) in hists.iter().enumerate() {
        for (d, &c) in h.iter().enumerate() {
            if c > 0 {
                senders_to[d].push(i);
            }
        }
    }

    let scripts: Vec<Script> = (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            // Latin-square slot over p: sender i's message for owner d
            // belongs in slot (d − i) mod p, so every owner sees at most
            // one arrival per gap and every sender one departure per gap.
            let mut sends: Vec<(u64, usize, u64)> = (0..digits)
                .filter(|&d| hists[i][d] > 0)
                .map(|d| (((d + p - i) % p) as u64, d, hists[i][d]))
                .collect();
            if staggered {
                sends.sort_by_key(|&(slot, _, _)| slot);
            } else {
                // Naive: rotated iteration order — the natural load
                // balancing an implementor writes — fired immediately, so
                // stalls are due to the key distribution alone.
                sends.sort_by_key(|&(_, d, _)| (d + digits - i % digits) % digits);
            }
            for (slot, d, c) in sends {
                if staggered {
                    ops.push(Op::WaitUntil(Steps(slot * params.g)));
                }
                ops.push(Op::Send {
                    dst: ProcId::from(d),
                    payload: Payload::words(0, &[d as Word, c as Word]),
                });
            }
            if i < digits {
                ops.extend(std::iter::repeat_n(Op::Recv, senders_to[i].len()));
            }
            Script::new(ops)
        })
        .collect();

    let config = LogpConfig {
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, scripts);
    let report = machine.run()?;
    let mut counts = vec![0u64; digits];
    for (owner, script) in machine.into_programs().into_iter().enumerate().take(digits) {
        for e in script.into_received() {
            debug_assert_eq!(e.payload.data()[0] as usize, owner);
            counts[owner] += e.payload.data()[1] as u64;
        }
    }
    Ok(CountPhaseReport {
        makespan: report.makespan,
        stall_episodes: report.stall_episodes,
        total_stall: report.total_stall,
        mean_latency: report.latency.mean(),
        counts,
    })
}

/// The naive schedule: every processor fires its count messages at once.
pub fn naive_count_phase(
    params: LogpParams,
    keys: &[Vec<Word>],
    digits: usize,
    seed: u64,
) -> Result<CountPhaseReport, ModelError> {
    run_phase(params, keys, digits, false, seed)
}

/// The capacity-respecting rewrite: senders to one owner stagger by `G`.
pub fn staggered_count_phase(
    params: LogpParams,
    keys: &[Vec<Word>],
    digits: usize,
    seed: u64,
) -> Result<CountPhaseReport, ModelError> {
    run_phase(params, keys, digits, true, seed)
}

/// Reference counts.
pub fn reference_counts(keys: &[Vec<Word>], digits: usize) -> Vec<u64> {
    let mut c = vec![0u64; digits];
    for k in keys.iter().flatten() {
        c[(k.unsigned_abs() as usize) % digits] += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_model::rngutil::SeedStream;
    use rand::Rng;

    fn uniform_keys(p: usize, per: usize, digits: usize, seed: u64) -> Vec<Vec<Word>> {
        let mut rng = SeedStream::new(seed).derive("k", 0);
        (0..p)
            .map(|_| (0..per).map(|_| rng.gen_range(0..digits as Word * 50)).collect())
            .collect()
    }

    fn skewed_keys(p: usize, per: usize, digits: usize) -> Vec<Vec<Word>> {
        // Every key has digit 0 (mod digits).
        (0..p).map(|_| vec![digits as Word; per]).collect()
    }

    #[test]
    fn both_schedules_count_correctly_on_uniform_keys() {
        let params = LogpParams::new(16, 8, 1, 2).unwrap();
        let keys = uniform_keys(16, 24, 8, 1);
        let want = reference_counts(&keys, 8);
        let naive = naive_count_phase(params, &keys, 8, 1).unwrap();
        let stag = staggered_count_phase(params, &keys, 8, 1).unwrap();
        assert_eq!(naive.counts, want);
        assert_eq!(stag.counts, want);
    }

    #[test]
    fn naive_schedule_stalls_on_skew_but_staggered_does_not() {
        let params = LogpParams::new(16, 8, 1, 2).unwrap(); // capacity 4
        let keys = skewed_keys(16, 10, 8);
        let naive = naive_count_phase(params, &keys, 8, 2).unwrap();
        let stag = staggered_count_phase(params, &keys, 8, 2).unwrap();
        assert!(
            naive.stall_episodes > 0,
            "16 simultaneous senders to one owner must exceed capacity 4"
        );
        assert_eq!(stag.stall_episodes, 0, "staggered schedule is stall-free");
        assert_eq!(naive.counts, stag.counts);
        assert_eq!(stag.counts[0], 160);
    }

    #[test]
    fn skew_degrades_naive_cost_unpredictably() {
        // The paper's point: the naive LogP cost depends on the
        // (input-dependent) stalling pattern, not on a parameter formula.
        // The skewed input moves FEWER messages (one per processor instead
        // of one per digit) yet stalls and inflates per-message latency,
        // while the uniform input's larger relation is stall-free.
        // digits = p and every digit present at every processor: the
        // uniform relation is exactly the balanced all-to-all, which the
        // rotated naive schedule routes within capacity.
        let params = LogpParams::new(16, 8, 1, 2).unwrap();
        let balanced: Vec<Vec<Word>> = (0..16)
            .map(|_| (0..64).map(|q| (q % 16) as Word).collect())
            .collect();
        let uniform = naive_count_phase(params, &balanced, 16, 3).unwrap();
        let skewed = naive_count_phase(params, &skewed_keys(16, 64, 16), 16, 3).unwrap();
        assert_eq!(uniform.stall_episodes, 0, "uniform traffic stays in capacity");
        assert!(skewed.stall_episodes > 0);
        assert!(skewed.total_stall > Steps::ZERO);
        assert!(
            skewed.mean_latency > uniform.mean_latency,
            "skew must inflate latency: {} vs {}",
            skewed.mean_latency,
            uniform.mean_latency
        );
    }
}

//! Total exchange (all-to-all) on LogP with a capacity-respecting schedule.
//!
//! Each processor sends one message to every other — a `(p−1)`-relation.
//! The staggered schedule sends to `(me + 1 + t) mod p` in round `t`, so
//! every round is a permutation; pipelined at the gap rate this is the
//! off-line-optimal `2o + G(p−2) + L` pattern of §4.2, and the machine's
//! `forbid_stalling` verifies the capacity argument.

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{ModelError, Payload, ProcId, Steps, Word};

/// Exchange `data[i][j]` (the word processor `i` owes processor `j`).
/// Returns (gathered matrix `out[j][i]`, makespan).
pub fn all_to_all(
    params: LogpParams,
    data: &[Vec<Word>],
    seed: u64,
) -> Result<(Vec<Vec<Word>>, Steps), ModelError> {
    let p = params.p;
    assert_eq!(data.len(), p);
    for row in data {
        assert_eq!(row.len(), p);
    }
    if p == 1 {
        return Ok((vec![vec![data[0][0]]], Steps::ZERO));
    }

    let scripts: Vec<Script> = (0..p)
        .map(|me| {
            let mut ops = Vec::new();
            for t in 0..p - 1 {
                let dst = (me + 1 + t) % p;
                ops.push(Op::Send {
                    dst: ProcId::from(dst),
                    payload: Payload::words(0, &[me as Word, data[me][dst]]),
                });
            }
            ops.extend(std::iter::repeat_n(Op::Recv, p - 1));
            Script::new(ops)
        })
        .collect();

    let config = LogpConfig {
        forbid_stalling: true,
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, scripts);
    let report = machine.run()?;
    let mut out: Vec<Vec<Word>> = (0..p).map(|_| vec![0; p]).collect();
    for (j, script) in machine.into_programs().into_iter().enumerate() {
        out[j][j] = data[j][j]; // the self entry never travels
        for e in script.into_received() {
            let src = e.payload.data()[0] as usize;
            out[j][src] = e.payload.data()[1];
        }
    }
    Ok((out, report.makespan))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchanges_all_entries() {
        for p in [2usize, 4, 8, 16] {
            let params = LogpParams::new(p, 8, 1, 2).unwrap();
            let data: Vec<Vec<Word>> = (0..p)
                .map(|i| (0..p).map(|j| (i * 100 + j) as Word).collect())
                .collect();
            let (out, _) = all_to_all(params, &data, 1).unwrap();
            for (j, row) in out.iter().enumerate() {
                for (i, &w) in row.iter().enumerate() {
                    assert_eq!(w, (i * 100 + j) as Word, "p={p} i={i} j={j}");
                }
            }
        }
    }

    #[test]
    fn staggered_schedule_is_stall_free_and_near_optimal() {
        let p = 16;
        let params = LogpParams::new(p, 8, 1, 2).unwrap();
        let data: Vec<Vec<Word>> = vec![vec![1; p]; p];
        // forbid_stalling inside all_to_all already asserts stall-freedom.
        let (_, t) = all_to_all(params, &data, 2).unwrap();
        let optimal = 2 * params.o + params.g * (p as u64 - 2) + params.l;
        assert!(
            t.get() <= 3 * optimal,
            "makespan {t:?} vs off-line optimal {optimal}"
        );
    }

    #[test]
    fn single_processor() {
        let params = LogpParams::new(1, 4, 1, 2).unwrap();
        let (out, t) = all_to_all(params, &[vec![9]], 1).unwrap();
        assert_eq!(out, vec![vec![9]]);
        assert_eq!(t, Steps::ZERO);
    }
}

//! Native LogP algorithms.

pub mod alltoall;
pub mod bcast;
pub mod radix;
pub mod reduce;
pub mod scan;

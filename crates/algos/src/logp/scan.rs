//! Parallel prefix (scan) on LogP.
//!
//! Two tree passes over the contiguous range tree (the same shape the
//! ordered CB uses): an ascend pass computing subtree sums, and a descend
//! pass distributing left-context. Non-commutative-safe: children combine
//! strictly in processor order, so this computes the true prefix of the
//! processor sequence. `Θ(L log p / log(1 + ⌈L/G⌉))` like CB.

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, LogpProcess, Op, ProcView};
use bvl_model::{Envelope, ModelError, Payload, ProcId, Steps, Word};

/// Tree plan for one processor (contiguous k-ary range tree, owner = lo).
#[derive(Clone, Debug, Default)]
struct ScanPlan {
    /// Child owners in range order (they send subtree sums up).
    gather_from: Vec<u32>,
    /// Sizes of the sibling part owned by each gather_from entry — used to
    /// order prefixes; kept for clarity/debugging.
    parent: Option<u32>,
}

fn build_plans(k: usize, plans: &mut Vec<ScanPlan>, lo: usize, hi: usize) {
    let n = hi - lo;
    if n <= 1 {
        return;
    }
    let part = n.div_ceil(k);
    let mut s = lo;
    let mut idx = 0;
    while s < hi {
        let e = (s + part).min(hi);
        build_plans(k, plans, s, e);
        if idx > 0 {
            plans[s].parent = Some(lo as u32);
            plans[lo].gather_from.push(s as u32);
        }
        s = e;
        idx += 1;
    }
}

enum Phase {
    Gather,
    SendUp,
    AwaitPrefix,
    Scatter(usize),
    Done,
}

/// One processor of the scan.
pub struct ScanProc {
    plan: ScanPlan,
    op: fn(Word, Word) -> Word,
    /// This processor's own input value.
    value: Word,
    /// Subtree sums received from children, keyed by child owner (arrival
    /// order is nondeterministic; folds use `plan.gather_from` order).
    child_sums: Vec<(u32, Word)>,
    /// Fold of everything strictly left of this subtree. Outer `None` =
    /// not yet known; `Some(None)` = known and empty (root / leftmost).
    context: Option<Option<Word>>,
    phase: Phase,
    /// Final inclusive prefix for this processor.
    result: Option<Word>,
}

impl ScanProc {
    /// The computed inclusive prefix (after the run).
    pub fn result(&self) -> Option<Word> {
        self.result
    }

    /// Fold of own value plus the first `upto` children's subtree sums,
    /// in range (processor) order.
    fn fold_through(&self, upto: usize) -> Word {
        let mut acc = self.value;
        for &child in &self.plan.gather_from[..upto] {
            let (_, sum) = self
                .child_sums
                .iter()
                .find(|&&(src, _)| src == child)
                .expect("sum from every child");
            acc = (self.op)(acc, *sum);
        }
        acc
    }
}

impl LogpProcess for ScanProc {
    fn next_op(&mut self, _view: &ProcView) -> Op {
        loop {
            match self.phase {
                Phase::Gather => {
                    if self.child_sums.len() < self.plan.gather_from.len() {
                        return Op::Recv;
                    }
                    self.phase = Phase::SendUp;
                }
                Phase::SendUp => match self.plan.parent {
                    Some(parent) => {
                        self.phase = Phase::AwaitPrefix;
                        return Op::Send {
                            dst: ProcId(parent),
                            payload: Payload::word(0, self.fold_through(self.child_sums.len())),
                        };
                    }
                    None => {
                        self.context = Some(None); // root: nothing to the left
                        self.phase = Phase::Scatter(0);
                    }
                },
                Phase::AwaitPrefix => {
                    if self.context.is_none() {
                        return Op::Recv;
                    }
                    self.phase = Phase::Scatter(0);
                }
                Phase::Scatter(i) => {
                    let lc = self.context.expect("context known");
                    if i < self.plan.gather_from.len() {
                        self.phase = Phase::Scatter(i + 1);
                        // Left context of child i = ours ⊕ own value ⊕ the
                        // subtree sums of children 0..i (never empty: own
                        // value is always to the child's left).
                        let acc = self.fold_through(i);
                        let ctx = match lc {
                            Some(l) => (self.op)(l, acc),
                            None => acc,
                        };
                        return Op::Send {
                            dst: ProcId(self.plan.gather_from[i]),
                            payload: Payload::word(1, ctx),
                        };
                    }
                    self.result = Some(match lc {
                        Some(l) => (self.op)(l, self.value),
                        None => self.value,
                    });
                    self.phase = Phase::Done;
                }
                Phase::Done => return Op::Halt,
            }
        }
    }

    fn on_recv(&mut self, msg: Envelope) {
        if msg.payload.tag == 0 {
            self.child_sums.push((msg.src.0, msg.payload.expect_word()));
        } else {
            self.context = Some(Some(msg.payload.expect_word()));
        }
    }
}

/// Inclusive prefix over one value per processor with an associative `op`
/// (identity element must be `op`-neutral only conceptually; none is
/// required). Returns (per-processor prefixes, makespan).
pub fn scan(
    params: LogpParams,
    values: &[Word],
    op: fn(Word, Word) -> Word,
    seed: u64,
) -> Result<(Vec<Word>, Steps), ModelError> {
    let p = params.p;
    assert_eq!(values.len(), p);
    let k = 2usize.max(params.capacity() as usize);
    let mut plans = vec![ScanPlan::default(); p];
    build_plans(k, &mut plans, 0, p);
    let procs: Vec<ScanProc> = plans
        .into_iter()
        .zip(values)
        .map(|(plan, &v)| ScanProc {
            plan,
            op,
            value: v,
            child_sums: Vec::new(),
            context: None,
            phase: Phase::Gather,
            result: None,
        })
        .collect();
    // The range tree bounds per-level fan-in by k-1 <= capacity, but at
    // capacity 1 two leaf children from different levels can briefly
    // overlap in transit to one owner; the paper's timed-slot discipline
    // is defined for the heap tree, so here we simply let the Stalling
    // Rule absorb those rare overlaps (correctness is unaffected, and the
    // stall time is bounded by one latency per level).
    let config = LogpConfig {
        forbid_stalling: params.capacity() > 1,
        seed,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, procs);
    let report = machine.run()?;
    let out: Vec<Word> = machine
        .into_programs()
        .iter()
        .map(|pr| pr.result().expect("scan completed"))
        .collect();
    Ok((out, report.makespan))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reference(values: &[Word], op: fn(Word, Word) -> Word) -> Vec<Word> {
        let mut out = Vec::with_capacity(values.len());
        let mut acc = None;
        for &v in values {
            acc = Some(match acc {
                None => v,
                Some(a) => op(a, v),
            });
            out.push(acc.unwrap());
        }
        out
    }

    #[test]
    fn prefix_sums_match_reference() {
        for p in [1usize, 2, 3, 7, 16, 25] {
            let params = LogpParams::new(p, 8, 1, 2).unwrap();
            let values: Vec<Word> = (0..p as Word).map(|i| i * 3 - 4).collect();
            let (got, _) = scan(params, &values, |a, b| a + b, 1).unwrap();
            assert_eq!(got, reference(&values, |a, b| a + b), "p={p}");
        }
    }

    #[test]
    fn prefix_max_and_noncommutative_shapes() {
        let params = LogpParams::new(13, 8, 1, 2).unwrap();
        let values: Vec<Word> = (0..13).map(|i| (i * 5) % 7).collect();
        let (got, _) = scan(params, &values, Word::max, 2).unwrap();
        assert_eq!(got, reference(&values, Word::max));
        // A non-commutative associative op: right projection — the prefix
        // at i must be exactly value[i], which catches any out-of-order
        // folding that a commutative op would mask.
        let f = |_a: Word, b: Word| b;
        let values: Vec<Word> = (0..13).map(|i| i * 11 - 30).collect();
        let (got, _) = scan(params, &values, f, 3).unwrap();
        assert_eq!(got, values);
        // And left projection: every prefix is value[0].
        let g = |a: Word, _b: Word| a;
        let (got, _) = scan(params, &values, g, 4).unwrap();
        assert_eq!(got, vec![values[0]; 13]);
    }

    #[test]
    fn capacity_one_scan_is_stall_free() {
        let params = LogpParams::new(16, 6, 1, 6).unwrap(); // capacity 1
        let values = vec![1; 16];
        let (got, _) = scan(params, &values, |a, b| a + b, 4).unwrap();
        assert_eq!(got, (1..=16).collect::<Vec<Word>>());
    }
}

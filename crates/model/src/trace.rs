//! Lightweight execution tracing.
//!
//! Engines emit [`Event`]s into a [`Trace`]; tests and the experiment
//! binaries use traces to assert fine-grained model semantics (gap spacing,
//! delivery deadlines, stall windows) without coupling to engine internals.
//! Tracing is off by default and costs one branch per event when disabled.

use crate::ids::{MsgId, ProcId};
use crate::time::Steps;

/// One machine-level event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A processor finished preparing a message and handed it to the medium.
    Submit {
        /// Time of submission.
        at: Steps,
        /// Sending processor.
        proc: ProcId,
        /// Message id.
        msg: MsgId,
        /// Destination.
        dst: ProcId,
    },
    /// The medium accepted a submitted message (LogP Stalling Rule).
    Accept {
        /// Time of acceptance.
        at: Steps,
        /// Message id.
        msg: MsgId,
    },
    /// A message was placed in the destination's input buffer/pool.
    Deliver {
        /// Time of delivery.
        at: Steps,
        /// Message id.
        msg: MsgId,
        /// Destination processor.
        dst: ProcId,
    },
    /// A processor acquired a buffered message (paid the receive overhead).
    Acquire {
        /// Time the acquisition completed.
        at: Steps,
        /// Acquiring processor.
        proc: ProcId,
        /// Message id.
        msg: MsgId,
    },
    /// A processor entered the stalling state.
    StallBegin {
        /// Time the stall began.
        at: Steps,
        /// Stalling processor.
        proc: ProcId,
    },
    /// A stalling processor became operational again.
    StallEnd {
        /// Time the stall ended.
        at: Steps,
        /// Processor that resumed.
        proc: ProcId,
    },
    /// A BSP superstep completed.
    Superstep {
        /// Superstep index.
        index: u64,
        /// Maximum local work in the superstep.
        w: u64,
        /// Degree of the routed relation.
        h: u64,
        /// Superstep cost `w + g*h + l`.
        cost: Steps,
    },
}

impl Event {
    /// The timestamp carried by the event.
    pub fn at(&self) -> Steps {
        match *self {
            Event::Submit { at, .. }
            | Event::Accept { at, .. }
            | Event::Deliver { at, .. }
            | Event::Acquire { at, .. }
            | Event::StallBegin { at, .. }
            | Event::StallEnd { at, .. } => at,
            Event::Superstep { cost, .. } => cost,
        }
    }
}

/// An append-only event log with an on/off switch.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A no-op trace (the default).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterate over events matching a predicate.
    pub fn filter<'a, F: Fn(&Event) -> bool + 'a>(
        &'a self,
        f: F,
    ) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| f(e))
    }

    /// Drop all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Event::Accept {
            at: Steps(1),
            msg: MsgId(0),
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(Event::Accept {
            at: Steps(1),
            msg: MsgId(0),
        });
        t.record(Event::Deliver {
            at: Steps(5),
            msg: MsgId(0),
            dst: ProcId(2),
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].at(), Steps(5));
    }

    #[test]
    fn filter_selects_matching() {
        let mut t = Trace::enabled();
        for i in 0..4u64 {
            t.record(Event::Accept {
                at: Steps(i),
                msg: MsgId(i),
            });
        }
        t.record(Event::StallBegin {
            at: Steps(9),
            proc: ProcId(1),
        });
        let stalls: Vec<_> = t.filter(|e| matches!(e, Event::StallBegin { .. })).collect();
        assert_eq!(stalls.len(), 1);
    }
}

//! Lightweight execution tracing.
//!
//! Engines emit [`Event`]s into a [`Trace`]; tests and the experiment
//! binaries use traces to assert fine-grained model semantics (gap spacing,
//! delivery deadlines, stall windows) without coupling to engine internals.
//! Tracing is off by default and costs one branch per event when disabled.

use crate::ids::{MsgId, ProcId};
use crate::time::Steps;

/// One machine-level event.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Event {
    /// A processor finished preparing a message and handed it to the medium.
    Submit {
        /// Time of submission.
        at: Steps,
        /// Sending processor.
        proc: ProcId,
        /// Message id.
        msg: MsgId,
        /// Destination.
        dst: ProcId,
    },
    /// The medium accepted a submitted message (LogP Stalling Rule).
    Accept {
        /// Time of acceptance.
        at: Steps,
        /// Message id.
        msg: MsgId,
    },
    /// A message was placed in the destination's input buffer/pool.
    Deliver {
        /// Time of delivery.
        at: Steps,
        /// Message id.
        msg: MsgId,
        /// Destination processor.
        dst: ProcId,
    },
    /// A processor acquired a buffered message (paid the receive overhead).
    Acquire {
        /// Time the acquisition completed.
        at: Steps,
        /// Acquiring processor.
        proc: ProcId,
        /// Message id.
        msg: MsgId,
    },
    /// A processor entered the stalling state.
    StallBegin {
        /// Time the stall began.
        at: Steps,
        /// Stalling processor.
        proc: ProcId,
    },
    /// A stalling processor became operational again.
    StallEnd {
        /// Time the stall ended.
        at: Steps,
        /// Processor that resumed.
        proc: ProcId,
    },
    /// A BSP superstep completed.
    Superstep {
        /// Superstep index.
        index: u64,
        /// Maximum local work in the superstep.
        w: u64,
        /// Degree of the routed relation.
        h: u64,
        /// Superstep cost `w + g*h + l`.
        cost: Steps,
    },
}

impl Event {
    /// The timestamp carried by the event.
    pub fn at(&self) -> Steps {
        match *self {
            Event::Submit { at, .. }
            | Event::Accept { at, .. }
            | Event::Deliver { at, .. }
            | Event::Acquire { at, .. }
            | Event::StallBegin { at, .. }
            | Event::StallEnd { at, .. } => at,
            Event::Superstep { cost, .. } => cost,
        }
    }
}

/// An append-only event log with an on/off switch.
#[derive(Clone, Debug, Default)]
pub struct Trace {
    enabled: bool,
    events: Vec<Event>,
}

impl Trace {
    /// A recording trace.
    pub fn enabled() -> Trace {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A no-op trace (the default).
    pub fn disabled() -> Trace {
        Trace::default()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    #[inline]
    pub fn record(&mut self, ev: Event) {
        if self.enabled {
            self.events.push(ev);
        }
    }

    /// The recorded events, in emission order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Iterate over events matching a predicate.
    pub fn filter<'a, F: Fn(&Event) -> bool + 'a>(
        &'a self,
        f: F,
    ) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| f(e))
    }

    /// Drop all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

/// Check the structural well-formedness of a trace, independent of any
/// model parameters.
///
/// Rules (violations are returned as human-readable strings, empty = OK):
///
/// * every [`MsgId`] progresses strictly through
///   Submit → Accept → Deliver → Acquire — no stage repeated, skipped, or
///   out of order (later stages may simply be absent, e.g. a message never
///   acquired);
/// * the stage times of each message are non-decreasing;
/// * a message is delivered to, and acquired by, the destination it was
///   submitted for;
/// * per processor, `StallBegin`/`StallEnd` strictly alternate starting
///   with `StallBegin`, with `StallEnd.at ≥ StallBegin.at`, and every
///   window is closed by the end of the trace.
///
/// This is the *syntax* of a trace; parameter-dependent semantics (gap
/// spacing, delivery deadlines, capacity) live in `bvl_logp::validate`.
pub fn validate_wellformed(trace: &Trace) -> Vec<String> {
    use std::collections::HashMap;

    // Lifecycle stage reached so far: 0 Submit, 1 Accept, 2 Deliver, 3 Acquire.
    struct MsgState {
        stage: u8,
        at: Steps,
        dst: ProcId,
    }
    let mut msgs: HashMap<MsgId, MsgState> = HashMap::new();
    let mut stalled: HashMap<ProcId, Steps> = HashMap::new();
    let mut errs = Vec::new();

    fn advance(
        msgs: &mut std::collections::HashMap<MsgId, MsgState>,
        msg: MsgId,
        stage: u8,
        name: &str,
        at: Steps,
        errs: &mut Vec<String>,
    ) {
        match msgs.get_mut(&msg) {
            None => errs.push(format!("{name} of {msg:?} at {at:?} without prior Submit")),
            Some(st) => {
                if st.stage + 1 != stage {
                    errs.push(format!(
                        "{name} of {msg:?} at {at:?} out of order (previous stage {})",
                        ["Submit", "Accept", "Deliver", "Acquire"][st.stage as usize]
                    ));
                } else if at < st.at {
                    errs.push(format!(
                        "{name} of {msg:?} at {at:?} precedes its previous stage at {:?}",
                        st.at
                    ));
                    st.stage = stage;
                } else {
                    st.stage = stage;
                    st.at = at;
                }
            }
        }
    }

    for ev in trace.events() {
        match *ev {
            Event::Submit { at, msg, dst, .. } => {
                if msgs
                    .insert(msg, MsgState { stage: 0, at, dst })
                    .is_some()
                {
                    errs.push(format!("duplicate Submit of {msg:?} at {at:?}"));
                }
            }
            Event::Accept { at, msg } => advance(&mut msgs, msg, 1, "Accept", at, &mut errs),
            Event::Deliver { at, msg, dst } => {
                advance(&mut msgs, msg, 2, "Deliver", at, &mut errs);
                if let Some(st) = msgs.get(&msg) {
                    if st.dst != dst {
                        errs.push(format!(
                            "Deliver of {msg:?} to {dst:?} but it was submitted for {:?}",
                            st.dst
                        ));
                    }
                }
            }
            Event::Acquire { at, proc, msg } => {
                advance(&mut msgs, msg, 3, "Acquire", at, &mut errs);
                if let Some(st) = msgs.get(&msg) {
                    if st.dst != proc {
                        errs.push(format!(
                            "Acquire of {msg:?} by {proc:?} but it was submitted for {:?}",
                            st.dst
                        ));
                    }
                }
            }
            Event::StallBegin { at, proc } => {
                if stalled.insert(proc, at).is_some() {
                    errs.push(format!("StallBegin for {proc:?} at {at:?} while already stalled"));
                }
            }
            Event::StallEnd { at, proc } => match stalled.remove(&proc) {
                None => errs.push(format!("StallEnd for {proc:?} at {at:?} without StallBegin")),
                Some(began) => {
                    if at < began {
                        errs.push(format!(
                            "StallEnd for {proc:?} at {at:?} precedes its StallBegin at {began:?}"
                        ));
                    }
                }
            },
            Event::Superstep { .. } => {}
        }
    }
    let mut open: Vec<_> = stalled.into_iter().collect();
    open.sort_by_key(|&(p, _)| p);
    for (proc, began) in open {
        errs.push(format!("stall window for {proc:?} opened at {began:?} never closed"));
    }
    errs
}

/// Panic with a readable report if [`validate_wellformed`] finds violations.
pub fn assert_wellformed(trace: &Trace) {
    let errs = validate_wellformed(trace);
    assert!(
        errs.is_empty(),
        "trace is not well-formed ({} violations):\n  {}",
        errs.len(),
        errs.join("\n  ")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::disabled();
        t.record(Event::Accept {
            at: Steps(1),
            msg: MsgId(0),
        });
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records_in_order() {
        let mut t = Trace::enabled();
        t.record(Event::Accept {
            at: Steps(1),
            msg: MsgId(0),
        });
        t.record(Event::Deliver {
            at: Steps(5),
            msg: MsgId(0),
            dst: ProcId(2),
        });
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].at(), Steps(5));
    }

    #[test]
    fn filter_selects_matching() {
        let mut t = Trace::enabled();
        for i in 0..4u64 {
            t.record(Event::Accept {
                at: Steps(i),
                msg: MsgId(i),
            });
        }
        t.record(Event::StallBegin {
            at: Steps(9),
            proc: ProcId(1),
        });
        let stalls: Vec<_> = t.filter(|e| matches!(e, Event::StallBegin { .. })).collect();
        assert_eq!(stalls.len(), 1);
    }

    fn full_lifecycle() -> Trace {
        let mut t = Trace::enabled();
        t.record(Event::Submit {
            at: Steps(1),
            proc: ProcId(0),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Accept { at: Steps(2), msg: MsgId(0) });
        t.record(Event::Deliver {
            at: Steps(6),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Acquire {
            at: Steps(8),
            proc: ProcId(1),
            msg: MsgId(0),
        });
        t
    }

    #[test]
    fn wellformed_accepts_clean_lifecycle_and_stalls() {
        let mut t = full_lifecycle();
        t.record(Event::StallBegin { at: Steps(3), proc: ProcId(0) });
        t.record(Event::StallEnd { at: Steps(5), proc: ProcId(0) });
        t.record(Event::StallBegin { at: Steps(7), proc: ProcId(0) });
        t.record(Event::StallEnd { at: Steps(7), proc: ProcId(0) });
        assert_eq!(validate_wellformed(&t), Vec::<String>::new());
        assert_wellformed(&t);
    }

    #[test]
    fn wellformed_allows_truncated_lifecycle() {
        let mut t = Trace::enabled();
        t.record(Event::Submit {
            at: Steps(1),
            proc: ProcId(0),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Accept { at: Steps(1), msg: MsgId(0) });
        assert!(validate_wellformed(&t).is_empty());
    }

    #[test]
    fn wellformed_rejects_out_of_order_stage() {
        let mut t = Trace::enabled();
        t.record(Event::Submit {
            at: Steps(1),
            proc: ProcId(0),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Deliver {
            at: Steps(3),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        let errs = validate_wellformed(&t);
        assert_eq!(errs.len(), 1);
        assert!(errs[0].contains("out of order"), "{errs:?}");
    }

    #[test]
    fn wellformed_rejects_time_regression() {
        let mut t = Trace::enabled();
        t.record(Event::Submit {
            at: Steps(5),
            proc: ProcId(0),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Accept { at: Steps(4), msg: MsgId(0) });
        let errs = validate_wellformed(&t);
        assert!(errs[0].contains("precedes"), "{errs:?}");
    }

    #[test]
    fn wellformed_rejects_wrong_destination() {
        let mut t = Trace::enabled();
        t.record(Event::Submit {
            at: Steps(1),
            proc: ProcId(0),
            msg: MsgId(0),
            dst: ProcId(1),
        });
        t.record(Event::Accept { at: Steps(1), msg: MsgId(0) });
        t.record(Event::Deliver {
            at: Steps(4),
            msg: MsgId(0),
            dst: ProcId(2),
        });
        let errs = validate_wellformed(&t);
        assert!(errs.iter().any(|e| e.contains("submitted for")), "{errs:?}");
    }

    #[test]
    fn wellformed_rejects_orphan_and_unclosed_stalls() {
        let mut t = Trace::enabled();
        t.record(Event::StallEnd { at: Steps(2), proc: ProcId(0) });
        t.record(Event::StallBegin { at: Steps(3), proc: ProcId(1) });
        let errs = validate_wellformed(&t);
        assert_eq!(errs.len(), 2, "{errs:?}");
        assert!(errs[0].contains("without StallBegin"));
        assert!(errs[1].contains("never closed"));
    }

    #[test]
    fn wellformed_rejects_double_stall_begin() {
        let mut t = Trace::enabled();
        t.record(Event::StallBegin { at: Steps(1), proc: ProcId(0) });
        t.record(Event::StallBegin { at: Steps(2), proc: ProcId(0) });
        t.record(Event::StallEnd { at: Steps(3), proc: ProcId(0) });
        let errs = validate_wellformed(&t);
        assert!(errs.iter().any(|e| e.contains("already stalled")), "{errs:?}");
    }
}

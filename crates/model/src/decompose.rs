//! Decomposition of h-relations into 1-relations.
//!
//! Paper §4.2: "By Hall's Theorem, any h-relation can be decomposed into
//! disjoint 1-relations and, therefore, be routed off-line in optimal
//! `2o + G(h−1) + L` time in LogP." This module makes that theorem
//! constructive, two ways:
//!
//! * [`euler_split`] — pad the bipartite (source, destination) multigraph to
//!   `H`-regular with `H` the next power of two ≥ h, then recursively halve
//!   it along Euler circuits. Guaranteed `O(E log h)` time and at most
//!   `2h − 1` rounds (exactly `H ≤ 2h` before dummy removal, minus any rounds
//!   left empty).
//! * [`koenig_color`] — exact König edge coloring by alternating-path color
//!   swaps: exactly `h` rounds, the optimum Hall's theorem promises, at a
//!   higher (but practically fine) worst-case cost.
//!
//! Both return a [`Decomposition`]: a partition of demand indices into rounds
//! such that within a round every processor sends at most one and receives at
//! most one message (a partial permutation).

use crate::hrelation::HRelation;

/// A partition of the demands of an [`HRelation`] into 1-relation rounds.
#[derive(Clone, Debug)]
pub struct Decomposition {
    rounds: Vec<Vec<usize>>,
}

impl Decomposition {
    /// The rounds, each a list of demand indices forming a partial permutation.
    pub fn rounds(&self) -> &[Vec<usize>] {
        &self.rounds
    }

    /// Number of rounds.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Check that `self` is a valid decomposition of `rel`:
    /// every demand index appears exactly once, and every round is a
    /// 1-relation. Returns a human-readable violation if not.
    pub fn validate(&self, rel: &HRelation) -> Result<(), String> {
        let n = rel.len();
        let mut seen = vec![false; n];
        for (r, round) in self.rounds.iter().enumerate() {
            let mut src_used = vec![false; rel.p()];
            let mut dst_used = vec![false; rel.p()];
            for &idx in round {
                if idx >= n {
                    return Err(format!("round {r}: demand index {idx} out of range"));
                }
                if seen[idx] {
                    return Err(format!("demand {idx} appears twice"));
                }
                seen[idx] = true;
                let d = &rel.demands()[idx];
                if src_used[d.src.index()] {
                    return Err(format!("round {r}: source {:?} used twice", d.src));
                }
                if dst_used[d.dst.index()] {
                    return Err(format!("round {r}: dest {:?} used twice", d.dst));
                }
                src_used[d.src.index()] = true;
                dst_used[d.dst.index()] = true;
            }
        }
        if let Some(missing) = seen.iter().position(|&s| !s) {
            return Err(format!("demand {missing} not scheduled"));
        }
        Ok(())
    }
}

/// Edge of the internal bipartite multigraph. `demand` is `usize::MAX` for
/// padding (dummy) edges.
#[derive(Clone, Copy, Debug)]
struct Edge {
    left: usize,
    right: usize,
    demand: usize,
}

const DUMMY: usize = usize::MAX;

/// Decompose via recursive Euler splitting (see module docs).
///
/// Produces at most `next_power_of_two(h)` rounds; empty rounds (all-dummy
/// matchings) are dropped.
pub fn euler_split(rel: &HRelation) -> Decomposition {
    let p = rel.p();
    let h = rel.degree();
    if h == 0 {
        return Decomposition { rounds: Vec::new() };
    }
    let target = h.next_power_of_two();

    // Build edges and pad both sides to `target`-regular.
    let mut edges: Vec<Edge> = rel
        .demands()
        .iter()
        .enumerate()
        .map(|(i, d)| Edge {
            left: d.src.index(),
            right: d.dst.index(),
            demand: i,
        })
        .collect();
    let mut ldef: Vec<usize> = rel.out_degrees().iter().map(|&d| target - d).collect();
    let mut rdef: Vec<usize> = rel.in_degrees().iter().map(|&d| target - d).collect();
    // Greedy pairing of deficiencies. Total left deficiency equals total
    // right deficiency because both sides sum to p*target - |E|.
    let mut ri = 0usize;
    for (li, ld) in ldef.iter_mut().enumerate() {
        while *ld > 0 {
            while ri < p && rdef[ri] == 0 {
                ri += 1;
            }
            debug_assert!(ri < p, "deficiency mismatch");
            let take = (*ld).min(rdef[ri]);
            for _ in 0..take {
                edges.push(Edge {
                    left: li,
                    right: ri,
                    demand: DUMMY,
                });
            }
            *ld -= take;
            rdef[ri] -= take;
        }
    }

    let mut rounds: Vec<Vec<usize>> = Vec::with_capacity(target);
    split_rec(p, edges, target, &mut rounds);
    rounds.retain(|r| !r.is_empty());
    Decomposition { rounds }
}

/// Recursively split a `deg`-regular bipartite multigraph (`deg` a power of
/// two) until 1-regular, collecting real-demand matchings into `out`.
fn split_rec(p: usize, edges: Vec<Edge>, deg: usize, out: &mut Vec<Vec<usize>>) {
    if deg == 1 {
        let round: Vec<usize> = edges
            .iter()
            .filter(|e| e.demand != DUMMY)
            .map(|e| e.demand)
            .collect();
        out.push(round);
        return;
    }
    let (a, b) = halve(p, &edges);
    split_rec(p, a, deg / 2, out);
    split_rec(p, b, deg / 2, out);
}

/// Split an even-degree bipartite multigraph into two halves with exactly
/// half the degree at every vertex, by alternating edges along Euler circuits
/// (every circuit in a bipartite graph has even length, so alternation is
/// consistent around each circuit).
fn halve(p: usize, edges: &[Edge]) -> (Vec<Edge>, Vec<Edge>) {
    // Vertices: 0..p are left, p..2p are right.
    let nv = 2 * p;
    let mut adj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); nv]; // (other vertex, edge id)
    for (i, e) in edges.iter().enumerate() {
        adj[e.left].push((p + e.right, i));
        adj[p + e.right].push((e.left, i));
    }
    let mut ptr = vec![0usize; nv];
    let mut used = vec![false; edges.len()];
    let mut side = vec![false; edges.len()]; // false -> A, true -> B

    // Iterative Hierholzer over every component; alternate sides along the
    // traversal order of each closed circuit.
    for start in 0..nv {
        while ptr[start] < adj[start].len() {
            // Trace one closed circuit from `start` (all degrees are even, so
            // every maximal trail from `start` returns to `start`).
            let mut circuit_edges: Vec<usize> = Vec::new();
            let mut v = start;
            loop {
                // Advance past used edges.
                while ptr[v] < adj[v].len() && used[adj[v][ptr[v]].1] {
                    ptr[v] += 1;
                }
                if ptr[v] == adj[v].len() {
                    break; // circuit closed back at a saturated vertex
                }
                let (w, eid) = adj[v][ptr[v]];
                used[eid] = true;
                circuit_edges.push(eid);
                v = w;
                if v == start {
                    // Closed a circuit; assign alternating sides and look for
                    // further circuits from `start`.
                    for (k, &eid) in circuit_edges.iter().enumerate() {
                        side[eid] = k % 2 == 1;
                    }
                    circuit_edges.clear();
                }
            }
            debug_assert!(
                circuit_edges.is_empty(),
                "trail did not close into a circuit (odd degree?)"
            );
        }
    }

    let mut a = Vec::with_capacity(edges.len() / 2);
    let mut b = Vec::with_capacity(edges.len() / 2);
    for (i, e) in edges.iter().enumerate() {
        if side[i] {
            b.push(*e);
        } else {
            a.push(*e);
        }
    }
    (a, b)
}

/// Exact König edge coloring: decompose into exactly `h` rounds.
///
/// For each demand in turn, pick the smallest color free at its source and at
/// its destination; when they differ, swap colors along the alternating path
/// so both endpoints free a common color. Bipartiteness guarantees the path
/// never cycles back, so `h` colors always suffice (König, 1916).
pub fn koenig_color(rel: &HRelation) -> Decomposition {
    let p = rel.p();
    let h = rel.degree();
    if h == 0 {
        return Decomposition { rounds: Vec::new() };
    }
    const NONE: usize = usize::MAX;
    // colored[vertex][color] = edge id (vertices: left 0..p, right p..2p)
    let mut colored: Vec<Vec<usize>> = vec![vec![NONE; h]; 2 * p];
    let mut edge_color: Vec<usize> = vec![NONE; rel.len()];
    let ends: Vec<(usize, usize)> = rel
        .demands()
        .iter()
        .map(|d| (d.src.index(), p + d.dst.index()))
        .collect();

    for e in 0..rel.len() {
        let (u, v) = ends[e];
        let a = (0..h).find(|&c| colored[u][c] == NONE).expect("degree bound");
        let b = (0..h).find(|&c| colored[v][c] == NONE).expect("degree bound");
        if a == b {
            colored[u][a] = e;
            colored[v][a] = e;
            edge_color[e] = a;
            continue;
        }
        // Collect the maximal (a, b)-alternating path starting at v along
        // color a. In a properly colored graph this component is a simple
        // path (v has no b-edge, so v is an endpoint), and bipartiteness
        // guarantees it never reaches u: arrivals at source-side vertices
        // always use color a, which is free at u.
        let mut path: Vec<usize> = Vec::new();
        let mut cur = v;
        let mut want = a;
        loop {
            let f = colored[cur][want];
            if f == NONE {
                break;
            }
            path.push(f);
            cur = if ends[f].0 == cur { ends[f].1 } else { ends[f].0 };
            want = if want == a { b } else { a };
        }
        // Swap colors a <-> b along the path: clear all table entries first,
        // then reinsert with swapped colors (the swapped coloring is proper,
        // so reinsertion never collides).
        for &f in &path {
            let c = edge_color[f];
            colored[ends[f].0][c] = NONE;
            colored[ends[f].1][c] = NONE;
        }
        for &f in &path {
            let c = if edge_color[f] == a { b } else { a };
            edge_color[f] = c;
            debug_assert_eq!(colored[ends[f].0][c], NONE);
            debug_assert_eq!(colored[ends[f].1][c], NONE);
            colored[ends[f].0][c] = f;
            colored[ends[f].1][c] = f;
        }
        debug_assert_eq!(colored[u][a], NONE);
        debug_assert_eq!(colored[v][a], NONE);
        colored[u][a] = e;
        colored[v][a] = e;
        edge_color[e] = a;
    }

    let mut rounds: Vec<Vec<usize>> = vec![Vec::new(); h];
    for (e, &c) in edge_color.iter().enumerate() {
        rounds[c].push(e);
    }
    rounds.retain(|r| !r.is_empty());
    Decomposition { rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::ProcId;
    use crate::rngutil::SeedStream;

    fn check_both(rel: &HRelation) {
        let d1 = euler_split(rel);
        d1.validate(rel).expect("euler_split invalid");
        assert!(d1.num_rounds() <= rel.degree().next_power_of_two().max(1));
        let d2 = koenig_color(rel);
        d2.validate(rel).expect("koenig invalid");
        assert!(d2.num_rounds() <= rel.degree());
    }

    #[test]
    fn empty_relation() {
        let rel = HRelation::new(4);
        assert_eq!(euler_split(&rel).num_rounds(), 0);
        assert_eq!(koenig_color(&rel).num_rounds(), 0);
    }

    #[test]
    fn permutation_is_single_round() {
        let rel = HRelation::permutation(&[3, 0, 1, 2]);
        let d = euler_split(&rel);
        d.validate(&rel).unwrap();
        assert_eq!(d.num_rounds(), 1);
        let k = koenig_color(&rel);
        assert_eq!(k.num_rounds(), 1);
    }

    #[test]
    fn exact_relations_decompose() {
        let s = SeedStream::new(11);
        for (p, h) in [(4, 2), (8, 3), (16, 5), (9, 7), (32, 8)] {
            let mut rng = s.derive("rel", (p * 100 + h) as u64);
            let rel = HRelation::random_exact(&mut rng, p, h);
            check_both(&rel);
        }
    }

    #[test]
    fn irregular_relations_decompose() {
        let s = SeedStream::new(12);
        for (p, m) in [(8, 1), (8, 4), (16, 6), (5, 3)] {
            let mut rng = s.derive("rel", (p * 100 + m) as u64);
            let rel = HRelation::random_uniform(&mut rng, p, m);
            check_both(&rel);
        }
    }

    #[test]
    fn hot_spot_decomposes_into_indegree_rounds() {
        let rel = HRelation::hot_spot(8, ProcId(0), 7, 3);
        let k = koenig_color(&rel);
        k.validate(&rel).unwrap();
        assert_eq!(k.num_rounds(), 21); // in-degree dominates
        let e = euler_split(&rel);
        e.validate(&rel).unwrap();
    }

    #[test]
    fn all_to_all_decomposes() {
        let rel = HRelation::all_to_all(7);
        check_both(&rel);
        let k = koenig_color(&rel);
        assert_eq!(k.num_rounds(), 6);
    }

    #[test]
    fn koenig_round_count_is_exactly_h_on_regular() {
        let mut rng = SeedStream::new(13).derive("r", 0);
        let rel = HRelation::random_exact(&mut rng, 12, 6);
        let k = koenig_color(&rel);
        assert_eq!(k.num_rounds(), 6);
    }

    #[test]
    fn validate_catches_duplicate_and_missing() {
        let rel = HRelation::permutation(&[1, 0]);
        let bad = Decomposition {
            rounds: vec![vec![0, 0]],
        };
        assert!(bad.validate(&rel).is_err());
        let missing = Decomposition { rounds: vec![vec![0]] };
        assert!(missing.validate(&rel).is_err());
    }

    #[test]
    fn validate_catches_non_matching_round() {
        // Two demands from the same source in one round.
        let mut rel = HRelation::new(3);
        rel.push(ProcId(0), ProcId(1), crate::msg::Payload::tagged(0));
        rel.push(ProcId(0), ProcId(2), crate::msg::Payload::tagged(0));
        let bad = Decomposition {
            rounds: vec![vec![0, 1]],
        };
        assert!(bad.validate(&rel).is_err());
    }
}

//! h-relations.
//!
//! An *h-relation* is a set of messages in which every processor is the
//! source of at most `h` and the destination of at most `h` messages — the
//! communication pattern both models price (BSP: `g·h` per superstep; LogP:
//! the object Theorems 2 and 3 route). This module defines the pattern, its
//! degree, and the generators used by the paper's experiments:
//!
//! * random relations of prescribed degree,
//! * partial/full permutations (1-relations),
//! * hot-spot patterns (the stalling studies of §2.2 and §3),
//! * broadcast and all-to-all patterns (workload kernels).

use crate::ids::ProcId;
use crate::msg::{Payload, Word};
use crate::rngutil;
use rand::RngCore;

/// One directed communication demand: `src` must deliver `payload` to `dst`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Demand {
    /// Source processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Message body.
    pub payload: Payload,
}

/// A multiset of communication demands over a `p`-processor machine.
#[derive(Clone, Debug, Default)]
pub struct HRelation {
    p: usize,
    demands: Vec<Demand>,
}

impl HRelation {
    /// An empty relation over `p` processors.
    pub fn new(p: usize) -> HRelation {
        HRelation { p, demands: Vec::new() }
    }

    /// Build from an explicit demand list, validating destinations.
    ///
    /// # Panics
    /// If any endpoint is outside `0..p`.
    pub fn from_demands(p: usize, demands: Vec<Demand>) -> HRelation {
        for d in &demands {
            assert!(d.src.index() < p, "source {:?} out of range p={p}", d.src);
            assert!(d.dst.index() < p, "dest {:?} out of range p={p}", d.dst);
        }
        HRelation { p, demands }
    }

    /// Number of processors.
    pub fn p(&self) -> usize {
        self.p
    }

    /// The demands.
    pub fn demands(&self) -> &[Demand] {
        &self.demands
    }

    /// Consume into the demand list.
    pub fn into_demands(self) -> Vec<Demand> {
        self.demands
    }

    /// Total number of messages.
    pub fn len(&self) -> usize {
        self.demands.len()
    }

    /// True when there are no messages.
    pub fn is_empty(&self) -> bool {
        self.demands.is_empty()
    }

    /// Add one demand.
    pub fn push(&mut self, src: ProcId, dst: ProcId, payload: Payload) {
        assert!(src.index() < self.p && dst.index() < self.p);
        self.demands.push(Demand { src, dst, payload });
    }

    /// Out-degree (messages sent) per processor.
    pub fn out_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.p];
        for m in &self.demands {
            d[m.src.index()] += 1;
        }
        d
    }

    /// In-degree (messages received) per processor.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut d = vec![0usize; self.p];
        for m in &self.demands {
            d[m.dst.index()] += 1;
        }
        d
    }

    /// `r`: maximum number of messages sent by any processor.
    pub fn max_out_degree(&self) -> usize {
        self.out_degrees().into_iter().max().unwrap_or(0)
    }

    /// `s`: maximum number of messages received by any processor.
    pub fn max_in_degree(&self) -> usize {
        self.in_degrees().into_iter().max().unwrap_or(0)
    }

    /// The degree `h = max{r, s}` (paper §2.1 / §4.2).
    pub fn degree(&self) -> usize {
        self.max_out_degree().max(self.max_in_degree())
    }

    /// A canonical sort key view `(dst, src, tag)` — used by tests to compare
    /// delivered message sets against the intended relation.
    pub fn canonical(&self) -> Vec<(u32, u32, u32, Vec<Word>)> {
        let mut v: Vec<_> = self
            .demands
            .iter()
            .map(|d| (d.dst.0, d.src.0, d.payload.tag, d.payload.data().to_vec()))
            .collect();
        v.sort();
        v
    }

    // ------------------------------------------------------------------
    // Generators
    // ------------------------------------------------------------------

    /// A (full) permutation relation: processor `i` sends one message to
    /// `perm[i]`. A 1-relation.
    pub fn permutation(perm: &[usize]) -> HRelation {
        let p = perm.len();
        let mut rel = HRelation::new(p);
        for (i, &d) in perm.iter().enumerate() {
            rel.push(
                ProcId::from(i),
                ProcId::from(d),
                Payload::word(0, i as Word),
            );
        }
        rel
    }

    /// A uniformly random permutation relation.
    pub fn random_permutation<R: RngCore>(rng: &mut R, p: usize) -> HRelation {
        HRelation::permutation(&rngutil::random_permutation(rng, p))
    }

    /// An exact random `h`-relation: every processor sends exactly `h`
    /// messages and receives exactly `h` messages (the union of `h`
    /// independent random permutations). This is the worst case assumed in
    /// the Theorem 3 analysis ("each processor is source/destination of
    /// exactly h messages").
    pub fn random_exact<R: RngCore>(rng: &mut R, p: usize, h: usize) -> HRelation {
        let mut rel = HRelation::new(p);
        for round in 0..h {
            let perm = rngutil::random_permutation(rng, p);
            for (i, &d) in perm.iter().enumerate() {
                rel.push(
                    ProcId::from(i),
                    ProcId::from(d),
                    Payload::word(round as u32, i as Word),
                );
            }
        }
        rel
    }

    /// A random relation with uniformly chosen destinations: every processor
    /// sends `msgs_per_proc` messages to independent uniform destinations.
    /// In-degree concentrates around `msgs_per_proc` but has tails — the
    /// natural "unknown h" workload for the deterministic protocol.
    pub fn random_uniform<R: RngCore>(rng: &mut R, p: usize, msgs_per_proc: usize) -> HRelation {
        let mut rel = HRelation::new(p);
        for i in 0..p {
            for k in 0..msgs_per_proc {
                let d = rngutil::uniform_below(rng, p);
                rel.push(
                    ProcId::from(i),
                    ProcId::from(d),
                    Payload::word(k as u32, i as Word),
                );
            }
        }
        rel
    }

    /// A hot-spot pattern: `senders` distinct processors (chosen from the
    /// non-target ids in order) each send `k` messages to a single `target`.
    /// This is the pattern that triggers the Stalling Rule (§2.2).
    pub fn hot_spot(p: usize, target: ProcId, senders: usize, k: usize) -> HRelation {
        assert!(target.index() < p);
        assert!(senders < p, "need at least one non-sender (the target)");
        let mut rel = HRelation::new(p);
        let mut chosen = 0usize;
        for i in 0..p {
            if i == target.index() {
                continue;
            }
            if chosen == senders {
                break;
            }
            for j in 0..k {
                rel.push(ProcId::from(i), target, Payload::word(j as u32, i as Word));
            }
            chosen += 1;
        }
        rel
    }

    /// Broadcast pattern: `root` sends one message to every other processor —
    /// a `(p-1)`-relation concentrated at the root.
    pub fn broadcast(p: usize, root: ProcId) -> HRelation {
        let mut rel = HRelation::new(p);
        for i in 0..p {
            if i != root.index() {
                rel.push(root, ProcId::from(i), Payload::word(0, i as Word));
            }
        }
        rel
    }

    /// The bit-reversal permutation on `p = 2^k` processors — the classic
    /// adversarial input for dimension-order routing on meshes (Ω(√p·√p)
    /// congestion at the bisection), used by the routing ablations.
    pub fn bit_reversal(p: usize) -> HRelation {
        assert!(p.is_power_of_two() && p >= 2);
        let k = p.trailing_zeros();
        let perm: Vec<usize> = (0..p)
            .map(|i| (i as u64).reverse_bits() as usize >> (64 - k))
            .collect();
        HRelation::permutation(&perm)
    }

    /// The matrix-transpose permutation on `p = m²` processors
    /// (`(i, j) → (j, i)` on the `m × m` grid) — another classic greedy
    /// worst case.
    pub fn transpose(m: usize) -> HRelation {
        let p = m * m;
        let perm: Vec<usize> = (0..p).map(|v| (v % m) * m + v / m).collect();
        HRelation::permutation(&perm)
    }

    /// Total exchange (all-to-all): every processor sends one message to
    /// every other processor — a `(p-1)`-relation.
    pub fn all_to_all(p: usize) -> HRelation {
        let mut rel = HRelation::new(p);
        for i in 0..p {
            for j in 0..p {
                if i != j {
                    rel.push(
                        ProcId::from(i),
                        ProcId::from(j),
                        Payload::word(0, (i * p + j) as Word),
                    );
                }
            }
        }
        rel
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngutil::SeedStream;

    #[test]
    fn degree_of_permutation_is_one() {
        let rel = HRelation::permutation(&[1, 2, 3, 0]);
        assert_eq!(rel.degree(), 1);
        assert_eq!(rel.len(), 4);
    }

    #[test]
    fn random_exact_has_exact_degree() {
        let mut rng = SeedStream::new(1).derive("t", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 5);
        assert_eq!(rel.out_degrees(), vec![5; 16]);
        assert_eq!(rel.in_degrees(), vec![5; 16]);
        assert_eq!(rel.degree(), 5);
    }

    #[test]
    fn random_uniform_respects_out_degree() {
        let mut rng = SeedStream::new(2).derive("t", 0);
        let rel = HRelation::random_uniform(&mut rng, 8, 3);
        assert_eq!(rel.out_degrees(), vec![3; 8]);
        assert!(rel.degree() >= 3);
    }

    #[test]
    fn hot_spot_degree() {
        let rel = HRelation::hot_spot(8, ProcId(3), 5, 4);
        assert_eq!(rel.max_in_degree(), 20);
        assert_eq!(rel.max_out_degree(), 4);
        assert_eq!(rel.in_degrees()[3], 20);
        assert_eq!(rel.out_degrees()[3], 0);
    }

    #[test]
    fn broadcast_counts() {
        let rel = HRelation::broadcast(6, ProcId(2));
        assert_eq!(rel.len(), 5);
        assert_eq!(rel.max_out_degree(), 5);
        assert_eq!(rel.max_in_degree(), 1);
    }

    #[test]
    fn all_to_all_counts() {
        let rel = HRelation::all_to_all(5);
        assert_eq!(rel.len(), 20);
        assert_eq!(rel.degree(), 4);
    }

    #[test]
    fn bit_reversal_is_an_involution_permutation() {
        let rel = HRelation::bit_reversal(16);
        assert_eq!(rel.degree(), 1);
        // Applying the map twice is the identity.
        for d in rel.demands() {
            let back = HRelation::bit_reversal(16)
                .demands()
                .iter()
                .find(|e| e.src == d.dst)
                .unwrap()
                .dst;
            assert_eq!(back, d.src);
        }
    }

    #[test]
    fn transpose_swaps_coordinates() {
        let rel = HRelation::transpose(4);
        assert_eq!(rel.degree(), 1);
        let d = &rel.demands()[1]; // (0,1) -> (1,0)
        assert_eq!(d.src, ProcId(1));
        assert_eq!(d.dst, ProcId(4));
    }

    #[test]
    #[should_panic]
    fn push_rejects_out_of_range() {
        let mut rel = HRelation::new(4);
        rel.push(ProcId(0), ProcId(4), Payload::tagged(0));
    }

    #[test]
    fn canonical_is_order_independent() {
        let mut a = HRelation::new(3);
        a.push(ProcId(0), ProcId(1), Payload::word(0, 5));
        a.push(ProcId(2), ProcId(1), Payload::word(0, 6));
        let mut b = HRelation::new(3);
        b.push(ProcId(2), ProcId(1), Payload::word(0, 6));
        b.push(ProcId(0), ProcId(1), Payload::word(0, 5));
        assert_eq!(a.canonical(), b.canonical());
    }
}

//! # bvl-model — shared substrate for the BSP-vs-LogP reproduction
//!
//! This crate holds everything both machine models (and the network
//! substrate) agree on:
//!
//! * [`time::Steps`] — the discrete time unit. Both BSP and LogP normalize
//!   the time unit to "one local operation" (paper, §2.1), so a single
//!   integer clock is shared by every engine in the workspace.
//! * [`ids`] — processor and message identifiers.
//! * [`msg`] — message payloads and envelopes. The models treat messages as
//!   constant-size units; payloads carry a small vector of words purely as a
//!   programming convenience and never affect cost accounting.
//! * [`hrelation`] — h-relations (the communication pattern both models are
//!   built around), generators for the workloads used throughout the paper
//!   (permutations, random relations, hot spots, broadcast/all-to-all), and
//!   degree computation.
//! * [`decompose`] — the constructive side of Hall's theorem (paper §4.2):
//!   decomposition of an arbitrary h-relation into 1-relations via Euler
//!   splits of the bipartite multigraph, used by off-line routing and the
//!   network substrate.
//! * [`stats`] — accumulators and the least-squares fit used to extract
//!   `(gamma, delta)` from measured routing times (Table 1 harness).
//! * [`rngutil`] — seedable, splittable, reproducible RNG streams
//!   (ChaCha-based; see DESIGN.md dependency policy).
//! * [`trace`] — lightweight event tracing shared by the engines.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod decompose;
pub mod error;
pub mod hrelation;
pub mod ids;
pub mod msg;
pub mod rngutil;
pub mod stats;
pub mod time;
pub mod trace;

pub use error::ModelError;
pub use hrelation::HRelation;
pub use ids::{MsgId, ProcId};
pub use msg::{Envelope, Payload, Word, INLINE_WORDS};
pub use time::Steps;
pub use trace::{assert_wellformed, validate_wellformed, Event, Trace};

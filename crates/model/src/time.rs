//! Discrete time.
//!
//! Both models measure time in units of one local operation (paper §2.1:
//! "The time unit is chosen to be the duration of a local operation"). All
//! engines in the workspace share this `u64` step counter.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A number of machine steps (model time units).
///
/// Arithmetic is checked in debug builds and saturating would mask bugs, so
/// plain `+`/`-` panic on overflow/underflow exactly like `u64` does; the
/// explicit [`Steps::saturating_sub`] is available where clamping is the
/// intended semantics (e.g. "time remaining").
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Steps(pub u64);

impl Steps {
    /// Zero steps.
    pub const ZERO: Steps = Steps(0);
    /// One step.
    pub const ONE: Steps = Steps(1);
    /// The largest representable time; used as "never" by the engines.
    pub const MAX: Steps = Steps(u64::MAX);

    /// The raw step count.
    #[inline]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// `max(self - rhs, 0)`.
    #[inline]
    pub const fn saturating_sub(self, rhs: Steps) -> Steps {
        Steps(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition, `None` on overflow.
    #[inline]
    pub const fn checked_add(self, rhs: Steps) -> Option<Steps> {
        match self.0.checked_add(rhs.0) {
            Some(v) => Some(Steps(v)),
            None => None,
        }
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, other: Steps) -> Steps {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, other: Steps) -> Steps {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Ceiling division, e.g. `ceil(L / G)` for the LogP capacity constraint.
    #[inline]
    pub const fn div_ceil(self, rhs: Steps) -> u64 {
        self.0.div_ceil(rhs.0)
    }

    /// Round `self` up to the next multiple of `m` (m > 0).
    #[inline]
    pub const fn round_up_to(self, m: u64) -> Steps {
        Steps(self.0.div_ceil(m) * m)
    }
}

impl fmt::Debug for Steps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}st", self.0)
    }
}

impl fmt::Display for Steps {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Steps {
    #[inline]
    fn from(v: u64) -> Self {
        Steps(v)
    }
}

impl Add for Steps {
    type Output = Steps;
    #[inline]
    fn add(self, rhs: Steps) -> Steps {
        Steps(self.0 + rhs.0)
    }
}

impl AddAssign for Steps {
    #[inline]
    fn add_assign(&mut self, rhs: Steps) {
        self.0 += rhs.0;
    }
}

impl Sub for Steps {
    type Output = Steps;
    #[inline]
    fn sub(self, rhs: Steps) -> Steps {
        Steps(self.0 - rhs.0)
    }
}

impl SubAssign for Steps {
    #[inline]
    fn sub_assign(&mut self, rhs: Steps) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Steps {
    type Output = Steps;
    #[inline]
    fn mul(self, rhs: u64) -> Steps {
        Steps(self.0 * rhs)
    }
}

impl Div<u64> for Steps {
    type Output = Steps;
    #[inline]
    fn div(self, rhs: u64) -> Steps {
        Steps(self.0 / rhs)
    }
}

impl Sum for Steps {
    fn sum<I: Iterator<Item = Steps>>(iter: I) -> Steps {
        iter.fold(Steps::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_basics() {
        assert_eq!(Steps(3) + Steps(4), Steps(7));
        assert_eq!(Steps(7) - Steps(4), Steps(3));
        assert_eq!(Steps(3) * 4, Steps(12));
        assert_eq!(Steps(13) / 4, Steps(3));
        assert_eq!(Steps(13).div_ceil(Steps(4)), 4);
        assert_eq!(Steps(12).div_ceil(Steps(4)), 3);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(Steps(3).saturating_sub(Steps(5)), Steps::ZERO);
        assert_eq!(Steps(5).saturating_sub(Steps(3)), Steps(2));
    }

    #[test]
    fn round_up_to_multiples() {
        assert_eq!(Steps(0).round_up_to(5), Steps(0));
        assert_eq!(Steps(1).round_up_to(5), Steps(5));
        assert_eq!(Steps(5).round_up_to(5), Steps(5));
        assert_eq!(Steps(6).round_up_to(5), Steps(10));
    }

    #[test]
    fn ordering_and_minmax() {
        assert!(Steps(2) < Steps(3));
        assert_eq!(Steps(2).max(Steps(3)), Steps(3));
        assert_eq!(Steps(2).min(Steps(3)), Steps(2));
    }

    #[test]
    fn sum_over_iterator() {
        let total: Steps = (1..=4u64).map(Steps).sum();
        assert_eq!(total, Steps(10));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Steps::MAX.checked_add(Steps::ONE), None);
        assert_eq!(Steps(1).checked_add(Steps(2)), Some(Steps(3)));
    }
}

//! Messages.
//!
//! Both models are defined over constant-size messages: an h-relation counts
//! *messages*, and the LogP capacity constraint counts *messages* in transit.
//! [`Payload`] therefore carries a short vector of [`Word`]s purely as a
//! programming convenience (tagging, carrying a key plus a rank, ...); cost
//! accounting in every engine is strictly per message, never per word.

use crate::ids::{MsgId, ProcId};
use crate::time::Steps;
use core::fmt;

/// The machine word carried by messages. Signed so that algorithm payloads
/// (keys, partial sums) need no conversion gymnastics.
pub type Word = i64;

/// A constant-size message body: a small tag plus up to a few words of data.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Payload {
    /// Program-defined discriminant (protocol phase, message kind, ...).
    pub tag: u32,
    /// Program-defined data words.
    pub data: Vec<Word>,
}

impl Payload {
    /// An empty payload with a tag only.
    pub fn tagged(tag: u32) -> Payload {
        Payload { tag, data: Vec::new() }
    }

    /// A payload carrying a single word.
    pub fn word(tag: u32, w: Word) -> Payload {
        Payload { tag, data: vec![w] }
    }

    /// A payload carrying a slice of words.
    pub fn words(tag: u32, ws: &[Word]) -> Payload {
        Payload { tag, data: ws.to_vec() }
    }

    /// First data word, if any.
    pub fn first(&self) -> Option<Word> {
        self.data.first().copied()
    }

    /// First data word, panicking with a useful message if absent.
    pub fn expect_word(&self) -> Word {
        self.first().expect("payload carries no data word")
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}{:?}", self.tag, self.data)
    }
}

impl From<Word> for Payload {
    fn from(w: Word) -> Self {
        Payload::word(0, w)
    }
}

/// A message together with its routing metadata and, once it has travelled
/// through an engine, its timing history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Unique id (assigned by the engine at submission).
    pub id: MsgId,
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Body.
    pub payload: Payload,
    /// Time the sender finished preparing the message (LogP: submission;
    /// BSP: insertion into the output pool).
    pub submitted: Steps,
    /// Time the communication medium accepted it (LogP only; equals
    /// `submitted` for stall-free executions on BSP).
    pub accepted: Steps,
    /// Time it was placed in the destination's input buffer/pool.
    pub delivered: Steps,
}

impl Envelope {
    /// A fresh envelope with zeroed timing, as built by guest programs.
    pub fn new(src: ProcId, dst: ProcId, payload: Payload) -> Envelope {
        Envelope {
            id: MsgId(0),
            src,
            dst,
            payload,
            submitted: Steps::ZERO,
            accepted: Steps::ZERO,
            delivered: Steps::ZERO,
        }
    }

    /// End-to-end latency experienced by this message (delivery − submission).
    pub fn latency(&self) -> Steps {
        self.delivered.saturating_sub(self.submitted)
    }

    /// Time spent waiting for acceptance — nonzero only under stalling.
    pub fn stall_time(&self) -> Steps {
        self.accepted.saturating_sub(self.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_constructors() {
        assert_eq!(Payload::tagged(3).tag, 3);
        assert_eq!(Payload::word(1, 42).expect_word(), 42);
        assert_eq!(Payload::words(2, &[1, 2, 3]).data, vec![1, 2, 3]);
        let p: Payload = 7.into();
        assert_eq!(p.first(), Some(7));
    }

    #[test]
    #[should_panic(expected = "no data word")]
    fn expect_word_panics_when_empty() {
        Payload::tagged(0).expect_word();
    }

    #[test]
    fn envelope_latency_and_stall() {
        let mut e = Envelope::new(ProcId(0), ProcId(1), Payload::tagged(0));
        e.submitted = Steps(10);
        e.accepted = Steps(14);
        e.delivered = Steps(25);
        assert_eq!(e.latency(), Steps(15));
        assert_eq!(e.stall_time(), Steps(4));
    }
}

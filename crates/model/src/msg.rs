//! Messages.
//!
//! Both models are defined over constant-size messages: an h-relation counts
//! *messages*, and the LogP capacity constraint counts *messages* in transit.
//! [`Payload`] therefore carries a few [`Word`]s purely as a programming
//! convenience (tagging, carrying a key plus a rank, ...); cost accounting
//! in every engine is strictly per message, never per word.
//!
//! Because the simulators move millions of messages, [`Payload`] stores up
//! to [`INLINE_WORDS`] words inline — no heap allocation on the hot path —
//! and spills to a `Vec` only for the rare longer body (block transfers in
//! dense matmul, splitter broadcasts). The representation is canonical
//! (bodies of at most `INLINE_WORDS` words are always inline), which keeps
//! equality and hashing representation-independent.

use crate::ids::{MsgId, ProcId};
use crate::time::Steps;
use core::fmt;
use core::hash::{Hash, Hasher};

/// The machine word carried by messages. Signed so that algorithm payloads
/// (keys, partial sums) need no conversion gymnastics.
pub type Word = i64;

/// Longest message body stored without heap allocation. Six words covers
/// every fixed-format protocol message in the repo (segmented-scan cells
/// are the widest at six).
pub const INLINE_WORDS: usize = 6;

#[derive(Clone)]
enum Repr {
    /// `words[..len]` is the body; the tail is kept zeroed.
    Inline { len: u8, words: [Word; INLINE_WORDS] },
    /// Body longer than `INLINE_WORDS` (canonical: never used for short
    /// bodies).
    Spill(Vec<Word>),
}

/// A constant-size message body: a small tag plus up to a few words of data.
#[derive(Clone)]
pub struct Payload {
    /// Program-defined discriminant (protocol phase, message kind, ...).
    pub tag: u32,
    repr: Repr,
}

impl Payload {
    /// An empty payload with a tag only.
    pub fn tagged(tag: u32) -> Payload {
        Payload {
            tag,
            repr: Repr::Inline {
                len: 0,
                words: [0; INLINE_WORDS],
            },
        }
    }

    /// A payload carrying a single word.
    pub fn word(tag: u32, w: Word) -> Payload {
        let mut words = [0; INLINE_WORDS];
        words[0] = w;
        Payload {
            tag,
            repr: Repr::Inline { len: 1, words },
        }
    }

    /// A payload carrying a slice of words.
    pub fn words(tag: u32, ws: &[Word]) -> Payload {
        if let Ok(words) = <[Word; INLINE_WORDS]>::try_from(ws) {
            // Full-width bodies take a fixed-size copy (one vector load on
            // the targets that matter) instead of a variable-length memcpy.
            Payload {
                tag,
                repr: Repr::Inline {
                    len: INLINE_WORDS as u8,
                    words,
                },
            }
        } else if ws.len() <= INLINE_WORDS {
            let mut words = [0; INLINE_WORDS];
            words[..ws.len()].copy_from_slice(ws);
            Payload {
                tag,
                repr: Repr::Inline {
                    len: ws.len() as u8,
                    words,
                },
            }
        } else {
            Payload {
                tag,
                repr: Repr::Spill(ws.to_vec()),
            }
        }
    }

    /// A payload taking ownership of an already-built body. Short bodies
    /// are copied inline (dropping the allocation); long ones keep the
    /// `Vec` without copying.
    pub fn from_vec(tag: u32, ws: Vec<Word>) -> Payload {
        if ws.len() <= INLINE_WORDS {
            Payload::words(tag, &ws)
        } else {
            Payload {
                tag,
                repr: Repr::Spill(ws),
            }
        }
    }

    /// The body words.
    #[inline]
    pub fn data(&self) -> &[Word] {
        match &self.repr {
            Repr::Inline { len, words } => &words[..*len as usize],
            Repr::Spill(v) => v,
        }
    }

    /// Whether the body lives inline (no heap allocation).
    pub fn is_inline(&self) -> bool {
        matches!(self.repr, Repr::Inline { .. })
    }

    /// First data word, if any.
    pub fn first(&self) -> Option<Word> {
        self.data().first().copied()
    }

    /// First data word, panicking with a useful message if absent.
    pub fn expect_word(&self) -> Word {
        self.first().expect("payload carries no data word")
    }
}

impl Default for Payload {
    fn default() -> Payload {
        Payload::tagged(0)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.tag == other.tag && self.data() == other.data()
    }
}
impl Eq for Payload {}

impl Hash for Payload {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.tag.hash(state);
        self.data().hash(state);
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}{:?}", self.tag, self.data())
    }
}

impl From<Word> for Payload {
    fn from(w: Word) -> Self {
        Payload::word(0, w)
    }
}

/// A message together with its routing metadata and, once it has travelled
/// through an engine, its timing history.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Envelope {
    /// Unique id (assigned by the engine at submission).
    pub id: MsgId,
    /// Sending processor.
    pub src: ProcId,
    /// Destination processor.
    pub dst: ProcId,
    /// Body.
    pub payload: Payload,
    /// Time the sender finished preparing the message (LogP: submission;
    /// BSP: insertion into the output pool).
    pub submitted: Steps,
    /// Time the communication medium accepted it (LogP only; equals
    /// `submitted` for stall-free executions on BSP).
    pub accepted: Steps,
    /// Time it was placed in the destination's input buffer/pool.
    pub delivered: Steps,
}

impl Envelope {
    /// A fresh envelope with zeroed timing, as built by guest programs.
    pub fn new(src: ProcId, dst: ProcId, payload: Payload) -> Envelope {
        Envelope {
            id: MsgId(0),
            src,
            dst,
            payload,
            submitted: Steps::ZERO,
            accepted: Steps::ZERO,
            delivered: Steps::ZERO,
        }
    }

    /// End-to-end latency experienced by this message (delivery − submission).
    pub fn latency(&self) -> Steps {
        self.delivered.saturating_sub(self.submitted)
    }

    /// Time spent waiting for acceptance — nonzero only under stalling.
    pub fn stall_time(&self) -> Steps {
        self.accepted.saturating_sub(self.submitted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_constructors() {
        assert_eq!(Payload::tagged(3).tag, 3);
        assert_eq!(Payload::word(1, 42).expect_word(), 42);
        assert_eq!(Payload::words(2, &[1, 2, 3]).data(), &[1, 2, 3]);
        let p: Payload = 7.into();
        assert_eq!(p.first(), Some(7));
    }

    #[test]
    fn payload_inline_vs_spill_round_trip() {
        let short = Payload::words(1, &[1, 2, 3, 4, 5, 6]);
        assert!(short.is_inline());
        let long = Payload::words(1, &[1, 2, 3, 4, 5, 6, 7]);
        assert!(!long.is_inline());
        assert_eq!(long.data(), &[1, 2, 3, 4, 5, 6, 7]);
        // from_vec canonicalizes short bodies back to inline.
        let v = Payload::from_vec(9, vec![4, 5]);
        assert!(v.is_inline());
        assert_eq!(v.data(), &[4, 5]);
        let w = Payload::from_vec(9, vec![0; INLINE_WORDS + 1]);
        assert!(!w.is_inline());
    }

    #[test]
    fn payload_eq_and_hash_ignore_representation() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let a = Payload::words(7, &[1, 2]);
        let b = Payload::from_vec(7, vec![1, 2]);
        assert_eq!(a, b);
        let hash = |p: &Payload| {
            let mut h = DefaultHasher::new();
            p.hash(&mut h);
            h.finish()
        };
        assert_eq!(hash(&a), hash(&b));
        assert_ne!(Payload::word(0, 1), Payload::word(1, 1));
        assert_ne!(Payload::word(0, 1), Payload::tagged(0));
    }

    #[test]
    #[should_panic(expected = "no data word")]
    fn expect_word_panics_when_empty() {
        Payload::tagged(0).expect_word();
    }

    #[test]
    fn envelope_latency_and_stall() {
        let mut e = Envelope::new(ProcId(0), ProcId(1), Payload::tagged(0));
        e.submitted = Steps(10);
        e.accepted = Steps(14);
        e.delivered = Steps(25);
        assert_eq!(e.latency(), Steps(15));
        assert_eq!(e.stall_time(), Steps(4));
    }
}

//! Statistics helpers for the experiment harnesses.
//!
//! The Table 1 harness extracts a topology's bandwidth parameter `gamma(p)`
//! and latency parameter `delta(p)` by fitting measured routing times to
//! `T(h) = gamma * h + delta` ([`linear_fit`]); the theorem experiments use
//! [`Accumulator`] summaries and [`geometric_mean`] of slowdown ratios.

/// Online summary of a stream of `f64` samples.
#[derive(Clone, Debug, Default)]
pub struct Accumulator {
    n: u64,
    sum: f64,
    sum_sq: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Empty accumulator.
    pub fn new() -> Accumulator {
        Accumulator {
            n: 0,
            sum: 0.0,
            sum_sq: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add a sample.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.sum_sq += x * x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Population variance.
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        let m = self.mean();
        (self.sum_sq / self.n as f64 - m * m).max(0.0)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`+inf` when empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest sample (`-inf` when empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Fold another accumulator into this one, as if every sample pushed
    /// into `other` had been pushed here. For integer-valued samples below
    /// 2⁵³ (all of the workspace's virtual-time latencies) the sums are
    /// exact, so the merged summary is independent of both merge order and
    /// the original partition — the property the sharded engines rely on
    /// to keep per-shard latency accounting bit-identical to a single
    /// shard's.
    pub fn merge(&mut self, other: &Accumulator) {
        self.n += other.n;
        self.sum += other.sum;
        self.sum_sq += other.sum_sq;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Least-squares fit of `y = slope * x + intercept`.
///
/// Returns `(slope, intercept, r_squared)`. Requires at least two distinct
/// `x` values; degenerate inputs (empty, a single point, or a vertical
/// line) yield a zero slope through the mean with `r² = 1`. Non-finite
/// coordinates are not screened: a NaN or infinite sample propagates into
/// the fit, as with any least-squares estimator — callers own input
/// hygiene.
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64, f64) {
    let n = points.len() as f64;
    if points.len() < 2 {
        let y = points.first().map_or(0.0, |&(_, y)| y);
        return (0.0, y, 1.0);
    }
    let sx: f64 = points.iter().map(|&(x, _)| x).sum();
    let sy: f64 = points.iter().map(|&(_, y)| y).sum();
    let mx = sx / n;
    let my = sy / n;
    let sxx: f64 = points.iter().map(|&(x, _)| (x - mx) * (x - mx)).sum();
    let sxy: f64 = points.iter().map(|&(x, y)| (x - mx) * (y - my)).sum();
    if sxx == 0.0 {
        return (0.0, my, 1.0);
    }
    let slope = sxy / sxx;
    let intercept = my - slope * mx;
    let syy: f64 = points.iter().map(|&(_, y)| (y - my) * (y - my)).sum();
    let r2 = if syy == 0.0 { 1.0 } else { (sxy * sxy) / (sxx * syy) };
    (slope, intercept, r2)
}

/// Geometric mean of strictly positive finite values — the standard
/// summary for slowdown ratios.
///
/// Returns 0 for every invalid input: an empty slice, or any value that is
/// ≤ 0, NaN, or infinite (a NaN would otherwise slip through a `≤ 0` test,
/// since every comparison with NaN is false, and poison the whole mean).
pub fn geometric_mean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| !x.is_finite() || x <= 0.0) {
        return 0.0;
    }
    let log_sum: f64 = xs.iter().map(|&x| x.ln()).sum();
    (log_sum / xs.len() as f64).exp()
}

/// Exact p-quantile by sorting a copy (`q` in `[0, 1]`, nearest-rank).
///
/// An empty slice yields NaN (there is no sample to report, and NaN is the
/// one value that never passes a threshold check silently). Samples are
/// ordered by [`f64::total_cmp`], so NaN samples do not panic or scramble
/// the sort: they order after `+inf` and surface only at high `q`.
///
/// # Panics
/// If `q` is outside `[0, 1]` (including NaN) — a caller bug, not a data
/// condition.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile q = {q} outside [0, 1]");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let idx = ((q * (v.len() - 1) as f64).round() as usize).min(v.len() - 1);
    v[idx]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_summary() {
        let mut a = Accumulator::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            a.push(x);
        }
        assert_eq!(a.count(), 4);
        assert!((a.mean() - 2.5).abs() < 1e-12);
        assert!((a.variance() - 1.25).abs() < 1e-12);
        assert_eq!(a.min(), 1.0);
        assert_eq!(a.max(), 4.0);
    }

    #[test]
    fn merge_equals_single_stream_for_integer_samples() {
        let samples: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 19) as f64).collect();
        let mut whole = Accumulator::new();
        for &x in &samples {
            whole.push(x);
        }
        // Any partition, merged in any order, reproduces the single stream
        // bit for bit (integer-valued samples keep the sums exact).
        for split in [1usize, 5, 16, 31] {
            let (a, b) = samples.split_at(split);
            let mut left = Accumulator::new();
            let mut right = Accumulator::new();
            a.iter().for_each(|&x| left.push(x));
            b.iter().for_each(|&x| right.push(x));
            let mut fwd = left.clone();
            fwd.merge(&right);
            let mut rev = right.clone();
            rev.merge(&left);
            for m in [&fwd, &rev] {
                assert_eq!(m.count(), whole.count());
                assert_eq!(m.mean().to_bits(), whole.mean().to_bits());
                assert_eq!(m.variance().to_bits(), whole.variance().to_bits());
                assert_eq!(m.min(), whole.min());
                assert_eq!(m.max(), whole.max());
            }
        }
        // Merging an empty accumulator is the identity.
        let mut id = whole.clone();
        id.merge(&Accumulator::new());
        assert_eq!(id.mean().to_bits(), whole.mean().to_bits());
        assert_eq!(id.count(), whole.count());
    }

    #[test]
    fn empty_accumulator_is_sane() {
        let a = Accumulator::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
    }

    #[test]
    fn fit_recovers_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 7.0)).collect();
        let (m, b, r2) = linear_fit(&pts);
        assert!((m - 3.0).abs() < 1e-9);
        assert!((b - 7.0).abs() < 1e-9);
        assert!((r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_handles_noise() {
        let pts = vec![(1.0, 2.1), (2.0, 3.9), (3.0, 6.2), (4.0, 7.8)];
        let (m, _, r2) = linear_fit(&pts);
        assert!((m - 1.94).abs() < 0.1);
        assert!(r2 > 0.99);
    }

    #[test]
    fn fit_degenerate_inputs() {
        assert_eq!(linear_fit(&[]), (0.0, 0.0, 1.0));
        assert_eq!(linear_fit(&[(1.0, 5.0)]), (0.0, 5.0, 1.0));
        let (m, b, _) = linear_fit(&[(2.0, 5.0), (2.0, 7.0)]);
        assert_eq!(m, 0.0);
        assert_eq!(b, 6.0);
    }

    #[test]
    fn geometric_mean_basics() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geometric_mean(&[]), 0.0);
        assert_eq!(geometric_mean(&[1.0, -1.0]), 0.0);
    }

    #[test]
    fn quantile_nearest_rank() {
        let xs = [5.0, 1.0, 3.0, 2.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 0.5), 3.0);
        assert_eq!(quantile(&xs, 1.0), 5.0);
    }

    #[test]
    fn quantile_boundaries() {
        assert!(quantile(&[], 0.5).is_nan(), "empty slice reports NaN");
        assert_eq!(quantile(&[7.0], 0.0), 7.0);
        assert_eq!(quantile(&[7.0], 1.0), 7.0);
        // NaN samples order last under total_cmp instead of panicking.
        let with_nan = [2.0, f64::NAN, 1.0];
        assert_eq!(quantile(&with_nan, 0.0), 1.0);
        assert_eq!(quantile(&with_nan, 0.5), 2.0);
        assert!(quantile(&with_nan, 1.0).is_nan());
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn quantile_rejects_bad_q() {
        let _ = quantile(&[1.0], 1.5);
    }

    #[test]
    fn geometric_mean_rejects_non_finite() {
        assert_eq!(geometric_mean(&[1.0, f64::NAN]), 0.0);
        assert_eq!(geometric_mean(&[1.0, f64::INFINITY]), 0.0);
        assert_eq!(geometric_mean(&[0.0]), 0.0);
    }

    #[test]
    fn empty_accumulator_extremes_are_identities() {
        // min/max start at the fold identities so any first sample
        // replaces them; callers checking an empty accumulator see them.
        let a = Accumulator::new();
        assert_eq!(a.min(), f64::INFINITY);
        assert_eq!(a.max(), f64::NEG_INFINITY);
        assert_eq!(a.count(), 0);
        assert_eq!(a.std_dev(), 0.0);
    }
}

//! Processor and message identifiers.

use core::fmt;

/// Identifier of one of the `p` serial processors (`0..p`, paper §2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// The raw index.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Iterate over the processors of a `p`-processor machine.
    pub fn all(p: usize) -> impl Iterator<Item = ProcId> + Clone {
        (0..p as u32).map(ProcId)
    }
}

impl fmt::Debug for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for ProcId {
    #[inline]
    fn from(v: usize) -> Self {
        ProcId(u32::try_from(v).expect("processor index exceeds u32"))
    }
}

/// Globally unique message identifier, assigned at submission time.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MsgId(pub u64);

impl fmt::Debug for MsgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proc_id_roundtrip() {
        let p = ProcId::from(17usize);
        assert_eq!(p.index(), 17);
        assert_eq!(format!("{p:?}"), "P17");
    }

    #[test]
    fn all_enumerates_in_order() {
        let ids: Vec<ProcId> = ProcId::all(4).collect();
        assert_eq!(ids, vec![ProcId(0), ProcId(1), ProcId(2), ProcId(3)]);
    }

    #[test]
    fn msg_id_ordering() {
        assert!(MsgId(1) < MsgId(2));
    }
}

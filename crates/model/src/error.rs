//! Error types shared across the workspace.

use crate::ids::ProcId;
use core::fmt;

/// Errors raised by machine construction and program execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A machine parameter violates its validity constraints (the message
    /// explains which constraint; e.g. LogP requires `max{2, o} <= G <= L`).
    InvalidParams(String),
    /// A program addressed a processor outside `0..p`.
    BadDestination {
        /// Offending destination.
        dst: ProcId,
        /// Machine size.
        p: usize,
    },
    /// The machine ran past its step/superstep budget without all processors
    /// halting — almost always a deadlocked guest program.
    Timeout {
        /// The budget that was exhausted.
        budget: u64,
    },
    /// Execution quiesced with non-halted processors blocked forever
    /// (e.g. receiving a message nobody will send).
    Deadlock {
        /// The blocked processors.
        waiting: Vec<ProcId>,
    },
    /// A program that was required to be stall-free stalled.
    StallDetected {
        /// Processor that stalled.
        proc: ProcId,
        /// Time at which the stall began.
        at: u64,
    },
    /// Internal invariant violation (a bug in an engine, not in a guest).
    Internal(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::InvalidParams(m) => write!(f, "invalid parameters: {m}"),
            ModelError::BadDestination { dst, p } => {
                write!(f, "message destination {dst:?} out of range for p={p}")
            }
            ModelError::Timeout { budget } => {
                write!(f, "execution exceeded budget of {budget} steps/supersteps")
            }
            ModelError::Deadlock { waiting } => {
                write!(f, "deadlock: processors {waiting:?} blocked forever")
            }
            ModelError::StallDetected { proc, at } => {
                write!(f, "stall detected at processor {proc:?}, time {at}")
            }
            ModelError::Internal(m) => write!(f, "internal invariant violated: {m}"),
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::BadDestination {
            dst: ProcId(9),
            p: 4,
        };
        assert!(e.to_string().contains("P9"));
        assert!(e.to_string().contains("p=4"));
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn std::error::Error> = Box::new(ModelError::Timeout { budget: 10 });
        assert!(e.to_string().contains("10"));
    }
}

//! Reproducible randomness.
//!
//! Every randomized component in the workspace (random h-relations, the
//! Theorem 3 batching protocol, randomized delivery/acceptance policies,
//! Valiant routing) draws from a [`SeedStream`]: a master seed deterministically
//! split into independent per-component, per-processor streams. Runs are
//! replayable from a printed master seed on any platform because ChaCha's
//! output is specified bit-exactly (unlike `rand::rngs::StdRng`, which is
//! allowed to change between crate versions).

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic, splittable source of RNG streams.
#[derive(Clone, Debug)]
pub struct SeedStream {
    master: u64,
}

impl SeedStream {
    /// Create from a master seed.
    pub fn new(master: u64) -> SeedStream {
        SeedStream { master }
    }

    /// Derive the RNG for a named component and lane (e.g. a processor id).
    ///
    /// Distinct `(domain, lane)` pairs yield independent streams; the same
    /// pair always yields the same stream.
    pub fn derive(&self, domain: &str, lane: u64) -> ChaCha8Rng {
        // SplitMix64-style mixing of (master, hash(domain), lane) into a
        // 256-bit seed. Collisions across domains would need a 64-bit hash
        // collision on short ASCII names — acceptable for simulation seeding.
        let dh = fnv1a(domain.as_bytes());
        let mut seed = [0u8; 32];
        let mut x = self
            .master
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(dh)
            .wrapping_add(lane.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        for chunk in seed.chunks_mut(8) {
            x = splitmix64(&mut x);
            chunk.copy_from_slice(&x.to_le_bytes());
        }
        ChaCha8Rng::from_seed(seed)
    }

    /// A single deterministic `u64` drawn from the `(domain, lane)` stream.
    ///
    /// This is the first word of [`SeedStream::derive`]'s output, so it
    /// inherits the stream independence guarantees. Consumers that need one
    /// stable key per lane — e.g. the observability sampler, whose
    /// keep/drop decisions must be identical at any shard or thread
    /// count — use this instead of carrying a whole RNG.
    pub fn lane_key(&self, domain: &str, lane: u64) -> u64 {
        self.derive(domain, lane).next_u64()
    }

    /// The master seed (for logging/replaying).
    pub fn master(&self) -> u64 {
        self.master
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Draw a uniform `usize` in `[0, n)` — a small convenience wrapper that keeps
/// callers free of `rand` trait imports.
pub fn uniform_below<R: RngCore>(rng: &mut R, n: usize) -> usize {
    assert!(n > 0, "uniform_below(0)");
    rng.gen_range(0..n)
}

/// Fisher–Yates shuffle (deterministic given the RNG state).
pub fn shuffle<R: RngCore, T>(rng: &mut R, xs: &mut [T]) {
    if xs.is_empty() {
        return;
    }
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
}

/// A uniform random permutation of `0..n`.
pub fn random_permutation<R: RngCore>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut v: Vec<usize> = (0..n).collect();
    shuffle(rng, &mut v);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let s = SeedStream::new(42);
        let mut a = s.derive("x", 3);
        let mut b = s.derive("x", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_lanes_differ() {
        let s = SeedStream::new(42);
        let mut a = s.derive("x", 0);
        let mut b = s.derive("x", 1);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn different_domains_differ() {
        let s = SeedStream::new(42);
        let mut a = s.derive("alpha", 0);
        let mut b = s.derive("beta", 0);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn permutation_is_a_permutation() {
        let s = SeedStream::new(7);
        let mut rng = s.derive("perm", 0);
        let perm = random_permutation(&mut rng, 100);
        let mut sorted = perm.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn shuffle_empty_and_singleton() {
        let s = SeedStream::new(7);
        let mut rng = s.derive("s", 0);
        let mut e: [u8; 0] = [];
        shuffle(&mut rng, &mut e);
        let mut one = [42];
        shuffle(&mut rng, &mut one);
        assert_eq!(one, [42]);
    }

    #[test]
    fn uniform_below_in_range() {
        let s = SeedStream::new(9);
        let mut rng = s.derive("u", 0);
        for _ in 0..1000 {
            assert!(uniform_below(&mut rng, 17) < 17);
        }
    }
}

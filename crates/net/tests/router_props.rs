//! Property tests for the store-and-forward router.
//!
//! Two invariants the queue machinery must never bend: the service
//! discipline may reorder *when* packets move but never *what* gets
//! delivered, and the single-port discipline (Table 1's weaker hypercube
//! row) really does limit every node to one send and one receive per step.

use bvl_exec::{drive, Executor};
use bvl_model::{HRelation, Payload, ProcId};
use bvl_net::{Hypercube, PortMode, QueueDiscipline, Router, RouterConfig};
use proptest::prelude::*;

/// Build a permutation h-relation on `p` processors from sort keys.
fn permutation_relation(keys: &[u64]) -> HRelation {
    let p = keys.len();
    let mut order: Vec<usize> = (0..p).collect();
    order.sort_by_key(|&i| (keys[i], i));
    let mut rel = HRelation::new(p);
    for (src, &dst) in order.iter().enumerate() {
        rel.push(ProcId::from(src), ProcId::from(dst), Payload::tagged(0));
    }
    rel
}

fn dims_and_keys() -> impl Strategy<Value = (u32, Vec<u64>)> {
    (2u32..=5).prop_flat_map(|dim| {
        let p = 1usize << dim;
        (Just(dim), proptest::collection::vec(0u64..1_000_000, p..=p))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Fifo and FarthestFirst deliver the identical multiset of
    /// (src, dst) pairs on any permutation h-relation — disciplines
    /// reorder service, never delivery membership.
    #[test]
    fn disciplines_deliver_identical_multisets((dim, keys) in dims_and_keys()) {
        let topo = Hypercube::new(dim);
        let rel = permutation_relation(&keys);
        let mut delivered = Vec::new();
        for discipline in [QueueDiscipline::Fifo, QueueDiscipline::FarthestFirst] {
            let cfg = RouterConfig { discipline, ..RouterConfig::default() };
            let mut router = Router::new(&topo, &rel, cfg);
            drive(&mut router, cfg.max_steps).unwrap();
            let mut pairs: Vec<_> = router.delivered_pairs().to_vec();
            pairs.sort_unstable();
            delivered.push(pairs);
        }
        prop_assert_eq!(&delivered[0], &delivered[1]);
        prop_assert_eq!(delivered[0].len(), rel.len());
    }

    /// Under PortMode::Single, no node ever performs more than one send or
    /// more than one receive in a single step.
    #[test]
    fn single_port_limits_sends_and_receives((dim, keys) in dims_and_keys()) {
        let topo = Hypercube::new(dim);
        let p = 1usize << dim;
        let rel = permutation_relation(&keys);
        let cfg = RouterConfig { mode: PortMode::Single, ..RouterConfig::default() };
        let mut router = Router::new(&topo, &rel, cfg);
        let mut steps = 0u64;
        while router.step().unwrap() {
            steps += 1;
            prop_assert!(steps <= cfg.max_steps, "router diverged");
            let mut sends = vec![0u32; p];
            let mut recvs = vec![0u32; p];
            for &(from, to) in router.last_moves() {
                sends[from] += 1;
                recvs[to] += 1;
            }
            prop_assert!(sends.iter().all(|&s| s <= 1), "double send in a step");
            prop_assert!(recvs.iter().all(|&r| r <= 1), "double receive in a step");
        }
        prop_assert!(router.halted());
        prop_assert_eq!(router.delivered_pairs().len(), rel.len());
    }
}

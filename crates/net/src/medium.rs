//! A network-backed [`Medium`]: delivery times from store-and-forward
//! contention on a concrete Table 1 topology.
//!
//! Plugging a [`NetMedium`] into a `LogpMachine` (via its `set_medium`
//! hook) replaces the abstract latency-`L` channel with per-link
//! store-and-forward scheduling over the topology's oblivious routes: each
//! directed link carries one packet per step, and a message's delivery
//! time is the arrival of its last hop given the link-busy times left
//! behind by earlier messages. This is the transport half of the stacked
//! simulations: a guest model executing over a host network whose `g`/`L`
//! are *measured* (Table 1's `Θ(γ)` / `Θ(δ)`), not assumed.

use crate::topology::Topology;
use bvl_exec::Medium;
use bvl_model::{Envelope, ProcId, Steps};
use rand::RngCore;
use std::collections::HashMap;

/// Store-and-forward transport over a concrete [`Topology`].
///
/// Greedy oblivious routes; one packet per directed link per step; earliest
/// free slot per hop. Per-destination acceptance capacity is configurable
/// so a LogP guest keeps its Stalling Rule semantics (capacity `⌈L/G⌉` for
/// the *measured* L and G).
pub struct NetMedium<T: Topology> {
    topo: T,
    capacity: u64,
    link_free: HashMap<(usize, usize), u64>,
}

impl<T: Topology> NetMedium<T> {
    /// A medium over `topo` with per-destination capacity `capacity`
    /// (use the guest model's `⌈L/G⌉` to preserve the Stalling Rule).
    pub fn new(topo: T, capacity: u64) -> NetMedium<T> {
        NetMedium {
            topo,
            capacity: capacity.max(1),
            link_free: HashMap::new(),
        }
    }

    /// The underlying topology.
    pub fn topology(&self) -> &T {
        &self.topo
    }
}

impl<T: Topology> Medium for NetMedium<T> {
    fn capacity(&self, _dst: ProcId, _now: Steps) -> u64 {
        self.capacity
    }

    /// Schedule the message hop by hop along the greedy route: each
    /// directed link is a unit-rate resource, so the packet departs each
    /// hop at the later of its own arrival and the link's next free slot.
    fn delivery_time(&mut self, env: &Envelope, now: Steps, _rng: &mut dyn RngCore) -> Steps {
        let path = self.topo.route(env.src.index(), env.dst.index());
        let mut t = now.get();
        for w in path.windows(2) {
            let link = (w[0], w[1]);
            let free = self.link_free.get(&link).copied().unwrap_or(0);
            let depart = t.max(free);
            self.link_free.insert(link, depart + 1);
            t = depart + 1;
        }
        // Delivery is strictly after acceptance even for 0-hop routes.
        Steps(t.max(now.get() + 1))
    }

    fn name(&self) -> &'static str {
        "net"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::hypercube::Hypercube;
    use bvl_model::rngutil::SeedStream;
    use bvl_model::{Payload, ProcId};

    fn env(src: usize, dst: usize) -> Envelope {
        Envelope::new(ProcId::from(src), ProcId::from(dst), Payload::tagged(0))
    }

    #[test]
    fn uncontended_message_takes_path_length() {
        let mut m = NetMedium::new(Array::chain(8), 4);
        let mut rng = SeedStream::new(0).derive("t", 0);
        let d = m.delivery_time(&env(1, 6), Steps(10), &mut rng);
        assert_eq!(d, Steps(15), "5 hops from node 1 to node 6");
    }

    #[test]
    fn contended_link_serializes() {
        let mut m = NetMedium::new(Array::chain(3), 4);
        let mut rng = SeedStream::new(0).derive("t", 0);
        // Two messages over the same links at the same instant: the second
        // waits one step at every hop behind the first.
        let a = m.delivery_time(&env(0, 2), Steps(0), &mut rng);
        let b = m.delivery_time(&env(0, 2), Steps(0), &mut rng);
        assert_eq!(a, Steps(2));
        assert_eq!(b, Steps(3));
    }

    #[test]
    fn disjoint_links_do_not_interfere() {
        let mut m = NetMedium::new(Hypercube::new(3), 4);
        let mut rng = SeedStream::new(0).derive("t", 0);
        let a = m.delivery_time(&env(0, 1), Steps(0), &mut rng);
        let b = m.delivery_time(&env(2, 3), Steps(0), &mut rng);
        assert_eq!(a, Steps(1));
        assert_eq!(b, Steps(1));
    }

    #[test]
    fn self_message_still_advances_time() {
        let mut m = NetMedium::new(Array::chain(4), 4);
        let mut rng = SeedStream::new(0).derive("t", 0);
        assert_eq!(m.delivery_time(&env(2, 2), Steps(7), &mut rng), Steps(8));
    }

    #[test]
    fn capacity_clamps_to_one() {
        let m = NetMedium::new(Array::chain(4), 0);
        assert_eq!(Medium::capacity(&m, ProcId(0), Steps::ZERO), 1);
    }
}

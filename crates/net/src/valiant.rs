//! Valiant's two-phase randomized routing.
//!
//! Oblivious greedy routing has adversarial worst cases (e.g. bit-reversal
//! on meshes); routing via a uniformly random intermediate node turns any
//! permutation into two random relations, which is how hypercube-like
//! networks achieve the `Θ(γ(p)·h + δ(p))` bounds Table 1 cites \[32\].

use crate::topology::Topology;
use rand::Rng;
use rand_chacha::ChaCha8Rng;

/// Greedy route `src → w → dst` through a uniformly random `w`.
pub fn valiant_path<T: Topology + ?Sized>(
    topo: &T,
    src: usize,
    dst: usize,
    rng: &mut ChaCha8Rng,
) -> Vec<usize> {
    if src == dst {
        return vec![src];
    }
    // Intermediates are processor nodes (ids 0..num_processors): on
    // topologies with switch-only nodes, greedy routes are only defined
    // between processors.
    let w = rng.gen_range(0..topo.num_processors());
    let mut path = topo.route(src, w);
    let second = topo.route(w, dst);
    path.extend(second.into_iter().skip(1));
    // Splicing two greedy paths can create an immediate backtrack at the
    // junction; collapse consecutive duplicates defensively.
    path.dedup();
    path
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypercube::Hypercube;
    use crate::mot::MeshOfTrees;
    use crate::topology::{check_route, Topology};
    use bvl_model::rngutil::SeedStream;

    #[test]
    fn valiant_paths_are_valid_routes() {
        let topo = Hypercube::new(4);
        let mut rng = SeedStream::new(1).derive("v", 0);
        for src in 0..16 {
            for dst in 0..16 {
                let p = valiant_path(&topo, src, dst, &mut rng);
                check_route(&topo, src, dst, &p).unwrap();
            }
        }
    }

    #[test]
    fn valiant_degenerate_same_node() {
        let topo = Hypercube::new(3);
        let mut rng = SeedStream::new(2).derive("v", 0);
        assert_eq!(valiant_path(&topo, 5, 5, &mut rng), vec![5]);
    }

    #[test]
    fn valiant_respects_switch_only_topologies() {
        // On a mesh-of-trees the random intermediate may be a switch; the
        // composed path must still be edge-valid.
        let topo = MeshOfTrees::new(4);
        let mut rng = SeedStream::new(3).derive("v", 0);
        for a in (0..topo.num_processors()).step_by(3) {
            for b in (a % 2..topo.num_processors()).step_by(5) {
                let p = valiant_path(&topo, a, b, &mut rng);
                check_route(&topo, a, b, &p).unwrap();
            }
        }
    }
}

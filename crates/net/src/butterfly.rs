//! The butterfly network, Table 1 row 4: `γ = δ = log p`.

use crate::topology::Topology;

/// A `k`-dimensional butterfly: `(k+1)` levels × `2^k` rows, every node a
/// processor (`p = (k+1)·2^k`). Level `l` and `l+1` are joined by straight
/// edges (same row) and cross edges (rows differing in bit `l`).
///
/// Greedy routing is memoryless: while the current row differs from the
/// target row, walk towards the level of the lowest differing bit, crossing
/// exactly when traversing that level boundary; once rows agree, walk
/// straight to the target level.
#[derive(Clone, Debug)]
pub struct Butterfly {
    k: u32,
}

impl Butterfly {
    /// Build a `k`-dimensional butterfly (`k ≥ 1`).
    pub fn new(k: u32) -> Butterfly {
        assert!((1..=24).contains(&k), "k in [1, 24]");
        Butterfly { k }
    }

    /// Rows `2^k`.
    pub fn rows(&self) -> usize {
        1usize << self.k
    }

    /// Levels `k + 1`.
    pub fn levels(&self) -> usize {
        self.k as usize + 1
    }

    /// Node id of `(level, row)`.
    pub fn id(&self, level: usize, row: usize) -> usize {
        debug_assert!(level < self.levels() && row < self.rows());
        level * self.rows() + row
    }

    /// `(level, row)` of a node id.
    pub fn level_row(&self, v: usize) -> (usize, usize) {
        (v / self.rows(), v % self.rows())
    }
}

impl Topology for Butterfly {
    fn name(&self) -> String {
        format!("butterfly(p={})", self.nodes())
    }

    fn nodes(&self) -> usize {
        self.levels() * self.rows()
    }

    fn num_processors(&self) -> usize {
        self.nodes()
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        let (l, r) = self.level_row(v);
        let mut out = Vec::with_capacity(4);
        if l > 0 {
            out.push(self.id(l - 1, r));
            out.push(self.id(l - 1, r ^ (1 << (l - 1))));
        }
        if l + 1 < self.levels() {
            out.push(self.id(l + 1, r));
            out.push(self.id(l + 1, r ^ (1 << l)));
        }
        out
    }

    fn diameter_bound(&self) -> usize {
        // Fixing each differing bit costs at most a walk to its level; a
        // single monotone sweep bounds the total by 2k + k.
        3 * self.k as usize
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let (mut l, mut r) = self.level_row(src);
        let (l2, r2) = self.level_row(dst);
        let mut path = vec![src];
        while r != r2 {
            let b = (r ^ r2).trailing_zeros() as usize;
            if l <= b {
                // Move up; cross exactly at the boundary that flips bit b.
                if l == b {
                    r ^= 1 << b;
                }
                l += 1;
            } else {
                // Move down; cross at boundary l-1 if that flips bit b.
                if l - 1 == b {
                    r ^= 1 << b;
                }
                l -= 1;
            }
            path.push(self.id(l, r));
        }
        while l != l2 {
            if l < l2 {
                l += 1;
            } else {
                l -= 1;
            }
            path.push(self.id(l, r));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::verify_topology;

    #[test]
    fn shape() {
        let b = Butterfly::new(3);
        assert_eq!(b.nodes(), 4 * 8);
        assert_eq!(b.rows(), 8);
        assert_eq!(b.levels(), 4);
    }

    #[test]
    fn level_row_roundtrip() {
        let b = Butterfly::new(4);
        for v in 0..b.nodes() {
            let (l, r) = b.level_row(v);
            assert_eq!(b.id(l, r), v);
        }
    }

    #[test]
    fn cross_edges_flip_correct_bit() {
        let b = Butterfly::new(3);
        // Node (1, 0b000): up-neighbors at level 2 are rows 0 and 0b010.
        let n = b.neighbors(b.id(1, 0));
        assert!(n.contains(&b.id(2, 0)));
        assert!(n.contains(&b.id(2, 0b010)));
        assert!(n.contains(&b.id(0, 0)));
        assert!(n.contains(&b.id(0, 0b001)));
    }

    #[test]
    fn verify_routes() {
        verify_topology(&Butterfly::new(2), 1);
        verify_topology(&Butterfly::new(3), 1);
        verify_topology(&Butterfly::new(5), 7);
    }

    #[test]
    fn same_row_route_is_straight() {
        let b = Butterfly::new(3);
        let p = b.route(b.id(0, 5), b.id(3, 5));
        assert_eq!(p.len(), 4);
        assert!(p.iter().all(|&v| b.level_row(v).1 == 5));
    }
}

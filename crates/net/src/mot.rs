//! The mesh-of-trees (pruned butterfly), Table 1 row 5: `γ = √p, δ = log p`.

use crate::topology::Topology;

/// A two-dimensional mesh-of-trees over an `m × m` grid of processor leaves
/// (`m` a power of two): every row and every column carries a complete
/// binary tree whose internal nodes are switch-only (they forward traffic
/// but host no processor). `p = m²` processors, `m² + 2m(m−1)` nodes.
///
/// Routing goes through the source row's tree to the destination column,
/// then down the destination column's tree: length ≤ 4·log₂ m = 2·log₂ p.
#[derive(Clone, Debug)]
pub struct MeshOfTrees {
    m: usize,
}

impl MeshOfTrees {
    /// Build over an `m × m` leaf grid (`m` a power of two ≥ 2).
    pub fn new(m: usize) -> MeshOfTrees {
        assert!(m >= 2 && m.is_power_of_two(), "m must be a power of two >= 2");
        MeshOfTrees { m }
    }

    /// Side length `m = √p`.
    pub fn side(&self) -> usize {
        self.m
    }

    /// Global id of leaf `(row, col)`.
    pub fn leaf(&self, row: usize, col: usize) -> usize {
        debug_assert!(row < self.m && col < self.m);
        row * self.m + col
    }

    /// Global id of the row-tree internal node with heap index `t ∈ [1, m)`.
    fn row_internal(&self, row: usize, t: usize) -> usize {
        debug_assert!((1..self.m).contains(&t));
        self.m * self.m + row * (self.m - 1) + (t - 1)
    }

    /// Global id of the column-tree internal node with heap index `t`.
    fn col_internal(&self, col: usize, t: usize) -> usize {
        debug_assert!((1..self.m).contains(&t));
        self.m * self.m + self.m * (self.m - 1) + col * (self.m - 1) + (t - 1)
    }

    /// Map a heap index (`1..2m`) within row `row`'s tree to a global id.
    fn row_heap(&self, row: usize, heap: usize) -> usize {
        if heap >= self.m {
            self.leaf(row, heap - self.m)
        } else {
            self.row_internal(row, heap)
        }
    }

    /// Map a heap index within column `col`'s tree to a global id.
    fn col_heap(&self, col: usize, heap: usize) -> usize {
        if heap >= self.m {
            self.leaf(heap - self.m, col)
        } else {
            self.col_internal(col, heap)
        }
    }

    /// Classify a global id: `(kind, tree index, heap index)` where kind is
    /// 0 = leaf (tree index = row, heap = m + col), 1 = row internal,
    /// 2 = column internal.
    fn classify(&self, v: usize) -> (u8, usize, usize) {
        let m = self.m;
        if v < m * m {
            (0, v / m, m + v % m)
        } else if v < m * m + m * (m - 1) {
            let x = v - m * m;
            (1, x / (m - 1), x % (m - 1) + 1)
        } else {
            let x = v - m * m - m * (m - 1);
            (2, x / (m - 1), x % (m - 1) + 1)
        }
    }

    /// Heap path between two heap indices of one complete binary tree,
    /// inclusive of both endpoints.
    fn heap_path(a: usize, b: usize) -> Vec<usize> {
        let mut up_a = vec![a];
        let mut up_b = vec![b];
        let (mut x, mut y) = (a, b);
        while x != y {
            if x > y {
                x /= 2;
                up_a.push(x);
            } else {
                y /= 2;
                up_b.push(y);
            }
        }
        up_a.pop(); // drop the LCA duplicate
        up_b.reverse();
        up_a.extend(up_b);
        up_a
    }
}

impl Topology for MeshOfTrees {
    fn name(&self) -> String {
        format!("mesh-of-trees(p={})", self.m * self.m)
    }

    fn nodes(&self) -> usize {
        self.m * self.m + 2 * self.m * (self.m - 1)
    }

    fn num_processors(&self) -> usize {
        self.m * self.m
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        let m = self.m;
        match self.classify(v) {
            (0, row, heap) => {
                let col = heap - m;
                vec![
                    self.row_internal(row, heap / 2),
                    self.col_internal(col, (m + row) / 2),
                ]
            }
            (1, row, t) => {
                let mut out = Vec::with_capacity(3);
                if t > 1 {
                    out.push(self.row_internal(row, t / 2));
                }
                out.push(self.row_heap(row, 2 * t));
                out.push(self.row_heap(row, 2 * t + 1));
                out
            }
            (2, col, t) => {
                let mut out = Vec::with_capacity(3);
                if t > 1 {
                    out.push(self.col_internal(col, t / 2));
                }
                out.push(self.col_heap(col, 2 * t));
                out.push(self.col_heap(col, 2 * t + 1));
                out
            }
            _ => unreachable!(),
        }
    }

    fn diameter_bound(&self) -> usize {
        4 * self.m.ilog2() as usize
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let m = self.m;
        assert!(src < m * m && dst < m * m, "routes start/end at leaves");
        let (r1, c1) = (src / m, src % m);
        let (r2, c2) = (dst / m, dst % m);
        let mut path = Vec::new();
        // Row phase: (r1, c1) -> (r1, c2) through row r1's tree.
        if c1 != c2 {
            for heap in Self::heap_path(m + c1, m + c2) {
                path.push(self.row_heap(r1, heap));
            }
        } else {
            path.push(src);
        }
        // Column phase: (r1, c2) -> (r2, c2) through column c2's tree.
        if r1 != r2 {
            let col_part: Vec<usize> = Self::heap_path(m + r1, m + r2)
                .into_iter()
                .map(|heap| self.col_heap(c2, heap))
                .collect();
            path.extend(col_part.into_iter().skip(1));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::verify_topology;

    #[test]
    fn shape() {
        let t = MeshOfTrees::new(4);
        assert_eq!(t.num_processors(), 16);
        assert_eq!(t.nodes(), 16 + 2 * 4 * 3);
    }

    #[test]
    fn leaf_has_two_parents() {
        let t = MeshOfTrees::new(4);
        assert_eq!(t.neighbors(t.leaf(2, 3)).len(), 2);
    }

    #[test]
    fn root_has_two_children_only() {
        let t = MeshOfTrees::new(4);
        let root = t.row_internal(0, 1);
        assert_eq!(t.neighbors(root).len(), 2);
    }

    #[test]
    fn heap_path_through_lca() {
        // Tree over 4 leaves: heap 4..8; path 4 -> 7 goes 4,2,1,3,7.
        assert_eq!(MeshOfTrees::heap_path(4, 7), vec![4, 2, 1, 3, 7]);
        assert_eq!(MeshOfTrees::heap_path(4, 5), vec![4, 2, 5]);
        assert_eq!(MeshOfTrees::heap_path(6, 6), vec![6]);
    }

    #[test]
    fn verify_routes() {
        verify_topology(&MeshOfTrees::new(2), 1);
        verify_topology(&MeshOfTrees::new(4), 1);
        verify_topology(&MeshOfTrees::new(8), 5);
    }

    #[test]
    fn route_same_row_stays_in_row_tree() {
        let t = MeshOfTrees::new(4);
        let p = t.route(t.leaf(1, 0), t.leaf(1, 3));
        assert_eq!(*p.first().unwrap(), t.leaf(1, 0));
        assert_eq!(*p.last().unwrap(), t.leaf(1, 3));
        // Interior nodes are all row-1 internals.
        for &v in &p[1..p.len() - 1] {
            let (kind, idx, _) = t.classify(v);
            assert_eq!((kind, idx), (1, 1));
        }
    }
}

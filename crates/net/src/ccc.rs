//! Cube-connected cycles, Table 1 row 4: `γ = δ = log p`.

use crate::topology::Topology;

/// A `k`-dimensional cube-connected cycles network: each hypercube corner
/// `x ∈ [0, 2^k)` is replaced by a `k`-cycle of nodes `(x, i)`, with the
/// cycle node at position `i` also owning the cube edge along dimension `i`.
/// All `k·2^k` nodes are processors.
///
/// Greedy routing sweeps the cycle position forward once, taking the cube
/// edge whenever the current position's address bit differs from the
/// target's, then walks the cycle to the target position (shortest way).
#[derive(Clone, Debug)]
pub struct Ccc {
    k: u32,
}

impl Ccc {
    /// Build a `k`-dimensional CCC (`k ≥ 3` so cycle edges are distinct).
    pub fn new(k: u32) -> Ccc {
        assert!((3..=24).contains(&k), "k in [3, 24]");
        Ccc { k }
    }

    /// Node id of `(corner, position)`.
    pub fn id(&self, corner: usize, pos: usize) -> usize {
        debug_assert!(corner < (1 << self.k) && pos < self.k as usize);
        corner * self.k as usize + pos
    }

    /// `(corner, position)` of a node id.
    pub fn corner_pos(&self, v: usize) -> (usize, usize) {
        (v / self.k as usize, v % self.k as usize)
    }

    fn cycle_next(&self, pos: usize) -> usize {
        (pos + 1) % self.k as usize
    }

    fn cycle_prev(&self, pos: usize) -> usize {
        (pos + self.k as usize - 1) % self.k as usize
    }
}

impl Topology for Ccc {
    fn name(&self) -> String {
        format!("ccc(p={})", self.nodes())
    }

    fn nodes(&self) -> usize {
        self.k as usize * (1usize << self.k)
    }

    fn num_processors(&self) -> usize {
        self.nodes()
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        let (x, i) = self.corner_pos(v);
        vec![
            self.id(x, self.cycle_next(i)),
            self.id(x, self.cycle_prev(i)),
            self.id(x ^ (1 << i), i),
        ]
    }

    fn diameter_bound(&self) -> usize {
        // One forward sweep (k cycle steps + up to k cube edges) plus the
        // final half-cycle walk.
        2 * self.k as usize + self.k as usize / 2 + 1
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let (mut x, mut i) = self.corner_pos(src);
        let (x2, i2) = self.corner_pos(dst);
        let mut path = vec![src];
        // Sweep: visit every cycle position once, fixing bits as passed.
        let mut remaining = x ^ x2;
        while remaining != 0 {
            if remaining & (1 << i) != 0 {
                x ^= 1 << i;
                remaining &= !(1 << i);
                path.push(self.id(x, i));
                if remaining == 0 {
                    break;
                }
            }
            i = self.cycle_next(i);
            path.push(self.id(x, i));
        }
        // Walk the cycle to the target position, shortest direction.
        let k = self.k as usize;
        while i != i2 {
            let fwd = (i2 + k - i) % k;
            i = if fwd <= k - fwd {
                self.cycle_next(i)
            } else {
                self.cycle_prev(i)
            };
            path.push(self.id(x, i));
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::verify_topology;

    #[test]
    fn shape() {
        let c = Ccc::new(3);
        assert_eq!(c.nodes(), 24);
        for v in 0..c.nodes() {
            assert_eq!(c.neighbors(v).len(), 3);
        }
    }

    #[test]
    fn corner_pos_roundtrip() {
        let c = Ccc::new(4);
        for v in 0..c.nodes() {
            let (x, i) = c.corner_pos(v);
            assert_eq!(c.id(x, i), v);
        }
    }

    #[test]
    fn cube_edge_flips_position_bit() {
        let c = Ccc::new(3);
        let n = c.neighbors(c.id(0b000, 1));
        assert!(n.contains(&c.id(0b010, 1)));
    }

    #[test]
    fn verify_routes() {
        verify_topology(&Ccc::new(3), 1);
        verify_topology(&Ccc::new(4), 3);
    }

    #[test]
    fn route_within_corner_walks_cycle() {
        let c = Ccc::new(5);
        let p = c.route(c.id(7, 0), c.id(7, 4));
        // Shortest way from position 0 to 4 on a 5-cycle is one step back.
        assert_eq!(p.len(), 2);
    }
}

//! Measuring a network's bandwidth and latency parameters.
//!
//! Section 5: "for many prominent interconnections, algorithms are known
//! that route h-relations, for arbitrary h, in optimal time
//! `Θ(γ(p)·h + δ(p))`". This harness measures that line empirically: route
//! random exact h-relations for a sweep of `h`, average completion times,
//! and fit `T(h) = γ̂·h + δ̂` by least squares. `γ̂` estimates the bandwidth
//! parameter (BSP `g*`, LogP `G*`) and `δ̂` the latency term (`ℓ*`, `L*`) up
//! to the constants Table 1 suppresses.

use crate::router::{route_relation, RouterConfig};
use crate::topology::Topology;
use bvl_model::rngutil::SeedStream;
use bvl_model::stats::linear_fit;
use bvl_model::HRelation;

/// The fitted `(γ, δ)` of one topology.
#[derive(Clone, Debug)]
pub struct MeasuredParams {
    /// Topology name.
    pub name: String,
    /// Number of processors the relation was measured over.
    pub p: usize,
    /// Fitted bandwidth parameter (slope of `T` vs `h`).
    pub gamma: f64,
    /// Fitted latency term (intercept).
    pub delta: f64,
    /// Goodness of fit.
    pub r2: f64,
    /// The topology's analytic diameter bound, for comparison with `δ̂`.
    pub diameter_bound: usize,
    /// Raw `(h, mean completion time)` samples.
    pub samples: Vec<(usize, f64)>,
}

/// Route random exact `h`-relations for each `h` in `hs` (`trials` each) and
/// fit the `γ·h + δ` line.
pub fn measure_parameters<T: Topology + ?Sized>(
    topo: &T,
    hs: &[usize],
    trials: usize,
    seed: u64,
    config: RouterConfig,
) -> MeasuredParams {
    assert!(!hs.is_empty() && trials > 0);
    let p = topo.num_processors();
    let seeds = SeedStream::new(seed);
    let mut samples = Vec::with_capacity(hs.len());
    for (i, &h) in hs.iter().enumerate() {
        let mut total = 0.0;
        for t in 0..trials {
            let mut rng = seeds.derive("measure-rel", (i * trials + t) as u64);
            let rel = HRelation::random_exact(&mut rng, p, h);
            let out = route_relation(topo, &rel, config).expect("routing diverged");
            total += out.time as f64;
        }
        samples.push((h, total / trials as f64));
    }
    let pts: Vec<(f64, f64)> = samples.iter().map(|&(h, t)| (h as f64, t)).collect();
    let (gamma, delta, r2) = linear_fit(&pts);
    MeasuredParams {
        name: topo.name(),
        p,
        gamma,
        delta,
        r2,
        diameter_bound: topo.diameter_bound(),
        samples,
    }
}

/// Measure the completion time of a single relation kind as a function of a
/// generator closure — used by the experiment binaries for barrier-style
/// (1-relation) measurements.
pub fn mean_completion_time<T: Topology + ?Sized>(
    topo: &T,
    trials: usize,
    seed: u64,
    config: RouterConfig,
    mut gen: impl FnMut(&mut rand_chacha::ChaCha8Rng, usize) -> HRelation,
) -> f64 {
    let p = topo.num_processors();
    let seeds = SeedStream::new(seed);
    let mut total = 0.0;
    for t in 0..trials {
        let mut rng = seeds.derive("measure-one", t as u64);
        let rel = gen(&mut rng, p);
        let out = route_relation(topo, &rel, config).expect("routing diverged");
        total += out.time as f64;
    }
    total / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::hypercube::Hypercube;

    #[test]
    fn fit_is_positive_and_reasonable_on_chain() {
        let topo = Array::chain(16);
        let m = measure_parameters(&topo, &[1, 2, 4, 8], 3, 42, RouterConfig::default());
        assert!(m.gamma > 0.0, "gamma {}", m.gamma);
        assert!(m.r2 > 0.8, "r2 {}", m.r2);
        assert_eq!(m.samples.len(), 4);
    }

    #[test]
    fn hypercube_multiport_gamma_is_small() {
        // Table 1: multi-port hypercube has gamma = Theta(1). With p = 32
        // the fitted slope must be far below the single-port log p regime.
        let topo = Hypercube::new(5);
        let m = measure_parameters(&topo, &[2, 4, 8, 16], 3, 1, RouterConfig::default());
        assert!(m.gamma < 3.0, "gamma {}", m.gamma);
    }

    #[test]
    fn mean_completion_of_permutations() {
        let topo = Hypercube::new(4);
        let t = mean_completion_time(&topo, 4, 3, RouterConfig::default(), |rng, p| {
            HRelation::random_permutation(rng, p)
        });
        // A permutation on a 16-node hypercube completes within a few
        // diameters under greedy multi-port routing.
        assert!((1.0..=16.0).contains(&t), "t = {t}");
    }
}

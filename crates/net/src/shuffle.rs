//! The shuffle-exchange network, Table 1 row 4: `γ = δ = log p`.

use crate::topology::Topology;

/// A `k`-bit shuffle-exchange network on `2^k` nodes, all processors.
/// Edges: *exchange* `x ↔ x ⊕ 1` and *shuffle* `x ↔ rol_k(x)` (treated as
/// undirected, so both the shuffle and its inverse are traversable).
///
/// Routing is classic destination-tag: `k` shuffle steps, each optionally
/// followed by an exchange to set the bit that just rotated into the LSB.
#[derive(Clone, Debug)]
pub struct ShuffleExchange {
    k: u32,
}

impl ShuffleExchange {
    /// Build a `2^k`-node shuffle-exchange network (`k ≥ 2`).
    pub fn new(k: u32) -> ShuffleExchange {
        assert!((2..=26).contains(&k), "k in [2, 26]");
        ShuffleExchange { k }
    }

    fn mask(&self) -> usize {
        (1 << self.k) - 1
    }

    /// Rotate-left within `k` bits (the shuffle permutation).
    pub fn rol(&self, x: usize) -> usize {
        ((x << 1) | (x >> (self.k - 1))) & self.mask()
    }

    /// Rotate-right within `k` bits (the inverse shuffle).
    pub fn ror(&self, x: usize) -> usize {
        ((x >> 1) | ((x & 1) << (self.k - 1))) & self.mask()
    }
}

impl Topology for ShuffleExchange {
    fn name(&self) -> String {
        format!("shuffle-exchange(p={})", self.nodes())
    }

    fn nodes(&self) -> usize {
        1usize << self.k
    }

    fn num_processors(&self) -> usize {
        self.nodes()
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        let mut out = vec![v ^ 1, self.rol(v), self.ror(v)];
        out.sort_unstable();
        out.dedup();
        out.retain(|&w| w != v);
        out
    }

    fn diameter_bound(&self) -> usize {
        2 * self.k as usize
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = vec![src];
        if src == dst {
            return path;
        }
        let mut cur = src;
        // Destination-tag: consume dst bits from MSB (bit k-1) down to 0.
        // After the i-th shuffle the bit set here ends up at position
        // (k-1) - remaining rotations... net effect: cur == dst at the end.
        for i in (0..self.k).rev() {
            let next = self.rol(cur);
            if next != cur {
                cur = next;
                path.push(cur);
            }
            let want = (dst >> i) & 1;
            if cur & 1 != want {
                cur ^= 1;
                path.push(cur);
            }
        }
        debug_assert_eq!(cur, dst);
        // Rotations of self-similar nodes (e.g. all-zeros) can produce
        // consecutive duplicates which we skipped; the path may still touch
        // dst early — trim any trailing revisit loop.
        if let Some(first) = path.iter().position(|&v| v == dst) {
            path.truncate(first + 1);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::verify_topology;

    #[test]
    fn rotations_are_inverse() {
        let s = ShuffleExchange::new(5);
        for x in 0..s.nodes() {
            assert_eq!(s.ror(s.rol(x)), x);
            assert_eq!(s.rol(s.ror(x)), x);
        }
    }

    #[test]
    fn neighbors_are_correct_for_k3() {
        let s = ShuffleExchange::new(3);
        // Node 0b011: exchange 0b010, rol 0b110, ror 0b101.
        let n = s.neighbors(0b011);
        assert_eq!(n, vec![0b010, 0b101, 0b110]);
    }

    #[test]
    fn fixed_points_have_fewer_neighbors() {
        let s = ShuffleExchange::new(3);
        // 0b000 rotates to itself: only the exchange edge remains.
        assert_eq!(s.neighbors(0), vec![1]);
    }

    #[test]
    fn verify_routes() {
        verify_topology(&ShuffleExchange::new(3), 1);
        verify_topology(&ShuffleExchange::new(4), 1);
        verify_topology(&ShuffleExchange::new(6), 5);
    }

    #[test]
    fn route_reaches_destination() {
        let s = ShuffleExchange::new(4);
        for src in 0..16 {
            for dst in 0..16 {
                assert_eq!(*s.route(src, dst).last().unwrap(), dst);
            }
        }
    }
}

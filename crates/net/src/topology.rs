//! The topology abstraction.
//!
//! Section 5 grounds both models on "machines that can be accurately modeled
//! by suitable networks of processors with local memory". A [`Topology`]
//! describes such a network: its nodes, which nodes host processors (some
//! topologies, like the mesh-of-trees, have switch-only internal nodes), its
//! adjacency, and a deterministic oblivious route between any two nodes.
//!
//! Routes are materialized as full node paths. This keeps every topology's
//! routing logic in one obvious place, lets the store-and-forward router in
//! [`crate::router`] stay topology-agnostic, and makes Valiant's two-phase
//! randomized routing ([`crate::valiant`]) a one-line composition.

/// A point-to-point interconnection network.
pub trait Topology: Send + Sync {
    /// Human-readable name including size, e.g. `"hypercube(p=64)"`.
    fn name(&self) -> String;

    /// Total number of network nodes (processors + switches).
    fn nodes(&self) -> usize;

    /// Number of processor-hosting nodes. **Contract:** processors occupy
    /// node ids `0..num_processors()`; any higher ids are switch-only nodes
    /// (they forward packets but neither source nor sink them). Demands
    /// between processors `i` and `j` route between nodes `i` and `j`.
    fn num_processors(&self) -> usize;

    /// Neighbors of a node.
    fn neighbors(&self, v: usize) -> Vec<usize>;

    /// An upper bound on the length of any greedy route — an analytic
    /// stand-in for the network diameter `δ(p)` of Table 1.
    fn diameter_bound(&self) -> usize;

    /// The deterministic oblivious path from `src` to `dst`, inclusive of
    /// both endpoints (`[src]` when `src == dst`). Every consecutive pair
    /// must be adjacent.
    fn route(&self, src: usize, dst: usize) -> Vec<usize>;
}

/// Check that `path` is a valid route on `topo` from `src` to `dst`:
/// endpoints match and consecutive nodes are adjacent. Returns a description
/// of the first violation.
pub fn check_route<T: Topology + ?Sized>(
    topo: &T,
    src: usize,
    dst: usize,
    path: &[usize],
) -> Result<(), String> {
    if path.first() != Some(&src) {
        return Err(format!("path does not start at {src}: {path:?}"));
    }
    if path.last() != Some(&dst) {
        return Err(format!("path does not end at {dst}: {path:?}"));
    }
    for w in path.windows(2) {
        if w[0] == w[1] {
            return Err(format!("self-loop hop {w:?}"));
        }
        if !topo.neighbors(w[0]).contains(&w[1]) {
            return Err(format!("{} -> {} is not an edge", w[0], w[1]));
        }
    }
    Ok(())
}

/// Exhaustively verify route validity and the diameter bound over all (or a
/// sample of) processor pairs — shared by every topology's test module.
#[cfg(test)]
pub(crate) fn verify_topology<T: Topology>(topo: &T, sample_stride: usize) {
    let np = topo.num_processors();
    assert!(np >= 1 && np <= topo.nodes());
    // Adjacency must be symmetric.
    for v in 0..topo.nodes() {
        for w in topo.neighbors(v) {
            assert!(
                topo.neighbors(w).contains(&v),
                "{} in neighbors({v}) but not vice versa",
                w
            );
        }
    }
    for a in (0..np).step_by(sample_stride.max(1)) {
        for b in (0..np).step_by(sample_stride.max(1)) {
            let path = topo.route(a, b);
            check_route(topo, a, b, &path)
                .unwrap_or_else(|e| panic!("route {a}->{b} on {}: {e}", topo.name()));
            assert!(
                path.len() - 1 <= topo.diameter_bound(),
                "route {a}->{b} length {} exceeds bound {} on {}",
                path.len() - 1,
                topo.diameter_bound(),
                topo.name()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 4-node ring, hand-rolled, to test the helpers themselves.
    struct Ring;

    impl Topology for Ring {
        fn name(&self) -> String {
            "ring(4)".into()
        }
        fn nodes(&self) -> usize {
            4
        }
        fn num_processors(&self) -> usize {
            4
        }
        fn neighbors(&self, v: usize) -> Vec<usize> {
            vec![(v + 1) % 4, (v + 3) % 4]
        }
        fn diameter_bound(&self) -> usize {
            2
        }
        fn route(&self, src: usize, dst: usize) -> Vec<usize> {
            let mut path = vec![src];
            let mut cur = src;
            while cur != dst {
                // Clockwise distance vs counter-clockwise.
                let cw = (dst + 4 - cur) % 4;
                cur = if cw <= 2 { (cur + 1) % 4 } else { (cur + 3) % 4 };
                path.push(cur);
            }
            path
        }
    }

    #[test]
    fn ring_passes_verification() {
        verify_topology(&Ring, 1);
    }

    #[test]
    fn check_route_catches_bad_paths() {
        assert!(check_route(&Ring, 0, 2, &[0, 1, 2]).is_ok());
        assert!(check_route(&Ring, 0, 2, &[0, 2]).is_err()); // not an edge
        assert!(check_route(&Ring, 0, 2, &[1, 2]).is_err()); // wrong start
        assert!(check_route(&Ring, 0, 2, &[0, 1]).is_err()); // wrong end
        assert!(check_route(&Ring, 0, 0, &[0, 0]).is_err()); // self-loop
        assert!(check_route(&Ring, 0, 0, &[0]).is_ok());
    }
}

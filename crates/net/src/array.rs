//! d-dimensional arrays (meshes), Table 1 row 1: `γ(p) = δ(p) = p^{1/d}`
//! for constant `d`.

use crate::topology::Topology;

/// A d-dimensional array with side lengths `dims`, optionally with
/// wraparound links (torus). Every node is a processor. Routing is
/// dimension-order (e-cube), taking the shorter way around on a torus.
#[derive(Clone, Debug)]
pub struct Array {
    dims: Vec<usize>,
    strides: Vec<usize>,
    n: usize,
    wrap: bool,
}

impl Array {
    /// Build a mesh from per-dimension side lengths (all ≥ 1, ≥ 1 dim).
    pub fn new(dims: &[usize]) -> Array {
        Self::build(dims, false)
    }

    /// Build a torus (wraparound links in every dimension).
    pub fn torus(dims: &[usize]) -> Array {
        Self::build(dims, true)
    }

    fn build(dims: &[usize], wrap: bool) -> Array {
        assert!(!dims.is_empty(), "need at least one dimension");
        assert!(dims.iter().all(|&d| d >= 1), "dimensions must be >= 1");
        let mut strides = vec![1; dims.len()];
        for i in 1..dims.len() {
            strides[i] = strides[i - 1] * dims[i - 1];
        }
        let n = dims.iter().product();
        Array {
            dims: dims.to_vec(),
            strides,
            n,
            wrap,
        }
    }

    /// A square 2-D mesh with `side * side` nodes.
    pub fn mesh2d(side: usize) -> Array {
        Array::new(&[side, side])
    }

    /// A 1-D chain of `n` nodes.
    pub fn chain(n: usize) -> Array {
        Array::new(&[n])
    }

    /// Coordinates of a node id.
    pub fn coords(&self, v: usize) -> Vec<usize> {
        self.dims
            .iter()
            .zip(&self.strides)
            .map(|(&d, &s)| (v / s) % d)
            .collect()
    }

    /// Node id of coordinates.
    pub fn id(&self, coords: &[usize]) -> usize {
        coords
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| c * s)
            .sum()
    }
}

impl Topology for Array {
    fn name(&self) -> String {
        let kind = if self.wrap { "torus" } else { "array" };
        format!("{kind}{:?}(p={})", self.dims, self.n)
    }

    fn nodes(&self) -> usize {
        self.n
    }

    fn num_processors(&self) -> usize {
        self.n
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        let c = self.coords(v);
        let mut out = Vec::with_capacity(2 * self.dims.len());
        for (dim, &len) in self.dims.iter().enumerate() {
            if len == 1 {
                continue;
            }
            if c[dim] > 0 {
                out.push(v - self.strides[dim]);
            } else if self.wrap && len > 2 {
                out.push(v + self.strides[dim] * (len - 1));
            }
            if c[dim] + 1 < len {
                out.push(v + self.strides[dim]);
            } else if self.wrap && len > 2 {
                out.push(v - self.strides[dim] * (len - 1));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn diameter_bound(&self) -> usize {
        if self.wrap {
            self.dims.iter().map(|&d| d / 2).sum()
        } else {
            self.dims.iter().map(|&d| d - 1).sum()
        }
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = vec![src];
        let mut cur = self.coords(src);
        let target = self.coords(dst);
        for dim in 0..self.dims.len() {
            let len = self.dims[dim];
            while cur[dim] != target[dim] {
                let fwd = (target[dim] + len - cur[dim]) % len;
                let step_up = if self.wrap && len > 2 {
                    fwd <= len - fwd
                } else {
                    cur[dim] < target[dim]
                };
                if step_up {
                    cur[dim] = (cur[dim] + 1) % len;
                } else {
                    cur[dim] = (cur[dim] + len - 1) % len;
                }
                path.push(self.id(&cur));
            }
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::verify_topology;

    #[test]
    fn coords_roundtrip() {
        let a = Array::new(&[3, 4, 5]);
        for v in 0..a.nodes() {
            assert_eq!(a.id(&a.coords(v)), v);
        }
    }

    #[test]
    fn chain_route_is_straight() {
        let a = Array::chain(6);
        assert_eq!(a.route(1, 4), vec![1, 2, 3, 4]);
        assert_eq!(a.route(4, 1), vec![4, 3, 2, 1]);
        assert_eq!(a.route(2, 2), vec![2]);
    }

    #[test]
    fn mesh_neighbors_and_diameter() {
        let a = Array::mesh2d(4);
        assert_eq!(a.nodes(), 16);
        assert_eq!(a.diameter_bound(), 6);
        // Corner has 2 neighbors, center 4.
        assert_eq!(a.neighbors(0).len(), 2);
        assert_eq!(a.neighbors(5).len(), 4);
    }

    #[test]
    fn verify_2d_and_3d() {
        verify_topology(&Array::mesh2d(5), 1);
        verify_topology(&Array::new(&[3, 3, 3]), 1);
        verify_topology(&Array::chain(9), 1);
    }

    #[test]
    fn torus_wraps_and_shortens_routes() {
        let t = Array::torus(&[8]);
        assert_eq!(t.neighbors(0), vec![1, 7]);
        // 0 -> 6 goes backwards around the ring: 2 hops, not 6.
        assert_eq!(t.route(0, 6), vec![0, 7, 6]);
        assert_eq!(t.diameter_bound(), 4);
        verify_topology(&Array::torus(&[5, 5]), 1);
        verify_topology(&Array::torus(&[4, 3, 3]), 1);
    }

    #[test]
    fn torus_of_side_two_degenerates_to_mesh_edges() {
        // side 2: wraparound would duplicate the single edge; ensure no
        // self-duplicate neighbors.
        let t = Array::torus(&[2, 2]);
        for v in 0..4 {
            let n = t.neighbors(v);
            let mut d = n.clone();
            d.dedup();
            assert_eq!(n, d);
            assert_eq!(n.len(), 2);
        }
        verify_topology(&t, 1);
    }

    #[test]
    fn dimension_order_route_length_is_manhattan() {
        let a = Array::mesh2d(8);
        let src = a.id(&[1, 2]);
        let dst = a.id(&[6, 7]);
        assert_eq!(a.route(src, dst).len() - 1, 5 + 5);
    }
}

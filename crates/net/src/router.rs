//! Synchronous store-and-forward packet routing.
//!
//! The router is the operational meaning of "route an h-relation on this
//! network": packets follow their topology-provided (or Valiant) paths, one
//! packet per directed link per step (multi-port) or one send and one
//! receive per *node* per step (single-port — the discipline that separates
//! Table 1's two hypercube rows). Queues are unbounded FIFO per output port,
//! optionally prioritized farthest-to-go first.

use crate::topology::Topology;
use crate::valiant::valiant_path;
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, ModelError};
use std::collections::HashMap;

/// Port discipline per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortMode {
    /// A node may send one packet on *every* outgoing link and receive on
    /// every incoming link simultaneously.
    Multi,
    /// A node may send at most one packet and receive at most one packet
    /// per step, across all its links.
    Single,
}

/// Which queued packet crosses a link first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Oldest first.
    Fifo,
    /// Most remaining hops first (the classic farthest-first heuristic).
    FarthestFirst,
}

/// How packet paths are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathStrategy {
    /// The topology's deterministic oblivious route.
    Greedy,
    /// Valiant's two-phase randomized routing: greedy to a uniformly random
    /// intermediate node, then greedy to the destination.
    Valiant,
}

/// Router options.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Port discipline.
    pub mode: PortMode,
    /// Queue service order.
    pub discipline: QueueDiscipline,
    /// Path selection.
    pub paths: PathStrategy,
    /// RNG seed (Valiant interm. nodes, single-port tie-breaking).
    pub seed: u64,
    /// Step budget before declaring the routing stuck.
    pub max_steps: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            mode: PortMode::Multi,
            discipline: QueueDiscipline::Fifo,
            paths: PathStrategy::Greedy,
            seed: 0,
            max_steps: 10_000_000,
        }
    }
}

/// Outcome of routing one relation.
#[derive(Clone, Copy, Debug)]
pub struct RouteOutcome {
    /// Steps until the last packet was delivered.
    pub time: u64,
    /// Packets delivered (always the relation size on success).
    pub delivered: usize,
    /// Peak total queued packets at any single node.
    pub max_queue: usize,
    /// Total link traversals.
    pub total_hops: u64,
}

struct Pkt {
    path: Vec<usize>,
    hop: usize,
}

impl Pkt {
    fn remaining(&self) -> usize {
        self.path.len() - 1 - self.hop
    }
    fn cur(&self) -> usize {
        self.path[self.hop]
    }
    fn next(&self) -> usize {
        self.path[self.hop + 1]
    }
}

/// Route all demands of `rel` (processor-indexed) on `topo` and report the
/// completion time.
pub fn route_relation<T: Topology + ?Sized>(
    topo: &T,
    rel: &HRelation,
    config: RouterConfig,
) -> Result<RouteOutcome, ModelError> {
    assert!(
        rel.p() <= topo.num_processors(),
        "relation over {} processors on a {}-processor network",
        rel.p(),
        topo.num_processors()
    );
    let mut rng = SeedStream::new(config.seed).derive("router", 0);

    // Build packets.
    let mut packets: Vec<Pkt> = Vec::with_capacity(rel.len());
    let mut delivered = 0usize;
    for d in rel.demands() {
        let (src, dst) = (d.src.index(), d.dst.index());
        let path = match config.paths {
            PathStrategy::Greedy => topo.route(src, dst),
            PathStrategy::Valiant => valiant_path(topo, src, dst, &mut rng),
        };
        if path.len() <= 1 {
            delivered += 1; // src == dst: no network traversal needed
        } else {
            packets.push(Pkt { path, hop: 0 });
        }
    }

    // Adjacency and per-port queues.
    let n = topo.nodes();
    let adj: Vec<Vec<usize>> = (0..n).map(|v| topo.neighbors(v)).collect();
    let mut port_of: HashMap<(usize, usize), usize> = HashMap::new();
    for (v, ns) in adj.iter().enumerate() {
        for (q, &w) in ns.iter().enumerate() {
            port_of.insert((v, w), q);
        }
    }
    let mut queues: Vec<Vec<Vec<usize>>> = (0..n).map(|v| vec![Vec::new(); adj[v].len()]).collect();
    let enqueue = |queues: &mut Vec<Vec<Vec<usize>>>,
                   port_of: &HashMap<(usize, usize), usize>,
                   packets: &[Pkt],
                   id: usize| {
        let p = &packets[id];
        let q = *port_of
            .get(&(p.cur(), p.next()))
            .unwrap_or_else(|| panic!("route hop {} -> {} is not an edge", p.cur(), p.next()));
        queues[p.cur()][q].push(id);
    };
    for id in 0..packets.len() {
        enqueue(&mut queues, &port_of, &packets, id);
    }

    let pick = |queue: &[usize], packets: &[Pkt]| -> usize {
        match config.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::FarthestFirst => queue
                .iter()
                .enumerate()
                .max_by_key(|&(_, &id)| packets[id].remaining())
                .map(|(i, _)| i)
                .expect("non-empty queue"),
        }
    };

    let total = packets.len() + delivered;
    let mut time = 0u64;
    let mut max_queue = 0usize;
    let mut total_hops = 0u64;
    let mut rr: Vec<usize> = vec![0; n]; // single-port round-robin pointers

    while delivered < total {
        if time >= config.max_steps {
            return Err(ModelError::Timeout {
                budget: config.max_steps,
            });
        }
        for node in &queues {
            let occupancy: usize = node.iter().map(|q| q.len()).sum();
            max_queue = max_queue.max(occupancy);
        }

        // Select moves based on the state at the start of the step.
        let mut moves: Vec<usize> = Vec::new();
        match config.mode {
            PortMode::Multi => {
                for node in queues.iter_mut() {
                    for port in node.iter_mut() {
                        if !port.is_empty() {
                            let i = pick(port, &packets);
                            moves.push(port.remove(i));
                        }
                    }
                }
            }
            PortMode::Single => {
                // Each node proposes one send (round-robin over busy ports);
                // each node accepts one receive (lowest sender id wins).
                let mut proposals: Vec<(usize, usize, usize)> = Vec::new(); // (v, q, pkt)
                for v in 0..n {
                    let nports = queues[v].len();
                    if nports == 0 {
                        continue;
                    }
                    for off in 0..nports {
                        let q = (rr[v] + off) % nports;
                        if !queues[v][q].is_empty() {
                            let i = pick(&queues[v][q], &packets);
                            proposals.push((v, q, queues[v][q][i]));
                            rr[v] = (q + 1) % nports;
                            break;
                        }
                    }
                }
                let mut recv_taken = vec![false; n];
                for (v, q, pkt) in proposals {
                    let dst = packets[pkt].next();
                    if !recv_taken[dst] {
                        recv_taken[dst] = true;
                        let pos = queues[v][q].iter().position(|&x| x == pkt).expect("queued");
                        queues[v][q].remove(pos);
                        moves.push(pkt);
                    }
                }
            }
        }

        // Apply moves simultaneously.
        time += 1;
        for id in moves {
            packets[id].hop += 1;
            total_hops += 1;
            if packets[id].remaining() == 0 {
                delivered += 1;
            } else {
                enqueue(&mut queues, &port_of, &packets, id);
            }
        }
    }

    Ok(RouteOutcome {
        time,
        delivered,
        max_queue,
        total_hops,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::hypercube::Hypercube;
    use bvl_model::rngutil::SeedStream;
    use bvl_model::{Payload, ProcId};

    #[test]
    fn single_packet_takes_path_length_steps() {
        let topo = Array::chain(8);
        let mut rel = HRelation::new(8);
        rel.push(ProcId(1), ProcId(6), Payload::tagged(0));
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        assert_eq!(out.time, 5);
        assert_eq!(out.delivered, 1);
        assert_eq!(out.total_hops, 5);
    }

    #[test]
    fn self_messages_cost_nothing() {
        let topo = Array::chain(4);
        let mut rel = HRelation::new(4);
        rel.push(ProcId(2), ProcId(2), Payload::tagged(0));
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        assert_eq!(out.time, 0);
        assert_eq!(out.delivered, 1);
    }

    #[test]
    fn chain_contention_serializes() {
        // Nodes 0..4 all send to node 4 along a chain: the link 3->4 is the
        // bottleneck and must carry 4 packets on consecutive steps.
        let topo = Array::chain(5);
        let mut rel = HRelation::new(5);
        for i in 0..4 {
            rel.push(ProcId(i), ProcId(4), Payload::tagged(0));
        }
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        // Packet from 0 needs 4 hops but queues behind others: last arrival
        // cannot beat max(distance, arrival order at bottleneck).
        assert!(out.time >= 4);
        assert_eq!(out.delivered, 4);
    }

    #[test]
    fn multiport_parallelizes_disjoint_traffic() {
        let topo = Hypercube::new(3);
        // A perfect matching along dimension 0: all 8 packets in 1 step.
        let mut rel = HRelation::new(8);
        for v in 0..8usize {
            rel.push(ProcId::from(v), ProcId::from(v ^ 1), Payload::tagged(0));
        }
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        assert_eq!(out.time, 1);
    }

    #[test]
    fn single_port_serializes_fanout() {
        let topo = Hypercube::new(3);
        // Node 0 sends to all 3 of its neighbors: multi-port 1 step,
        // single-port 3 steps.
        let mut rel = HRelation::new(8);
        for b in 0..3 {
            rel.push(ProcId(0), ProcId(1 << b), Payload::tagged(0));
        }
        let multi = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        let single = route_relation(
            &topo,
            &rel,
            RouterConfig {
                mode: PortMode::Single,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert_eq!(multi.time, 1);
        assert_eq!(single.time, 3);
    }

    #[test]
    fn single_port_respects_receive_limit() {
        let topo = Hypercube::new(3);
        // All 3 neighbors of node 7 send to it: 3 steps to drain receives.
        let mut rel = HRelation::new(8);
        for b in 0..3 {
            rel.push(ProcId(7 ^ (1 << b)), ProcId(7), Payload::tagged(0));
        }
        let single = route_relation(
            &topo,
            &rel,
            RouterConfig {
                mode: PortMode::Single,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert_eq!(single.time, 3);
    }

    #[test]
    fn random_relation_fully_delivered_under_all_configs() {
        let topo = Hypercube::new(4);
        let mut rng = SeedStream::new(5).derive("t", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 4);
        for mode in [PortMode::Multi, PortMode::Single] {
            for disc in [QueueDiscipline::Fifo, QueueDiscipline::FarthestFirst] {
                for paths in [PathStrategy::Greedy, PathStrategy::Valiant] {
                    let out = route_relation(
                        &topo,
                        &rel,
                        RouterConfig {
                            mode,
                            discipline: disc,
                            paths,
                            seed: 9,
                            ..RouterConfig::default()
                        },
                    )
                    .unwrap();
                    assert_eq!(out.delivered, rel.len(), "{mode:?}/{disc:?}/{paths:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Hypercube::new(4);
        let mut rng = SeedStream::new(6).derive("t", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 3);
        let cfg = RouterConfig {
            paths: PathStrategy::Valiant,
            seed: 11,
            ..RouterConfig::default()
        };
        let a = route_relation(&topo, &rel, cfg).unwrap();
        let b = route_relation(&topo, &rel, cfg).unwrap();
        assert_eq!(a.time, b.time);
        assert_eq!(a.total_hops, b.total_hops);
    }
}

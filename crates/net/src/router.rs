//! Synchronous store-and-forward packet routing.
//!
//! The router is the operational meaning of "route an h-relation on this
//! network": packets follow their topology-provided (or Valiant) paths, one
//! packet per directed link per step (multi-port) or one send and one
//! receive per *node* per step (single-port — the discipline that separates
//! Table 1's two hypercube rows). Queues are unbounded FIFO per output port,
//! optionally prioritized farthest-to-go first.
//!
//! [`Router`] is the stateful engine: it implements
//! [`bvl_exec::Executor`], so one network step is one [`Executor::step`]
//! and a whole relation is routed by [`bvl_exec::drive`]. The one-shot
//! wrapper [`route_relation`] preserves the original convenience API.

use crate::topology::Topology;
use crate::valiant::valiant_path;
use bvl_exec::{drive, Executor, RunOutcome};
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, ModelError, Steps};
use std::collections::HashMap;

/// Port discipline per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PortMode {
    /// A node may send one packet on *every* outgoing link and receive on
    /// every incoming link simultaneously.
    Multi,
    /// A node may send at most one packet and receive at most one packet
    /// per step, across all its links.
    Single,
}

/// Which queued packet crosses a link first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// Oldest first.
    Fifo,
    /// Most remaining hops first (the classic farthest-first heuristic).
    FarthestFirst,
}

/// How packet paths are chosen.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PathStrategy {
    /// The topology's deterministic oblivious route.
    Greedy,
    /// Valiant's two-phase randomized routing: greedy to a uniformly random
    /// intermediate node, then greedy to the destination.
    Valiant,
}

/// Router options.
#[derive(Clone, Copy, Debug)]
pub struct RouterConfig {
    /// Port discipline.
    pub mode: PortMode,
    /// Queue service order.
    pub discipline: QueueDiscipline,
    /// Path selection.
    pub paths: PathStrategy,
    /// RNG seed (Valiant interm. nodes, single-port tie-breaking).
    pub seed: u64,
    /// Step budget before declaring the routing stuck.
    pub max_steps: u64,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            mode: PortMode::Multi,
            discipline: QueueDiscipline::Fifo,
            paths: PathStrategy::Greedy,
            seed: 0,
            max_steps: 10_000_000,
        }
    }
}

/// Outcome of routing one relation.
#[derive(Clone, Copy, Debug)]
pub struct RouteOutcome {
    /// Steps until the last packet was delivered.
    pub time: u64,
    /// Packets delivered (always the relation size on success).
    pub delivered: usize,
    /// Peak total queued packets at any single node.
    pub max_queue: usize,
    /// Total link traversals.
    pub total_hops: u64,
}

struct Pkt {
    path: Vec<usize>,
    hop: usize,
}

impl Pkt {
    fn remaining(&self) -> usize {
        self.path.len() - 1 - self.hop
    }
    fn cur(&self) -> usize {
        self.path[self.hop]
    }
    fn next(&self) -> usize {
        self.path[self.hop + 1]
    }
    fn endpoints(&self) -> (usize, usize) {
        (self.path[0], *self.path.last().expect("non-empty path"))
    }
}

/// The stateful routing engine for one h-relation on one topology.
///
/// All topology-dependent state (paths, adjacency, port maps) is captured
/// at construction, so the router owns no borrow of the network. Drive it
/// with [`Executor::step`] (one synchronous network step per call) or all
/// the way with [`bvl_exec::drive`]; [`Router::route_outcome`] reads the
/// classic [`RouteOutcome`] at any point.
pub struct Router {
    config: RouterConfig,
    packets: Vec<Pkt>,
    port_of: HashMap<(usize, usize), usize>,
    queues: Vec<Vec<Vec<usize>>>,
    rr: Vec<usize>, // single-port round-robin pointers
    total: usize,
    delivered: usize,
    time: u64,
    max_queue: usize,
    total_hops: u64,
    delivered_pairs: Vec<(usize, usize)>,
    last_moves: Vec<(usize, usize)>,
}

impl Router {
    /// Build a router for `rel` (processor-indexed) on `topo`.
    ///
    /// # Panics
    /// If the relation spans more processors than the network has.
    pub fn new<T: Topology + ?Sized>(topo: &T, rel: &HRelation, config: RouterConfig) -> Router {
        assert!(
            rel.p() <= topo.num_processors(),
            "relation over {} processors on a {}-processor network",
            rel.p(),
            topo.num_processors()
        );
        let mut rng = SeedStream::new(config.seed).derive("router", 0);

        // Build packets.
        let mut packets: Vec<Pkt> = Vec::with_capacity(rel.len());
        let mut delivered = 0usize;
        let mut delivered_pairs: Vec<(usize, usize)> = Vec::new();
        for d in rel.demands() {
            let (src, dst) = (d.src.index(), d.dst.index());
            let path = match config.paths {
                PathStrategy::Greedy => topo.route(src, dst),
                PathStrategy::Valiant => valiant_path(topo, src, dst, &mut rng),
            };
            if path.len() <= 1 {
                delivered += 1; // src == dst: no network traversal needed
                delivered_pairs.push((src, dst));
            } else {
                packets.push(Pkt { path, hop: 0 });
            }
        }

        // Adjacency and per-port queues.
        let n = topo.nodes();
        let adj: Vec<Vec<usize>> = (0..n).map(|v| topo.neighbors(v)).collect();
        let mut port_of: HashMap<(usize, usize), usize> = HashMap::new();
        for (v, ns) in adj.iter().enumerate() {
            for (q, &w) in ns.iter().enumerate() {
                port_of.insert((v, w), q);
            }
        }
        let mut queues: Vec<Vec<Vec<usize>>> =
            (0..n).map(|v| vec![Vec::new(); adj[v].len()]).collect();
        for (id, p) in packets.iter().enumerate() {
            enqueue(&mut queues, &port_of, p, id);
        }

        let total = packets.len() + delivered;
        Router {
            config,
            packets,
            port_of,
            queues,
            rr: vec![0; n],
            total,
            delivered,
            time: 0,
            max_queue: 0,
            total_hops: 0,
            delivered_pairs,
            last_moves: Vec::new(),
        }
    }

    /// The `(src, dst)` processor pairs delivered so far, in delivery order.
    pub fn delivered_pairs(&self) -> &[(usize, usize)] {
        &self.delivered_pairs
    }

    /// The `(from, to)` node link traversals performed by the most recent
    /// step (empty before the first step).
    pub fn last_moves(&self) -> &[(usize, usize)] {
        &self.last_moves
    }

    /// The classic outcome summary for the routing so far.
    pub fn route_outcome(&self) -> RouteOutcome {
        RouteOutcome {
            time: self.time,
            delivered: self.delivered,
            max_queue: self.max_queue,
            total_hops: self.total_hops,
        }
    }

    fn pick(&self, queue: &[usize]) -> usize {
        match self.config.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::FarthestFirst => queue
                .iter()
                .enumerate()
                .max_by_key(|&(_, &id)| self.packets[id].remaining())
                .map(|(i, _)| i)
                .expect("non-empty queue"),
        }
    }
}

fn enqueue(
    queues: &mut [Vec<Vec<usize>>],
    port_of: &HashMap<(usize, usize), usize>,
    p: &Pkt,
    id: usize,
) {
    let q = *port_of
        .get(&(p.cur(), p.next()))
        .unwrap_or_else(|| panic!("route hop {} -> {} is not an edge", p.cur(), p.next()));
    queues[p.cur()][q].push(id);
}

impl Executor for Router {
    /// Advance the network one synchronous step: select at most one packet
    /// per output port (multi-port) or per node (single-port) from the
    /// state at the start of the step, then apply all moves simultaneously.
    fn step(&mut self) -> Result<bool, ModelError> {
        if self.delivered >= self.total {
            return Ok(false);
        }
        for node in &self.queues {
            let occupancy: usize = node.iter().map(|q| q.len()).sum();
            self.max_queue = self.max_queue.max(occupancy);
        }

        // Select moves based on the state at the start of the step.
        let mut moves: Vec<usize> = Vec::new();
        match self.config.mode {
            PortMode::Multi => {
                for v in 0..self.queues.len() {
                    for q in 0..self.queues[v].len() {
                        if !self.queues[v][q].is_empty() {
                            let i = self.pick(&self.queues[v][q]);
                            moves.push(self.queues[v][q].remove(i));
                        }
                    }
                }
            }
            PortMode::Single => {
                // Each node proposes one send (round-robin over busy ports);
                // each node accepts one receive (lowest sender id wins).
                let n = self.queues.len();
                let mut proposals: Vec<(usize, usize, usize)> = Vec::new(); // (v, q, pkt)
                for v in 0..n {
                    let nports = self.queues[v].len();
                    if nports == 0 {
                        continue;
                    }
                    for off in 0..nports {
                        let q = (self.rr[v] + off) % nports;
                        if !self.queues[v][q].is_empty() {
                            let i = self.pick(&self.queues[v][q]);
                            proposals.push((v, q, self.queues[v][q][i]));
                            self.rr[v] = (q + 1) % nports;
                            break;
                        }
                    }
                }
                let mut recv_taken = vec![false; n];
                for (v, q, pkt) in proposals {
                    let dst = self.packets[pkt].next();
                    if !recv_taken[dst] {
                        recv_taken[dst] = true;
                        let pos = self.queues[v][q]
                            .iter()
                            .position(|&x| x == pkt)
                            .expect("queued");
                        self.queues[v][q].remove(pos);
                        moves.push(pkt);
                    }
                }
            }
        }

        // Apply moves simultaneously.
        self.time += 1;
        self.last_moves.clear();
        for id in moves {
            self.last_moves
                .push((self.packets[id].cur(), self.packets[id].next()));
            self.packets[id].hop += 1;
            self.total_hops += 1;
            if self.packets[id].remaining() == 0 {
                self.delivered += 1;
                self.delivered_pairs.push(self.packets[id].endpoints());
            } else {
                let p = &self.packets[id];
                enqueue(&mut self.queues, &self.port_of, p, id);
            }
        }
        Ok(true)
    }

    fn halted(&self) -> bool {
        self.delivered >= self.total
    }

    fn outcome(&self) -> RunOutcome {
        RunOutcome {
            makespan: Steps(self.time),
            delivered: self.delivered as u64,
            work: self.total_hops,
            halted: self.halted(),
        }
    }
}

/// Route all demands of `rel` (processor-indexed) on `topo` and report the
/// completion time. One-shot wrapper: builds a [`Router`] and drives it to
/// quiescence under `config.max_steps`.
pub fn route_relation<T: Topology + ?Sized>(
    topo: &T,
    rel: &HRelation,
    config: RouterConfig,
) -> Result<RouteOutcome, ModelError> {
    let mut router = Router::new(topo, rel, config);
    drive(&mut router, config.max_steps)?;
    Ok(router.route_outcome())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Array;
    use crate::hypercube::Hypercube;
    use bvl_model::rngutil::SeedStream;
    use bvl_model::{Payload, ProcId};

    #[test]
    fn single_packet_takes_path_length_steps() {
        let topo = Array::chain(8);
        let mut rel = HRelation::new(8);
        rel.push(ProcId(1), ProcId(6), Payload::tagged(0));
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        assert_eq!(out.time, 5);
        assert_eq!(out.delivered, 1);
        assert_eq!(out.total_hops, 5);
    }

    #[test]
    fn self_messages_cost_nothing() {
        let topo = Array::chain(4);
        let mut rel = HRelation::new(4);
        rel.push(ProcId(2), ProcId(2), Payload::tagged(0));
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        assert_eq!(out.time, 0);
        assert_eq!(out.delivered, 1);
    }

    #[test]
    fn chain_contention_serializes() {
        // Nodes 0..4 all send to node 4 along a chain: the link 3->4 is the
        // bottleneck and must carry 4 packets on consecutive steps.
        let topo = Array::chain(5);
        let mut rel = HRelation::new(5);
        for i in 0..4 {
            rel.push(ProcId(i), ProcId(4), Payload::tagged(0));
        }
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        // Packet from 0 needs 4 hops but queues behind others: last arrival
        // cannot beat max(distance, arrival order at bottleneck).
        assert!(out.time >= 4);
        assert_eq!(out.delivered, 4);
    }

    #[test]
    fn multiport_parallelizes_disjoint_traffic() {
        let topo = Hypercube::new(3);
        // A perfect matching along dimension 0: all 8 packets in 1 step.
        let mut rel = HRelation::new(8);
        for v in 0..8usize {
            rel.push(ProcId::from(v), ProcId::from(v ^ 1), Payload::tagged(0));
        }
        let out = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        assert_eq!(out.time, 1);
    }

    #[test]
    fn single_port_serializes_fanout() {
        let topo = Hypercube::new(3);
        // Node 0 sends to all 3 of its neighbors: multi-port 1 step,
        // single-port 3 steps.
        let mut rel = HRelation::new(8);
        for b in 0..3 {
            rel.push(ProcId(0), ProcId(1 << b), Payload::tagged(0));
        }
        let multi = route_relation(&topo, &rel, RouterConfig::default()).unwrap();
        let single = route_relation(
            &topo,
            &rel,
            RouterConfig {
                mode: PortMode::Single,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert_eq!(multi.time, 1);
        assert_eq!(single.time, 3);
    }

    #[test]
    fn single_port_respects_receive_limit() {
        let topo = Hypercube::new(3);
        // All 3 neighbors of node 7 send to it: 3 steps to drain receives.
        let mut rel = HRelation::new(8);
        for b in 0..3 {
            rel.push(ProcId(7 ^ (1 << b)), ProcId(7), Payload::tagged(0));
        }
        let single = route_relation(
            &topo,
            &rel,
            RouterConfig {
                mode: PortMode::Single,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        assert_eq!(single.time, 3);
    }

    #[test]
    fn random_relation_fully_delivered_under_all_configs() {
        let topo = Hypercube::new(4);
        let mut rng = SeedStream::new(5).derive("t", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 4);
        for mode in [PortMode::Multi, PortMode::Single] {
            for disc in [QueueDiscipline::Fifo, QueueDiscipline::FarthestFirst] {
                for paths in [PathStrategy::Greedy, PathStrategy::Valiant] {
                    let out = route_relation(
                        &topo,
                        &rel,
                        RouterConfig {
                            mode,
                            discipline: disc,
                            paths,
                            seed: 9,
                            ..RouterConfig::default()
                        },
                    )
                    .unwrap();
                    assert_eq!(out.delivered, rel.len(), "{mode:?}/{disc:?}/{paths:?}");
                }
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let topo = Hypercube::new(4);
        let mut rng = SeedStream::new(6).derive("t", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 3);
        let cfg = RouterConfig {
            paths: PathStrategy::Valiant,
            seed: 11,
            ..RouterConfig::default()
        };
        let a = route_relation(&topo, &rel, cfg).unwrap();
        let b = route_relation(&topo, &rel, cfg).unwrap();
        assert_eq!(a.time, b.time);
        assert_eq!(a.total_hops, b.total_hops);
    }

    #[test]
    fn stepwise_router_matches_one_shot() {
        let topo = Hypercube::new(4);
        let mut rng = SeedStream::new(7).derive("t", 0);
        let rel = HRelation::random_exact(&mut rng, 16, 3);
        let cfg = RouterConfig::default();
        let one_shot = route_relation(&topo, &rel, cfg).unwrap();
        let mut r = Router::new(&topo, &rel, cfg);
        let mut steps = 0u64;
        while r.step().unwrap() {
            steps += 1;
            assert!(steps <= cfg.max_steps, "router diverged");
        }
        assert!(r.halted());
        assert_eq!(r.route_outcome().time, one_shot.time);
        assert_eq!(r.route_outcome().total_hops, one_shot.total_hops);
        assert_eq!(r.delivered_pairs().len(), rel.len());
    }

    #[test]
    fn delivered_pairs_match_relation() {
        let topo = Array::chain(6);
        let mut rel = HRelation::new(6);
        rel.push(ProcId(0), ProcId(5), Payload::tagged(0));
        rel.push(ProcId(3), ProcId(3), Payload::tagged(0));
        rel.push(ProcId(4), ProcId(1), Payload::tagged(0));
        let mut r = Router::new(&topo, &rel, RouterConfig::default());
        drive(&mut r, 1_000).unwrap();
        let mut got: Vec<_> = r.delivered_pairs().to_vec();
        got.sort_unstable();
        assert_eq!(got, vec![(0, 5), (3, 3), (4, 1)]);
    }
}

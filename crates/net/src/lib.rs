//! # bvl-net — point-to-point network substrates (Table 1)
//!
//! Section 5 of *BSP vs LogP* grounds the model comparison on real(istic)
//! hardware: machines modeled as point-to-point processor networks, where
//! the best attainable BSP parameters `(g*, ℓ*)` and LogP parameters
//! `(G*, L*)` are both `Θ(γ(p))` / `Θ(δ(p))` for a bandwidth factor `γ` and
//! diameter `δ` given by Table 1.
//!
//! This crate implements every topology in that table —
//! [`array::Array`] (d-dimensional meshes), [`hypercube::Hypercube`]
//! (multi- and single-port via [`router::PortMode`]),
//! [`butterfly::Butterfly`], [`ccc::Ccc`], [`shuffle::ShuffleExchange`] and
//! [`mot::MeshOfTrees`] (the pruned-butterfly row) — plus:
//!
//! * a synchronous store-and-forward packet [`router`] (a
//!   [`bvl_exec::Executor`]) with pluggable port modes, queue disciplines,
//!   and [`valiant`] two-phase randomized paths;
//! * a [`medium::NetMedium`] transport that plugs a topology's link-level
//!   contention under a LogP machine as its `bvl_exec::Medium`;
//! * a [`measure`] harness that routes random h-relations and fits
//!   `T(h) = γ̂·h + δ̂`, regenerating Table 1's shape empirically;
//! * the analytic [`table1`] formulas for measured-vs-predicted reporting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod array;
pub mod butterfly;
pub mod ccc;
pub mod hypercube;
pub mod measure;
pub mod medium;
pub mod mot;
pub mod router;
pub mod shuffle;
pub mod table1;
pub mod topology;
pub mod valiant;

pub use array::Array;
pub use butterfly::Butterfly;
pub use ccc::Ccc;
pub use hypercube::Hypercube;
pub use measure::{measure_parameters, MeasuredParams};
pub use medium::NetMedium;
pub use mot::MeshOfTrees;
pub use router::{
    route_relation, PathStrategy, PortMode, QueueDiscipline, RouteOutcome, Router, RouterConfig,
};
pub use shuffle::ShuffleExchange;
pub use table1::Family;
pub use topology::{check_route, Topology};

//! The analytic side of Table 1.
//!
//! | Topology                         | γ(p)    | δ(p)    |
//! |----------------------------------|---------|---------|
//! | d-dim array (d = O(1))           | p^(1/d) | p^(1/d) |
//! | Hypercube (multi-port)           | 1       | log p   |
//! | Hypercube (single-port)          | log p   | log p   |
//! | Butterfly, CCC, Shuffle-Exchange | log p   | log p   |
//! | Pruned Butterfly / Mesh-of-Trees | √p      | log p   |
//!
//! [`Family::gamma`] / [`Family::delta`] evaluate these (up to the constant
//! factors the paper's asymptotic analysis suppresses), so the measurement
//! harness can print measured-vs-predicted columns per topology.

/// A Table 1 topology family.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// d-dimensional array with constant `d`.
    ArrayD(u32),
    /// Hypercube, all `log p` ports usable per step.
    HypercubeMulti,
    /// Hypercube, one send + one receive per node per step.
    HypercubeSingle,
    /// Butterfly network.
    Butterfly,
    /// Cube-connected cycles.
    Ccc,
    /// Shuffle-exchange network.
    ShuffleExchange,
    /// Pruned butterfly / mesh-of-trees.
    MeshOfTrees,
}

impl Family {
    /// Table 1's bandwidth parameter `γ(p)` (unnormalized).
    pub fn gamma(&self, p: f64) -> f64 {
        match *self {
            Family::ArrayD(d) => p.powf(1.0 / d as f64),
            Family::HypercubeMulti => 1.0,
            Family::HypercubeSingle | Family::Butterfly | Family::Ccc | Family::ShuffleExchange => {
                p.log2()
            }
            Family::MeshOfTrees => p.sqrt(),
        }
    }

    /// Table 1's latency/diameter parameter `δ(p)` (unnormalized).
    pub fn delta(&self, p: f64) -> f64 {
        match *self {
            Family::ArrayD(d) => p.powf(1.0 / d as f64),
            _ => p.log2(),
        }
    }

    /// Row label as printed by the experiment binaries.
    pub fn label(&self) -> String {
        match *self {
            Family::ArrayD(d) => format!("{d}-dim array"),
            Family::HypercubeMulti => "hypercube (multi-port)".into(),
            Family::HypercubeSingle => "hypercube (single-port)".into(),
            Family::Butterfly => "butterfly".into(),
            Family::Ccc => "CCC".into(),
            Family::ShuffleExchange => "shuffle-exchange".into(),
            Family::MeshOfTrees => "mesh-of-trees".into(),
        }
    }

    /// Observation 1 (§5): the best attainable LogP parameters on these
    /// networks satisfy `G* = Θ(g*)` and `L* = Θ(ℓ* + g*)`. Given measured
    /// BSP-side `(g, ℓ)` return the predicted LogP-side `(G, L)`.
    pub fn predicted_logp(g_star: f64, l_star: f64) -> (f64, f64) {
        (g_star, l_star + g_star)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn array_scalings() {
        assert!((Family::ArrayD(2).gamma(256.0) - 16.0).abs() < 1e-9);
        assert!((Family::ArrayD(3).gamma(512.0) - 8.0).abs() < 1e-6);
        assert_eq!(Family::ArrayD(2).gamma(256.0), Family::ArrayD(2).delta(256.0));
    }

    #[test]
    fn hypercube_rows_differ_only_in_gamma() {
        let p = 1024.0;
        assert_eq!(Family::HypercubeMulti.gamma(p), 1.0);
        assert_eq!(Family::HypercubeSingle.gamma(p), 10.0);
        assert_eq!(
            Family::HypercubeMulti.delta(p),
            Family::HypercubeSingle.delta(p)
        );
    }

    #[test]
    fn mesh_of_trees_bandwidth_is_sqrt() {
        assert_eq!(Family::MeshOfTrees.gamma(4096.0), 64.0);
        assert_eq!(Family::MeshOfTrees.delta(4096.0), 12.0);
    }

    #[test]
    fn observation1_composition() {
        let (g, l) = Family::predicted_logp(3.0, 10.0);
        assert_eq!((g, l), (3.0, 13.0));
    }
}

//! Binary hypercubes, Table 1 rows 2–3: multi-port `γ = 1, δ = log p`;
//! single-port `γ = δ = log p` (port discipline is a router option, see
//! [`crate::router::PortMode`]).

use crate::topology::Topology;

/// A `k`-dimensional binary hypercube with `2^k` nodes, all processors.
/// Routing fixes differing address bits from least to most significant.
#[derive(Clone, Debug)]
pub struct Hypercube {
    k: u32,
}

impl Hypercube {
    /// Build a `2^k`-node hypercube.
    pub fn new(k: u32) -> Hypercube {
        assert!((1..=30).contains(&k), "k in [1, 30]");
        Hypercube { k }
    }

    /// With at least `p` nodes.
    pub fn with_processors(p: usize) -> Hypercube {
        let k = (p.max(2) as f64).log2().ceil() as u32;
        Hypercube::new(k)
    }

    /// Dimension count `k = log2 p`.
    pub fn dims(&self) -> u32 {
        self.k
    }
}

impl Topology for Hypercube {
    fn name(&self) -> String {
        format!("hypercube(p={})", 1usize << self.k)
    }

    fn nodes(&self) -> usize {
        1usize << self.k
    }

    fn num_processors(&self) -> usize {
        self.nodes()
    }

    fn neighbors(&self, v: usize) -> Vec<usize> {
        (0..self.k).map(|b| v ^ (1usize << b)).collect()
    }

    fn diameter_bound(&self) -> usize {
        self.k as usize
    }

    fn route(&self, src: usize, dst: usize) -> Vec<usize> {
        let mut path = vec![src];
        let mut cur = src;
        let mut diff = cur ^ dst;
        while diff != 0 {
            let b = diff.trailing_zeros();
            cur ^= 1usize << b;
            diff &= diff - 1;
            path.push(cur);
        }
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::verify_topology;

    #[test]
    fn basic_shape() {
        let h = Hypercube::new(4);
        assert_eq!(h.nodes(), 16);
        assert_eq!(h.neighbors(0), vec![1, 2, 4, 8]);
        assert_eq!(h.diameter_bound(), 4);
    }

    #[test]
    fn route_length_is_hamming_distance() {
        let h = Hypercube::new(5);
        assert_eq!(h.route(0b00000, 0b10101).len() - 1, 3);
        assert_eq!(h.route(7, 7), vec![7]);
    }

    #[test]
    fn verify_small_cubes() {
        verify_topology(&Hypercube::new(3), 1);
        verify_topology(&Hypercube::new(6), 4);
    }

    #[test]
    fn with_processors_rounds_up() {
        assert_eq!(Hypercube::with_processors(17).nodes(), 32);
        assert_eq!(Hypercube::with_processors(16).nodes(), 16);
    }
}

//! E-SORT: the BSP sample-sort study (sorting by regular sampling).
//!
//! Runs the `scenarios/sort.scn` grid: per cell, deterministic per-lane
//! key generation, the 4-superstep sample-sort on the instrumented BSP
//! machine, the measured cost decomposed into `w + g·h + ℓ`, the
//! **1-optimality ratio** against the bucket-balanced ideal of the same
//! schedule, and the Theorem 2 cross-simulation onto LogP with its
//! protocol-constant envelope verdict.
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin exp_sort             # full grid
//! cargo run --release -p bvl-bench --bin exp_sort -- --smoke  # CI subset
//! ```
//!
//! The full run writes `BENCH_sort.json` with an acceptance block
//! (`scripts/check_bench_regression.sh` gate 6); the completed grid also
//! passes the sort lower-bound audit (cost ≥ balanced ideal, ratio ≥ 1,
//! cross-simulation ≥ native) before printing, on every front end.

use bvl_bench::{banner, labexp, obs, print_table, scn};

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    banner(if smoke {
        "E-SORT (smoke): sample-sort 1-optimality, small blocks"
    } else {
        "E-SORT: BSP sample-sort — 1-optimality and the Theorem 2 envelope"
    });

    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("sort", smoke);
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], None);
    eprintln!("[sweep] sort: {}", rep.summary());
    let rows = labexp::single_rows(rep);
    print_table(
        &[
            "p", "n", "cost", "ideal", "ratio", "work", "comm", "sync", "xsim", "native",
            "slowdown", "envelope", "sorted",
        ],
        &rows,
    );

    let num = |r: &[String], i: usize| -> f64 { r[i].parse().expect("numeric column") };
    let sorted_ok = rows.iter().all(|r| r[12] == "yes");
    let envelope_ok = rows.iter().all(|r| num(r, 8) <= num(r, 11));
    let worst_ratio = rows
        .iter()
        .map(|r| num(r, 4))
        .fold(f64::NEG_INFINITY, f64::max);
    let pass = sorted_ok && envelope_ok;

    obs::Summary::new("exp_sort")
        .kv("cells", rows.len())
        .kv("sorted_ok", sorted_ok)
        .kv("envelope_ok", envelope_ok)
        .f2("worst_ratio", worst_ratio)
        .kv("pass", pass)
        .emit();

    if !smoke {
        let mut json = String::from("{\n  \"experiment\": \"exp_sort\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"p\": {}, \"n\": {}, \"cost\": {}, \"ideal\": {}, \"ratio\": {}, \
                 \"work\": {}, \"comm\": {}, \"sync\": {}, \"xsim\": {}, \"native\": {}, \
                 \"slowdown\": {}, \"envelope\": {}, \"sorted\": {}}}{}\n",
                r[0],
                r[1],
                r[2],
                r[3],
                r[4],
                r[5],
                r[6],
                r[7],
                r[8],
                r[9],
                r[10],
                r[11],
                r[12] == "yes",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str(&format!(
            "  ],\n  \"acceptance\": {{\n    \"pass\": {pass},\n    \"cells\": {},\n    \
             \"sorted_ok\": {sorted_ok},\n    \"ratio_floor\": 1.0,\n    \
             \"worst_ratio\": {worst_ratio:.2},\n    \"envelope_ok\": {envelope_ok}\n  }}\n}}\n",
            rows.len()
        ));
        std::fs::write("BENCH_sort.json", &json).expect("write BENCH_sort.json");
        eprintln!("wrote BENCH_sort.json");
    }

    if !pass {
        eprintln!("exp_sort: acceptance failed (sorted_ok={sorted_ok} envelope_ok={envelope_ok})");
        std::process::exit(1);
    }
}

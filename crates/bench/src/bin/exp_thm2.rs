//! E-THM2: Theorem 2 — BSP-on-LogP superstep simulation with the
//! deterministic sorting-based router: measured slowdown vs `S(L, G, p, h)`.
//!
//! For random exact h-relations across an h sweep, the per-superstep cost
//! `T = w + T_synch + T_rout(h)` is measured phase by phase and divided by
//! the native BSP cost `w + G·h + L`. The paper predicts the quotient is
//! `O(log p)` for small h and flattens towards `O(1)` as `h` grows — the
//! crossover the `S` column exhibits.

use bvl_bench::{banner, f2, print_table};
use bvl_bsp::{FnProcess, Status};
use bvl_core::slowdown::theorem2_s;
use bvl_core::{
    route_deterministic, simulate_bsp_on_logp, RoutingStrategy, SortScheme, Theorem2Config,
};
use bvl_logp::LogpParams;
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, Payload, ProcId};

fn main() {
    banner("Theorem 2: deterministic h-relation routing, phase breakdown");
    let seeds = SeedStream::new(2024);
    let mut rows = Vec::new();
    for p in [16usize, 64] {
        let params = LogpParams::new(p, 16, 1, 2).unwrap();
        for h in [1usize, 2, 4, 8, 16, 32] {
            let mut rng = seeds.derive("rel", (p * 1000 + h) as u64);
            let rel = HRelation::random_exact(&mut rng, p, h);
            let rep = route_deterministic(params, &rel, SortScheme::Network, 7)
                .expect("routing succeeds");
            let native = (params.g * h as u64 + params.l) as f64;
            let s_meas = rep.total.get() as f64 / native;
            let s_pred = theorem2_s(&params, h as u64);
            rows.push(vec![
                format!("{p}"),
                format!("{h}"),
                format!("{}", rep.t_r.get()),
                format!("{}", rep.t_sort.get()),
                format!("{}", rep.t_s.get()),
                format!("{}", rep.t_cycles.get()),
                format!("{}", rep.total.get()),
                f2(native),
                f2(s_meas),
                f2(s_pred),
            ]);
        }
    }
    print_table(
        &[
            "p", "h", "t_r", "t_sort", "t_s", "t_cycles", "total", "Gh+L", "S meas", "S pred",
        ],
        &rows,
    );
    println!();
    println!("(S meas uses the Batcher network — an extra log p vs the AKS bound —");
    println!(" so the small-h rows sit above S pred by about that factor; the");
    println!(" downward trend in h, the paper's crossover, is the result.)");

    banner("Large-h regime: Columnsort (Cubesort role) makes the sort constant-round");
    let mut rows = Vec::new();
    let p = 8usize;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    for h in [98usize, 128, 256] {
        let mut rng = seeds.derive("big", h as u64);
        let rel = HRelation::random_exact(&mut rng, p, h);
        for scheme in [SortScheme::Network, SortScheme::Columnsort] {
            let rep = route_deterministic(params, &rel, scheme, 9).expect("routing succeeds");
            let native = (params.g * h as u64 + params.l) as f64;
            rows.push(vec![
                format!("{h}"),
                format!("{scheme:?}"),
                format!("{}", rep.sort_rounds),
                format!("{}", rep.t_sort.get()),
                format!("{}", rep.total.get()),
                f2(rep.total.get() as f64 / native),
            ]);
        }
    }
    print_table(
        &["h", "scheme", "comm rounds", "t_sort", "total", "S meas"],
        &rows,
    );

    banner("Full superstep simulation: one BSP workload under each routing strategy");
    let p = 16usize;
    let logp = LogpParams::new(p, 16, 1, 2).unwrap();
    let make = || -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    if ctx.superstep_index() > 0 {
                        while let Some(m) = ctx.recv() {
                            *acc += m.payload.expect_word();
                        }
                    }
                    if ctx.superstep_index() < 4 {
                        ctx.charge(20);
                        let me = ctx.me().index();
                        for k in 1..=3usize {
                            ctx.send(
                                ProcId::from((me * 5 + k * 7) % p),
                                Payload::word(k as u32, me as i64),
                            );
                        }
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let mut rows = Vec::new();
    for (name, strategy) in [
        ("offline", RoutingStrategy::Offline),
        ("randomized", RoutingStrategy::Randomized { slack: 2.0 }),
        ("deterministic", RoutingStrategy::Deterministic(SortScheme::Network)),
    ] {
        let rep = simulate_bsp_on_logp(
            logp,
            make(),
            Theorem2Config {
                strategy,
                ..Theorem2Config::default()
            },
        )
        .expect("superstep simulation");
        let s0 = &rep.supersteps[0];
        rows.push(vec![
            name.into(),
            format!("{}", rep.supersteps.len()),
            format!("{}", s0.h),
            format!("{}", s0.t_synch.get()),
            format!("{}", s0.t_rout.get()),
            format!("{}", rep.total.get()),
            format!("{}", rep.native_total.get()),
            f2(rep.slowdown()),
        ]);
    }
    print_table(
        &[
            "strategy", "supersteps", "h(0)", "t_synch(0)", "t_rout(0)", "total", "native",
            "slowdown",
        ],
        &rows,
    );
}

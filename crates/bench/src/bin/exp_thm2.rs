//! E-THM2: Theorem 2 — BSP-on-LogP superstep simulation with the
//! deterministic sorting-based router: measured slowdown vs `S(L, G, p, h)`.
//!
//! For random exact h-relations across an h sweep, the per-superstep cost
//! `T = w + T_synch + T_rout(h)` is measured phase by phase and divided by
//! the native BSP cost `w + G·h + L`. The paper predicts the quotient is
//! `O(log p)` for small h and flattens towards `O(1)` as `h` grows — the
//! crossover the `S` column exhibits.
//!
//! Every `(p, h)` cell is routed independently, so the tables are produced
//! through the [`bvl_bench::sweep`] harness; each job's random h-relation
//! comes from its own `(domain, index)`-derived RNG stream, which keeps the
//! tables byte-identical at any `RAYON_NUM_THREADS`.

use bvl_bench::sweep::{sweep, sweep_captured};
use bvl_bench::{banner, f2, obs, print_table};
use bvl_bsp::{FnProcess, Status};
use bvl_core::slowdown::theorem2_s;
use bvl_core::{
    route_deterministic, simulate_bsp_on_logp, RoutingStrategy, SortScheme, Theorem2Config,
};
use bvl_logp::LogpParams;
use bvl_model::{HRelation, Payload, ProcId};
use bvl_obs::CostReport;

fn main() {
    banner("Theorem 2: deterministic h-relation routing, phase breakdown");
    let mut cells = Vec::new();
    for p in [16usize, 64] {
        for h in [1usize, 2, 4, 8, 16, 32] {
            cells.push((p, h));
        }
    }
    // The (p=16, h=8) cell (index 3) is flagged: its routing phases are
    // captured as spans for the summary line and `--trace-out`.
    let (rep, cell_registry) =
        sweep_captured("thm2-cells", 2024, cells, Some(3), 16, |(p, h), mut job| {
            let params = LogpParams::new(p, 16, 1, 2).unwrap();
            let rel = HRelation::random_exact(&mut job.rng, p, h);
            let rep = route_deterministic(params, &rel, SortScheme::Network, &job.opts.seed(7))
                .expect("routing succeeds");
            let native = (params.g * h as u64 + params.l) as f64;
            let s_meas = rep.total.get() as f64 / native;
            let s_pred = theorem2_s(&params, h as u64);
            vec![
                format!("{p}"),
                format!("{h}"),
                format!("{}", rep.t_r.get()),
                format!("{}", rep.t_sort.get()),
                format!("{}", rep.t_s.get()),
                format!("{}", rep.t_cycles.get()),
                format!("{}", rep.total.get()),
                f2(native),
                f2(s_meas),
                f2(s_pred),
            ]
        });
    eprintln!("[sweep] thm2-cells: {}", rep.summary());
    print_table(
        &[
            "p", "h", "t_r", "t_sort", "t_s", "t_cycles", "total", "Gh+L", "S meas", "S pred",
        ],
        &rep.results,
    );
    println!();
    println!("(S meas uses the Batcher network — an extra log p vs the AKS bound —");
    println!(" so the small-h rows sit above S pred by about that factor; the");
    println!(" downward trend in h, the paper's crossover, is the result.)");

    banner("Large-h regime: Columnsort (Cubesort role) makes the sort constant-round");
    let p = 8usize;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    // One job per h; both schemes route the *same* relation, so they stay in
    // a single job sharing one RNG stream.
    let rep = sweep("thm2-big", 2024, vec![98usize, 128, 256], move |h, mut job| {
        let rel = HRelation::random_exact(&mut job.rng, p, h);
        let mut rows = Vec::new();
        let opts = job.opts.seed(9);
        for scheme in [SortScheme::Network, SortScheme::Columnsort] {
            let rep = route_deterministic(params, &rel, scheme, &opts).expect("routing succeeds");
            let native = (params.g * h as u64 + params.l) as f64;
            rows.push(vec![
                format!("{h}"),
                format!("{scheme:?}"),
                format!("{}", rep.sort_rounds),
                format!("{}", rep.t_sort.get()),
                format!("{}", rep.total.get()),
                f2(rep.total.get() as f64 / native),
            ]);
        }
        rows
    });
    eprintln!("[sweep] thm2-big: {}", rep.summary());
    let rows: Vec<Vec<String>> = rep.results.into_iter().flatten().collect();
    print_table(
        &["h", "scheme", "comm rounds", "t_sort", "total", "S meas"],
        &rows,
    );

    banner("Full superstep simulation: one BSP workload under each routing strategy");
    let p = 16usize;
    let logp = LogpParams::new(p, 16, 1, 2).unwrap();
    let make = move || -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    if ctx.superstep_index() > 0 {
                        while let Some(m) = ctx.recv() {
                            *acc += m.payload.expect_word();
                        }
                    }
                    if ctx.superstep_index() < 4 {
                        ctx.charge(20);
                        let me = ctx.me().index();
                        for k in 1..=3usize {
                            ctx.send(
                                ProcId::from((me * 5 + k * 7) % p),
                                Payload::word(k as u32, me as i64),
                            );
                        }
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let strategies = vec![
        ("offline", RoutingStrategy::Offline),
        ("randomized", RoutingStrategy::Randomized { slack: 2.0 }),
        ("deterministic", RoutingStrategy::Deterministic(SortScheme::Network)),
    ];
    // The deterministic strategy (index 2) is the flagged cell of this
    // sweep: its full superstep decomposition is captured as spans and its
    // measured phases are mapped onto the Theorem 2 cost terms.
    let (rep, strat_registry) = sweep_captured(
        "thm2-strategies",
        2024,
        strategies,
        Some(2),
        p,
        move |(name, strategy), job| {
            let rep = simulate_bsp_on_logp(logp, make(), Theorem2Config { strategy }, &job.opts)
                .expect("superstep simulation");
            let att = job
                .opts
                .registry
                .is_enabled()
                .then(|| rep.attribution(&logp, format!("thm2 {name}")));
            let s0 = &rep.supersteps[0];
            let row = vec![
                name.to_string(),
                format!("{}", rep.supersteps.len()),
                format!("{}", s0.h),
                format!("{}", s0.t_synch.get()),
                format!("{}", s0.t_rout.get()),
                format!("{}", rep.total.get()),
                format!("{}", rep.native_total.get()),
                f2(rep.slowdown()),
            ];
            (row, att)
        },
    );
    eprintln!("[sweep] thm2-strategies: {}", rep.summary());
    let mut flagged: Option<CostReport> = None;
    let rows: Vec<Vec<String>> = rep
        .results
        .into_iter()
        .map(|(row, att)| {
            flagged = att.or(flagged.take());
            row
        })
        .collect();
    print_table(
        &[
            "strategy", "supersteps", "h(0)", "t_synch(0)", "t_rout(0)", "total", "native",
            "slowdown",
        ],
        &rows,
    );

    let att = flagged.expect("flagged strategy produced an attribution");
    obs::summary(
        "exp_thm2",
        &[
            ("cell", "deterministic_p16".into()),
            ("makespan", att.makespan.get().to_string()),
            ("work", att.work.get().to_string()),
            ("comm", att.comm.get().to_string()),
            ("sync", att.sync.get().to_string()),
            ("other", att.other.get().to_string()),
            ("residual_frac", format!("{:.4}", att.residual_frac())),
            ("cell_spans", cell_registry.spans().len().to_string()),
            ("spans", strat_registry.spans().len().to_string()),
        ],
    );
    // `--trace-out` exports the flagged full-superstep run (the richest
    // span set: supersteps, CB split, sort rounds, routing cycles).
    obs::write_spans_if_requested(&strat_registry);
}

//! E-THM2: Theorem 2 — BSP-on-LogP superstep simulation with the
//! deterministic sorting-based router: measured slowdown vs `S(L, G, p, h)`.
//!
//! For random exact h-relations across an h sweep, the per-superstep cost
//! `T = w + T_synch + T_rout(h)` is measured phase by phase and divided by
//! the native BSP cost `w + G·h + L`. The paper predicts the quotient is
//! `O(log p)` for small h and flattens towards `O(1)` as `h` grows — the
//! crossover the `S` column exhibits.
//!
//! The grids are compiled from `scenarios/thm2.scn` (validated against
//! [`bvl_bench::labexp::thm2`] bit for bit) and run through the `bvl-lab`
//! scheduler (cached when `BVL_LAB_DIR` is set). The two span-exporting
//! cells — the `(16, 8)` phase breakdown and the deterministic strategy —
//! are *forced*: they recompute live so their registries carry real spans
//! for the SUMMARY line and `--trace-out`. Completed grids pass the
//! `(h-1)·G + L` routing lower-bound audit before printing.

use bvl_bench::labexp::{self, flat_rows, single_rows, thm2};
use bvl_bench::{banner, obs, print_table, scn};

fn main() {
    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("thm2", false);

    banner("Theorem 2: deterministic h-relation routing, phase breakdown");
    // The (p=16, h=8) cell (index 3) is flagged: its routing phases are
    // captured as spans for the summary line and `--trace-out`.
    let cell_registry = obs::capture_registry("exp_thm2", 0, thm2::FLAGGED_P);
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], Some(&cell_registry));
    eprintln!("[sweep] thm2-cells: {}", rep.summary());
    print_table(
        &[
            "p", "h", "t_r", "t_sort", "t_s", "t_cycles", "total", "Gh+L", "S meas", "S pred",
        ],
        &single_rows(rep),
    );
    println!();
    println!("(S meas uses the Batcher network — an extra log p vs the AKS bound —");
    println!(" so the small-h rows sit above S pred by about that factor; the");
    println!(" downward trend in h, the paper's crossover, is the result.)");

    banner("Large-h regime: Columnsort (Cubesort role) makes the sort constant-round");
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[1], None);
    eprintln!("[sweep] thm2-big: {}", rep.summary());
    print_table(
        &["h", "scheme", "comm rounds", "t_sort", "total", "S meas"],
        &flat_rows(rep),
    );

    banner("Full superstep simulation: one BSP workload under each routing strategy");
    // The deterministic strategy (index 2) is the flagged cell of this
    // sweep: its full superstep decomposition is captured as spans and its
    // measured phases are mapped onto the Theorem 2 cost terms.
    let strat_registry = obs::capture_registry("exp_thm2", 1, thm2::FLAGGED_P);
    let (rep, att) = scn::run_in_lab(&lab, &scenario.grids[2], Some(&strat_registry));
    eprintln!("[sweep] thm2-strategies: {}", rep.summary());
    print_table(
        &[
            "strategy", "supersteps", "h(0)", "t_synch(0)", "t_rout(0)", "total", "native",
            "slowdown",
        ],
        &single_rows(rep),
    );

    // At `--obs-tier off` the capture registries are disabled and the
    // flagged strategy runs unobserved — the SUMMARY line says so rather
    // than faking zeros.
    let summary = obs::Summary::new("exp_thm2").kv("cell", "deterministic_p16");
    match att {
        Some(att) => summary
            .kv("makespan", att.makespan.get())
            .kv("work", att.work.get())
            .kv("comm", att.comm.get())
            .kv("sync", att.sync.get())
            .kv("other", att.other.get())
            .f4("residual_frac", att.residual_frac())
            .kv("cell_spans", cell_registry.spans().len())
            .kv("spans", strat_registry.spans().len())
            .emit(),
        None => summary.kv("obs", "off").emit(),
    }
    // `--trace-out` exports the flagged full-superstep run (the richest
    // span set: supersteps, CB split, sort rounds, routing cycles).
    obs::write_spans_if_requested(&strat_registry);
}

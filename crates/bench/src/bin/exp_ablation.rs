//! E-ABL: design-choice ablations for the network substrate.
//!
//! Not a paper table — these isolate the router options DESIGN.md calls
//! out, confirming each mechanism matters for the Table 1 measurements:
//!
//! 1. **Valiant vs greedy** on adversarial permutations (bit-reversal on a
//!    mesh, matrix transpose): oblivious dimension-order routing congests
//!    queues at the bisection (visible in peak queue depth); routing via a
//!    random intermediate restores random-case behaviour at the price of
//!    ~2x path length (the reason \[32\]'s bounds need randomization).
//! 2. **Queue discipline** (FIFO vs farthest-first) on loaded relations.
//! 3. **Torus vs mesh** wraparound: the factor-2 diameter/bandwidth gain.

use bvl_bench::{banner, f2, obs, print_table};
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, Steps};
use bvl_net::{
    route_relation, Array, PathStrategy, QueueDiscipline, RouterConfig, Topology,
};
use bvl_obs::{Span, SpanKind};

fn main() {
    banner("Valiant vs greedy on adversarial permutations (2-dim mesh, p = 256)");
    let mesh = Array::mesh2d(16);
    let mut rows = Vec::new();
    let seeds = SeedStream::new(11);
    let cases: Vec<(&str, HRelation)> = vec![
        ("bit-reversal", HRelation::bit_reversal(256)),
        ("transpose", HRelation::transpose(16)),
        ("random perm", {
            let mut rng = seeds.derive("perm", 0);
            HRelation::random_permutation(&mut rng, 256)
        }),
    ];
    // Each (permutation, strategy) run becomes one synthesized Routing span
    // on a shared clock, for `--trace-out` and the summary line.
    let registry = obs::capture_registry("exp_ablation", 11, 256);
    let mut clock = Steps::ZERO;
    let mut bitrev = (0u64, 0usize);
    for (case, (name, rel)) in cases.iter().enumerate() {
        let greedy = route_relation(&mesh, rel, RouterConfig::default()).unwrap();
        let valiant = route_relation(
            &mesh,
            rel,
            RouterConfig {
                paths: PathStrategy::Valiant,
                seed: 3,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        for (k, time) in [greedy.time, valiant.time].into_iter().enumerate() {
            let end = clock + Steps(time);
            registry
                .span(Span::new(SpanKind::Routing, clock, end).at_index((2 * case + k) as u64));
            clock = end;
        }
        if case == 0 {
            bitrev = (greedy.time, greedy.max_queue);
        }
        rows.push(vec![
            (*name).into(),
            format!("{}", greedy.time),
            format!("{}", greedy.max_queue),
            format!("{}", valiant.time),
            format!("{}", valiant.max_queue),
            f2(greedy.time as f64 / valiant.time as f64),
        ]);
    }
    print_table(
        &["permutation", "greedy T", "greedy maxQ", "valiant T", "valiant maxQ", "greedy/valiant"],
        &rows,
    );
    println!();
    println!("(at this scale greedy's congestion shows up in queue depth, not");
    println!(" completion time — bit-reversal doubles greedy's peak queue while");
    println!(" Valiant's stays flat at the random-case level; Valiant pays ~2x");
    println!(" path length for that immunity, the classic trade-off)");

    banner("Queue discipline under load (mesh p = 256, exact h-relations)");
    let mut rows = Vec::new();
    for h in [4usize, 16] {
        let mut rng = seeds.derive("rel", h as u64);
        let rel = HRelation::random_exact(&mut rng, 256, h);
        let fifo = route_relation(&mesh, &rel, RouterConfig::default()).unwrap();
        let ff = route_relation(
            &mesh,
            &rel,
            RouterConfig {
                discipline: QueueDiscipline::FarthestFirst,
                ..RouterConfig::default()
            },
        )
        .unwrap();
        rows.push(vec![
            format!("{h}"),
            format!("{}", fifo.time),
            format!("{}", ff.time),
            f2(fifo.time as f64 / ff.time as f64),
        ]);
    }
    print_table(&["h", "FIFO T", "farthest-first T", "ratio"], &rows);

    banner("Torus wraparound vs mesh (1-dim ring p = 64, 2-dim p = 256)");
    let mut rows = Vec::new();
    for (name, mesh_t, torus_t) in [
        (
            "1-dim, p=64",
            Box::new(Array::chain(64)) as Box<dyn Topology>,
            Box::new(Array::torus(&[64])) as Box<dyn Topology>,
        ),
        (
            "2-dim, p=256",
            Box::new(Array::mesh2d(16)),
            Box::new(Array::torus(&[16, 16])),
        ),
    ] {
        let mut rng = seeds.derive("tor", name.len() as u64);
        let rel = HRelation::random_exact(&mut rng, mesh_t.num_processors(), 4);
        let m = route_relation(mesh_t.as_ref(), &rel, RouterConfig::default()).unwrap();
        let t = route_relation(torus_t.as_ref(), &rel, RouterConfig::default()).unwrap();
        rows.push(vec![
            name.into(),
            format!("{}", m.time),
            format!("{}", t.time),
            f2(m.time as f64 / t.time as f64),
        ]);
    }
    print_table(&["shape", "mesh T", "torus T", "mesh/torus"], &rows);
    println!();
    println!("(wraparound buys roughly the expected ~2x on both diameter- and");
    println!(" bandwidth-limited regimes)");

    obs::Summary::new("exp_ablation")
        .kv("cell", "bit_reversal_greedy_p256")
        .kv("makespan", bitrev.0)
        .kv("max_queue", bitrev.1)
        .kv("spans", registry.spans().len())
        .emit();
    obs::write_spans_if_requested(&registry);
}

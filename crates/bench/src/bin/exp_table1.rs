//! E-T1 / E-NETEQ: regenerate Table 1 and Observation 1 (§5).
//!
//! For every topology in Table 1, route random exact h-relations, fit
//! `T(h) = γ̂·h + δ̂`, and print the fitted parameters next to the paper's
//! asymptotic predictions (normalized so the ratio column shows the shape).
//! The second half evaluates Observation 1: the best attainable LogP
//! parameters track the BSP ones (`G* = Θ(g*)`, `L* = Θ(ℓ* + g*)`), shown
//! by measuring the 1-relation (ℓ-like) and saturation (g-like) regimes.
//!
//! Measuring one topology is a self-contained job (its own router, its own
//! seed), so each table fans its rows out through the [`bvl_bench::sweep`]
//! harness — this binary is the repo's heaviest, and its per-topology
//! measurements parallelize near-linearly.

use bvl_bench::sweep::sweep;
use bvl_bench::{banner, f2, obs, print_table};
use bvl_model::Steps;
use bvl_net::{
    measure_parameters, Array, Butterfly, Ccc, Family, Hypercube, MeasuredParams, MeshOfTrees,
    PortMode, RouterConfig, ShuffleExchange, Topology,
};
use bvl_obs::{Registry, Span, SpanKind};

/// Table 1 topologies, constructed per job (a `dyn Topology` is not `Send`,
/// so jobs carry this tag and build the network on the worker thread).
#[derive(Clone, Copy)]
enum Net {
    Array2d(usize),
    Array3d(usize),
    Hypercube(u32),
    Butterfly(u32),
    Ccc(u32),
    ShuffleExchange(u32),
    MeshOfTrees(usize),
}

impl Net {
    fn build(self) -> Box<dyn Topology> {
        match self {
            Net::Array2d(side) => Box::new(Array::mesh2d(side)),
            Net::Array3d(side) => Box::new(Array::new(&[side, side, side])),
            Net::Hypercube(k) => Box::new(Hypercube::new(k)),
            Net::Butterfly(k) => Box::new(Butterfly::new(k)),
            Net::Ccc(k) => Box::new(Ccc::new(k)),
            Net::ShuffleExchange(k) => Box::new(ShuffleExchange::new(k)),
            Net::MeshOfTrees(side) => Box::new(MeshOfTrees::new(side)),
        }
    }
}

const HS: [usize; 5] = [1, 2, 4, 8, 16];

fn measure(net: Net, mode: PortMode, seed: u64) -> MeasuredParams {
    let config = RouterConfig {
        mode,
        ..RouterConfig::default()
    };
    measure_parameters(&*net.build(), &HS, 3, seed, config)
}

fn measure_row(net: Net, family: Family, mode: PortMode) -> Vec<String> {
    let m = measure(net, mode, 42);
    let p = m.p as f64;
    let pred_g = family.gamma(p);
    let pred_d = family.delta(p);
    vec![
        family.label(),
        format!("{}", m.p),
        f2(m.gamma),
        f2(pred_g),
        f2(m.gamma / pred_g),
        f2(m.delta),
        f2(pred_d),
        f2(m.delta / pred_d),
        f2(m.r2),
    ]
}

fn main() {
    banner("Table 1: bandwidth gamma(p) and latency delta(p) per topology");
    println!("(measured = least-squares fit of completion time vs h over random");
    println!(" exact h-relations; predicted = Table 1 asymptotics, unnormalized;");
    println!(" the meas/pred ratio should be roughly constant within a family)");
    println!();

    let table1: Vec<(Net, Family, PortMode)> = vec![
        (Net::Array2d(16), Family::ArrayD(2), PortMode::Multi), // p = 256
        (Net::Array3d(6), Family::ArrayD(3), PortMode::Multi),  // p = 216
        (Net::Hypercube(8), Family::HypercubeMulti, PortMode::Multi), // p = 256
        (Net::Hypercube(8), Family::HypercubeSingle, PortMode::Single),
        (Net::Butterfly(5), Family::Butterfly, PortMode::Multi), // p = 192
        (Net::Ccc(5), Family::Ccc, PortMode::Multi),             // p = 160
        (Net::ShuffleExchange(8), Family::ShuffleExchange, PortMode::Multi), // p = 256
        (Net::MeshOfTrees(16), Family::MeshOfTrees, PortMode::Multi), // p = 256
    ];
    let rep = sweep("table1", 42, table1, |(net, family, mode), _job| {
        measure_row(net, family, mode)
    });
    eprintln!("[sweep] table1: {}", rep.summary());
    print_table(
        &[
            "topology", "p", "γ̂", "γ pred", "γ ratio", "δ̂", "δ pred", "δ ratio", "R²",
        ],
        &rep.results,
    );

    banner("Scaling check: gamma ratio stays bounded as p grows (hypercube vs mesh-of-trees)");
    let scaling: Vec<(Net, Family, &str)> = vec![
        (Net::Hypercube(4), Family::HypercubeMulti, "hypercube (multi)"),
        (Net::Hypercube(6), Family::HypercubeMulti, "hypercube (multi)"),
        (Net::Hypercube(8), Family::HypercubeMulti, "hypercube (multi)"),
        (Net::MeshOfTrees(4), Family::MeshOfTrees, "mesh-of-trees"),
        (Net::MeshOfTrees(8), Family::MeshOfTrees, "mesh-of-trees"),
        (Net::MeshOfTrees(16), Family::MeshOfTrees, "mesh-of-trees"),
    ];
    let rep = sweep("table1-scaling", 7, scaling, |(net, family, label), _job| {
        let m = measure(net, PortMode::Multi, 7);
        vec![
            label.into(),
            format!("{}", m.p),
            f2(m.gamma),
            f2(family.gamma(m.p as f64)),
            f2(m.delta),
            f2(family.delta(m.p as f64)),
        ]
    });
    eprintln!("[sweep] table1-scaling: {}", rep.summary());
    print_table(&["topology", "p", "γ̂", "γ pred", "δ̂", "δ pred"], &rep.results);

    banner("Observation 1: best-attainable LogP vs BSP parameters on the same network");
    println!("(g* ~ fitted slope, l* ~ fitted intercept; predicted G* = Θ(g*),");
    println!(" L* = Θ(l* + g*); LogP side measured by restricting to relations of");
    println!(" degree <= capacity — the stall-free LogP operating regime)");
    println!();
    let obs1: Vec<(Net, &str)> = vec![
        (Net::Hypercube(8), "hypercube(256)"),
        (Net::Array2d(16), "2d-array(256)"),
        (Net::MeshOfTrees(16), "mesh-of-trees(256)"),
    ];
    let rep = sweep("table1-obs1", 9, obs1, |(net, name), _job| {
        let m = measure(net, PortMode::Multi, 9);
        // LogP-side: fit over the small-h prefix only (h <= capacity-ish).
        let small: Vec<(f64, f64)> = m
            .samples
            .iter()
            .take(3)
            .map(|&(h, t)| (h as f64, t))
            .collect();
        let (g_logp, l_logp, _) = bvl_model::stats::linear_fit(&small);
        let (pred_g, pred_l) = Family::predicted_logp(m.gamma, m.delta);
        vec![
            name.into(),
            f2(m.gamma),
            f2(m.delta),
            f2(g_logp),
            f2(pred_g),
            f2(l_logp),
            f2(pred_l),
        ]
    });
    eprintln!("[sweep] table1-obs1: {}", rep.summary());
    print_table(
        &["network", "g*", "l*", "G* meas", "G* pred", "L* meas", "L* pred"],
        &rep.results,
    );

    // Flagged cell: a small hypercube measurement whose per-h routing times
    // are exported as back-to-back Routing spans (the raw samples behind the
    // gamma/delta fit).
    let m = measure(Net::Hypercube(6), PortMode::Multi, 11);
    let registry = Registry::enabled(m.p);
    let mut clock = Steps::ZERO;
    for &(h, t) in &m.samples {
        let end = clock + Steps(t.round() as u64);
        registry.span(Span::new(SpanKind::Routing, clock, end).at_index(h as u64));
        clock = end;
    }
    obs::summary(
        "exp_table1",
        &[
            ("cell", "hypercube_k6".into()),
            ("p", m.p.to_string()),
            ("gamma", f2(m.gamma)),
            ("delta", f2(m.delta)),
            ("r2", f2(m.r2)),
            ("samples", m.samples.len().to_string()),
        ],
    );
    obs::write_spans_if_requested(&registry);
}

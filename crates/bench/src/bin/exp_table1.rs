//! E-T1 / E-NETEQ: regenerate Table 1 and Observation 1 (§5).
//!
//! For every topology in Table 1, route random exact h-relations, fit
//! `T(h) = γ̂·h + δ̂`, and print the fitted parameters next to the paper's
//! asymptotic predictions (normalized so the ratio column shows the shape).
//! The second half evaluates Observation 1: the best attainable LogP
//! parameters track the BSP ones (`G* = Θ(g*)`, `L* = Θ(ℓ* + g*)`), shown
//! by measuring the 1-relation (ℓ-like) and saturation (g-like) regimes.

use bvl_bench::{banner, f2, print_table};
use bvl_net::{
    measure_parameters, Array, Butterfly, Ccc, Family, Hypercube, MeshOfTrees, PortMode,
    RouterConfig, ShuffleExchange, Topology,
};

fn measure_row(
    topo: &dyn Topology,
    family: Family,
    mode: PortMode,
    hs: &[usize],
) -> Vec<String> {
    let config = RouterConfig {
        mode,
        ..RouterConfig::default()
    };
    let m = measure_parameters(topo, hs, 3, 42, config);
    let p = m.p as f64;
    let pred_g = family.gamma(p);
    let pred_d = family.delta(p);
    vec![
        family.label(),
        format!("{}", m.p),
        f2(m.gamma),
        f2(pred_g),
        f2(m.gamma / pred_g),
        f2(m.delta),
        f2(pred_d),
        f2(m.delta / pred_d),
        f2(m.r2),
    ]
}

fn main() {
    banner("Table 1: bandwidth gamma(p) and latency delta(p) per topology");
    println!("(measured = least-squares fit of completion time vs h over random");
    println!(" exact h-relations; predicted = Table 1 asymptotics, unnormalized;");
    println!(" the meas/pred ratio should be roughly constant within a family)");
    println!();

    let hs = [1usize, 2, 4, 8, 16];
    let mut rows = Vec::new();

    let a2 = Array::mesh2d(16); // p = 256
    rows.push(measure_row(&a2, Family::ArrayD(2), PortMode::Multi, &hs));
    let a3 = Array::new(&[6, 6, 6]); // p = 216
    rows.push(measure_row(&a3, Family::ArrayD(3), PortMode::Multi, &hs));
    let hc = Hypercube::new(8); // p = 256
    rows.push(measure_row(&hc, Family::HypercubeMulti, PortMode::Multi, &hs));
    rows.push(measure_row(&hc, Family::HypercubeSingle, PortMode::Single, &hs));
    let bf = Butterfly::new(5); // p = 192
    rows.push(measure_row(&bf, Family::Butterfly, PortMode::Multi, &hs));
    let cc = Ccc::new(5); // p = 160
    rows.push(measure_row(&cc, Family::Ccc, PortMode::Multi, &hs));
    let se = ShuffleExchange::new(8); // p = 256
    rows.push(measure_row(&se, Family::ShuffleExchange, PortMode::Multi, &hs));
    let mt = MeshOfTrees::new(16); // p = 256
    rows.push(measure_row(&mt, Family::MeshOfTrees, PortMode::Multi, &hs));

    print_table(
        &[
            "topology", "p", "γ̂", "γ pred", "γ ratio", "δ̂", "δ pred", "δ ratio", "R²",
        ],
        &rows,
    );

    banner("Scaling check: gamma ratio stays bounded as p grows (hypercube vs mesh-of-trees)");
    let mut rows = Vec::new();
    for k in [4u32, 6, 8] {
        let hc = Hypercube::new(k);
        let m = measure_parameters(&hc, &hs, 3, 7, RouterConfig::default());
        rows.push(vec![
            "hypercube (multi)".into(),
            format!("{}", m.p),
            f2(m.gamma),
            f2(Family::HypercubeMulti.gamma(m.p as f64)),
            f2(m.delta),
            f2(Family::HypercubeMulti.delta(m.p as f64)),
        ]);
    }
    for side in [4usize, 8, 16] {
        let mt = MeshOfTrees::new(side);
        let m = measure_parameters(&mt, &hs, 3, 7, RouterConfig::default());
        rows.push(vec![
            "mesh-of-trees".into(),
            format!("{}", m.p),
            f2(m.gamma),
            f2(Family::MeshOfTrees.gamma(m.p as f64)),
            f2(m.delta),
            f2(Family::MeshOfTrees.delta(m.p as f64)),
        ]);
    }
    print_table(&["topology", "p", "γ̂", "γ pred", "δ̂", "δ pred"], &rows);

    banner("Observation 1: best-attainable LogP vs BSP parameters on the same network");
    println!("(g* ~ fitted slope, l* ~ fitted intercept; predicted G* = Θ(g*),");
    println!(" L* = Θ(l* + g*); LogP side measured by restricting to relations of");
    println!(" degree <= capacity — the stall-free LogP operating regime)");
    println!();
    let mut rows = Vec::new();
    for (name, m) in [
        (
            "hypercube(256)",
            measure_parameters(&hc, &hs, 3, 9, RouterConfig::default()),
        ),
        (
            "2d-array(256)",
            measure_parameters(&a2, &hs, 3, 9, RouterConfig::default()),
        ),
        (
            "mesh-of-trees(256)",
            measure_parameters(&mt, &hs, 3, 9, RouterConfig::default()),
        ),
    ] {
        // LogP-side: fit over the small-h prefix only (h <= capacity-ish).
        let small: Vec<(f64, f64)> = m
            .samples
            .iter()
            .take(3)
            .map(|&(h, t)| (h as f64, t))
            .collect();
        let (g_logp, l_logp, _) = bvl_model::stats::linear_fit(&small);
        let (pred_g, pred_l) = Family::predicted_logp(m.gamma, m.delta);
        rows.push(vec![
            name.into(),
            f2(m.gamma),
            f2(m.delta),
            f2(g_logp),
            f2(pred_g),
            f2(l_logp),
            f2(pred_l),
        ]);
    }
    print_table(
        &["network", "g*", "l*", "G* meas", "G* pred", "L* meas", "L* pred"],
        &rows,
    );
}

//! E-T1 / E-NETEQ: regenerate Table 1 and Observation 1 (§5).
//!
//! For every topology in Table 1, route random exact h-relations, fit
//! `T(h) = γ̂·h + δ̂`, and print the fitted parameters next to the paper's
//! asymptotic predictions (normalized so the ratio column shows the shape).
//! The second half evaluates Observation 1: the best attainable LogP
//! parameters track the BSP ones (`G* = Θ(g*)`, `L* = Θ(ℓ* + g*)`), shown
//! by measuring the 1-relation (ℓ-like) and saturation (g-like) regimes.
//!
//! The grids are compiled from `scenarios/table1.scn` (the declarative
//! scenario plane; `lab validate` proves the document lowers to the same
//! grids as [`bvl_bench::labexp::table1`], bit for bit) and run through
//! the `bvl-lab` scheduler: uncached by default (identical to the old
//! sweep path), incremental against the persistent result store when
//! `BVL_LAB_DIR` is set — this binary is the repo's heaviest, and a warm
//! store turns a full regeneration into a cache read. Stdout is
//! bit-identical either way; cache statistics go to stderr, and every
//! completed grid passes the lower-bound audit before printing.

use bvl_bench::labexp::{self, single_rows, table1};
use bvl_bench::{banner, obs, print_table, scn};

fn main() {
    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("table1", false);

    banner("Table 1: bandwidth gamma(p) and latency delta(p) per topology");
    println!("(measured = least-squares fit of completion time vs h over random");
    println!(" exact h-relations; predicted = Table 1 asymptotics, unnormalized;");
    println!(" the meas/pred ratio should be roughly constant within a family)");
    println!();

    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], None);
    eprintln!("[sweep] table1: {}", rep.summary());
    print_table(
        &[
            "topology", "p", "γ̂", "γ pred", "γ ratio", "δ̂", "δ pred", "δ ratio", "R²",
        ],
        &single_rows(rep),
    );

    banner("Scaling check: gamma ratio stays bounded as p grows (hypercube vs mesh-of-trees)");
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[1], None);
    eprintln!("[sweep] table1-scaling: {}", rep.summary());
    print_table(
        &["topology", "p", "γ̂", "γ pred", "δ̂", "δ pred"],
        &single_rows(rep),
    );

    banner("Observation 1: best-attainable LogP vs BSP parameters on the same network");
    println!("(g* ~ fitted slope, l* ~ fitted intercept; predicted G* = Θ(g*),");
    println!(" L* = Θ(l* + g*); LogP side measured by restricting to relations of");
    println!(" degree <= capacity — the stall-free LogP operating regime)");
    println!();
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[2], None);
    eprintln!("[sweep] table1-obs1: {}", rep.summary());
    print_table(
        &["network", "g*", "l*", "G* meas", "G* pred", "L* meas", "L* pred"],
        &single_rows(rep),
    );

    // The hypercube-k6 cell: its payload carries the raw (h, T(h)) samples,
    // so the per-h Routing spans and the SUMMARY line rebuild identically
    // whether the cell computed live or came back as a cache hit.
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[3], None);
    eprintln!("[sweep] table1-k6: {}", rep.summary());
    let rows = &rep.rows[0];
    let registry = table1::k6_registry(rows);
    let meta = &rows[0];
    obs::Summary::new("exp_table1")
        .kv("cell", &meta[0])
        .kv("p", &meta[1])
        .kv("gamma", &meta[2])
        .kv("delta", &meta[3])
        .kv("r2", &meta[4])
        .kv("samples", rows.len() - 1)
        .emit();
    obs::write_spans_if_requested(&registry);
}

//! E-THM1: Theorem 1 — LogP-on-BSP slowdown `O(1 + g/G + ℓ/L)`.
//!
//! Three stall-free LogP workloads (ring rounds, the Karp et al. optimal
//! broadcast schedule, staggered all-to-all) run natively on the LogP
//! machine and hosted on BSP machines whose `(g, ℓ)` are `1×, 2×, 4×` the
//! LogP `(G, L)`. The measured slowdown column should track (within engine
//! constants) the `1 + g/G + ℓ/L` bound, and be flat along the matched
//! diagonal — the paper's "substantial equivalence" claim.
//!
//! The grids are compiled from `scenarios/thm1.scn` (validated against
//! [`bvl_bench::labexp::thm1`] bit for bit) and run through the `bvl-lab`
//! scheduler (cached when `BVL_LAB_DIR` is set). The flagged attribution
//! cell is *forced*: it recomputes live on every run, because its enabled
//! registry feeds the cost-attribution SUMMARY and the optional
//! `--trace-out` export. Completed grids pass the Theorem 1 lower-bound
//! audit before printing.

use bvl_bench::labexp::{self, single_rows, thm1};
use bvl_bench::{banner, obs, print_table, scn};
use bvl_obs::Counter;

fn main() {
    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("thm1", false);
    banner("Theorem 1: slowdown of stall-free LogP hosted on BSP");

    // Cell 0 (ring, matched 1x/1x parameters) is the flagged cell: it runs
    // with this enabled registry, feeding the cost-attribution summary and
    // the optional `--trace-out` export; every other cell pays nothing.
    let captured = obs::capture_registry("exp_thm1", 0, thm1::reference_params().p);
    let (rep, att) = scn::run_in_lab(&lab, &scenario.grids[0], Some(&captured));
    eprintln!("[sweep] thm1-scalings: {}", rep.summary());
    print_table(
        &[
            "workload", "p", "g/G,l/L", "native", "hosted", "slowdown", "1+g/G+l/L", "ratio",
        ],
        &single_rows(rep),
    );

    banner("Matched parameters across machine sizes (slowdown should stay flat)");
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[1], None);
    eprintln!("[sweep] thm1-sizes: {}", rep.summary());
    print_table(
        &[
            "workload", "p", "g/G,l/L", "native", "hosted", "slowdown", "1+g/G+l/L", "ratio",
        ],
        &single_rows(rep),
    );

    // At `--obs-tier off` the capture registry is disabled, the flagged
    // cell runs unobserved, and there is no attribution — the SUMMARY line
    // says so rather than faking zeros.
    let summary = obs::Summary::new("exp_thm1").kv("cell", "ring_x8_1x/1x");
    match att {
        Some(att) => summary
            .kv("makespan", att.makespan.get())
            .kv("work", att.work.get())
            .kv("comm", att.comm.get())
            .kv("sync", att.sync.get())
            .f4("residual_frac", att.residual_frac())
            .kv("stall_episodes", captured.counter(Counter::StallEpisodes))
            .kv("spans", captured.spans().len())
            .emit(),
        None => summary.kv("obs", "off").emit(),
    }
    obs::write_spans_if_requested(&captured);
}

//! E-THM1: Theorem 1 — LogP-on-BSP slowdown `O(1 + g/G + ℓ/L)`.
//!
//! Three stall-free LogP workloads (ring rounds, the Karp et al. optimal
//! broadcast schedule, staggered all-to-all) run natively on the LogP
//! machine and hosted on BSP machines whose `(g, ℓ)` are `1×, 2×, 4×` the
//! LogP `(G, L)`. The measured slowdown column should track (within engine
//! constants) the `1 + g/G + ℓ/L` bound, and be flat along the matched
//! diagonal — the paper's "substantial equivalence" claim.
//!
//! Each (workload, machine, scaling) case is independent, so the rows are
//! produced through the [`bvl_bench::sweep`] harness — one job per row,
//! collected in table order.

use bvl_bench::sweep::{sweep, sweep_captured};
use bvl_bench::{banner, f2, obs, print_table};
use bvl_bsp::BspParams;
use bvl_core::slowdown::theorem1_bound;
use bvl_core::{simulate_logp_on_bsp, Theorem1Config};
use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use bvl_obs::{CostReport, Counter};

/// A workload family, instantiable any number of times (the native and the
/// hosted run each need a fresh copy of the scripts).
#[derive(Clone, Copy)]
enum Workload {
    Ring { p: usize, rounds: usize },
    AllToAll { p: usize },
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Ring { .. } => "ring x8",
            Workload::AllToAll { .. } => "all-to-all",
        }
    }

    fn build(self) -> Vec<Script> {
        match self {
            Workload::Ring { p, rounds } => (0..p)
                .map(|i| {
                    let mut ops = Vec::new();
                    for r in 0..rounds {
                        ops.push(Op::Send {
                            dst: ProcId(((i + 1) % p) as u32),
                            payload: Payload::word(r as u32, i as i64),
                        });
                        ops.push(Op::Recv);
                    }
                    Script::new(ops)
                })
                .collect(),
            Workload::AllToAll { p } => (0..p)
                .map(|me| {
                    let mut ops = Vec::new();
                    for t in 0..p - 1 {
                        ops.push(Op::Send {
                            dst: ProcId(((me + 1 + t) % p) as u32),
                            payload: Payload::word(0, me as i64),
                        });
                    }
                    ops.extend(std::iter::repeat_n(Op::Recv, p - 1));
                    Script::new(ops)
                })
                .collect(),
        }
    }
}

/// One table row: a workload on a LogP machine hosted by a BSP machine with
/// `(g, ℓ) = (factor_g · G, factor_l · L)`.
#[derive(Clone, Copy)]
struct Case {
    logp: LogpParams,
    factor_g: u64,
    factor_l: u64,
    workload: Workload,
}

fn run_case(case: Case, opts: &RunOptions) -> (Vec<String>, Option<CostReport>) {
    let Case {
        logp,
        factor_g,
        factor_l,
        workload,
    } = case;
    let mut native = LogpMachine::with_config(logp, LogpConfig::stall_free(), workload.build());
    let native_time = native.run().expect("native run").makespan;
    let bsp = BspParams::new(logp.p, logp.g * factor_g, logp.l * factor_l).unwrap();
    let rep = simulate_logp_on_bsp(logp, bsp, workload.build(), Theorem1Config::default(), opts)
        .expect("hosted run");
    let slowdown = rep.bsp.cost.get() as f64 / native_time.get() as f64;
    let bound = theorem1_bound(bsp.g, bsp.l, logp.g, logp.l);
    let attributed = opts
        .registry
        .is_enabled()
        .then(|| rep.attribution(&bsp, format!("thm1 {} {factor_g}x/{factor_l}x", workload.name())));
    let row = vec![
        workload.name().into(),
        format!("{}", logp.p),
        format!("{}x/{}x", factor_g, factor_l),
        format!("{}", native_time.get()),
        format!("{}", rep.bsp.cost.get()),
        f2(slowdown),
        f2(bound),
        f2(slowdown / bound),
    ];
    (row, attributed)
}

fn main() {
    banner("Theorem 1: slowdown of stall-free LogP hosted on BSP");
    let logp = LogpParams::new(16, 16, 1, 4).unwrap();
    let mut cases = Vec::new();
    for (fg, fl) in [(1u64, 1u64), (2, 1), (1, 2), (2, 2), (4, 4)] {
        cases.push(Case {
            logp,
            factor_g: fg,
            factor_l: fl,
            workload: Workload::Ring { p: 16, rounds: 8 },
        });
    }
    for (fg, fl) in [(1u64, 1u64), (2, 2)] {
        cases.push(Case {
            logp,
            factor_g: fg,
            factor_l: fl,
            workload: Workload::AllToAll { p: 16 },
        });
    }
    // Cell 0 (ring, matched 1x/1x parameters) is the flagged cell: it runs
    // with an enabled registry, feeding the cost-attribution summary and the
    // optional `--trace-out` export; every other cell pays nothing.
    let (rep, registry) =
        sweep_captured("thm1-scalings", 1996, cases, Some(0), logp.p, |case, job| {
            run_case(case, &job.opts)
        });
    eprintln!("[sweep] thm1-scalings: {}", rep.summary());
    let mut flagged: Option<CostReport> = None;
    let rows: Vec<Vec<String>> = rep
        .results
        .into_iter()
        .map(|(row, att)| {
            flagged = att.or(flagged.take());
            row
        })
        .collect();
    print_table(
        &[
            "workload", "p", "g/G,l/L", "native", "hosted", "slowdown", "1+g/G+l/L", "ratio",
        ],
        &rows,
    );

    banner("Matched parameters across machine sizes (slowdown should stay flat)");
    let cases: Vec<Case> = [4usize, 8, 16, 32, 64]
        .into_iter()
        .map(|p| Case {
            logp: LogpParams::new(p, 16, 1, 4).unwrap(),
            factor_g: 1,
            factor_l: 1,
            workload: Workload::Ring { p, rounds: 8 },
        })
        .collect();
    let rep = sweep("thm1-sizes", 1996, cases, |case, job| run_case(case, &job.opts).0);
    eprintln!("[sweep] thm1-sizes: {}", rep.summary());
    print_table(
        &[
            "workload", "p", "g/G,l/L", "native", "hosted", "slowdown", "1+g/G+l/L", "ratio",
        ],
        &rep.results,
    );

    let att = flagged.expect("flagged cell produced an attribution");
    obs::summary(
        "exp_thm1",
        &[
            ("cell", "ring_x8_1x/1x".into()),
            ("makespan", att.makespan.get().to_string()),
            ("work", att.work.get().to_string()),
            ("comm", att.comm.get().to_string()),
            ("sync", att.sync.get().to_string()),
            ("residual_frac", format!("{:.4}", att.residual_frac())),
            (
                "stall_episodes",
                registry.counter(Counter::StallEpisodes).to_string(),
            ),
            ("spans", registry.spans().len().to_string()),
        ],
    );
    obs::write_spans_if_requested(&registry);
}

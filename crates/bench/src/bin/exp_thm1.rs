//! E-THM1: Theorem 1 — LogP-on-BSP slowdown `O(1 + g/G + ℓ/L)`.
//!
//! Three stall-free LogP workloads (ring rounds, the Karp et al. optimal
//! broadcast schedule, staggered all-to-all) run natively on the LogP
//! machine and hosted on BSP machines whose `(g, ℓ)` are `1×, 2×, 4×` the
//! LogP `(G, L)`. The measured slowdown column should track (within engine
//! constants) the `1 + g/G + ℓ/L` bound, and be flat along the matched
//! diagonal — the paper's "substantial equivalence" claim.

use bvl_bench::{banner, f2, print_table};
use bvl_bsp::BspParams;
use bvl_core::slowdown::theorem1_bound;
use bvl_core::{simulate_logp_on_bsp, Theorem1Config};
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};

fn ring_workload(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn alltoall_workload(p: usize) -> Vec<Script> {
    (0..p)
        .map(|me| {
            let mut ops = Vec::new();
            for t in 0..p - 1 {
                ops.push(Op::Send {
                    dst: ProcId(((me + 1 + t) % p) as u32),
                    payload: Payload::word(0, me as i64),
                });
            }
            ops.extend(std::iter::repeat(Op::Recv).take(p - 1));
            Script::new(ops)
        })
        .collect()
}

fn run_case(
    name: &str,
    logp: LogpParams,
    factor_g: u64,
    factor_l: u64,
    build: &dyn Fn() -> Vec<Script>,
) -> Vec<String> {
    let mut native = LogpMachine::with_config(logp, LogpConfig::stall_free(), build());
    let native_time = native.run().expect("native run").makespan;
    let bsp = BspParams::new(logp.p, logp.g * factor_g, logp.l * factor_l).unwrap();
    let rep = simulate_logp_on_bsp(logp, bsp, build(), Theorem1Config::default())
        .expect("hosted run");
    let slowdown = rep.bsp.cost.get() as f64 / native_time.get() as f64;
    let bound = theorem1_bound(bsp.g, bsp.l, logp.g, logp.l);
    vec![
        name.into(),
        format!("{}", logp.p),
        format!("{}x/{}x", factor_g, factor_l),
        format!("{}", native_time.get()),
        format!("{}", rep.bsp.cost.get()),
        f2(slowdown),
        f2(bound),
        f2(slowdown / bound),
    ]
}

fn main() {
    banner("Theorem 1: slowdown of stall-free LogP hosted on BSP");
    let logp = LogpParams::new(16, 16, 1, 4).unwrap();
    let mut rows = Vec::new();
    for (fg, fl) in [(1u64, 1u64), (2, 1), (1, 2), (2, 2), (4, 4)] {
        rows.push(run_case("ring x8", logp, fg, fl, &|| ring_workload(16, 8)));
    }
    for (fg, fl) in [(1u64, 1u64), (2, 2)] {
        rows.push(run_case("all-to-all", logp, fg, fl, &|| alltoall_workload(16)));
    }
    print_table(
        &[
            "workload", "p", "g/G,l/L", "native", "hosted", "slowdown", "1+g/G+l/L", "ratio",
        ],
        &rows,
    );

    banner("Matched parameters across machine sizes (slowdown should stay flat)");
    let mut rows = Vec::new();
    for p in [4usize, 8, 16, 32, 64] {
        let logp = LogpParams::new(p, 16, 1, 4).unwrap();
        rows.push(run_case("ring x8", logp, 1, 1, &|| ring_workload(p, 8)));
    }
    print_table(
        &[
            "workload", "p", "g/G,l/L", "native", "hosted", "slowdown", "1+g/G+l/L", "ratio",
        ],
        &rows,
    );
}

//! Open-loop service benchmark → `BENCH_serve.json`.
//!
//! Proves the nonblocking front end (ISSUE 9) on four axes, each recorded
//! in the output JSON and folded into a single acceptance block:
//!
//! * **correctness** — a cold `POST /run` computes every cell of the
//!   `thm2` smoke grid, a warm rerun is all hits, and the payloads agree.
//! * **concurrency** — `clients` connections (1000 full, 64 `--smoke`)
//!   are held open *simultaneously*; while all of them are parked the
//!   server still answers a `/metrics` probe, whose `serve.active` count
//!   is the proof the event loop really has that many registered
//!   connections. Then every parked client issues its request and must
//!   get a complete response.
//! * **open-loop latency** — a Poisson arrival schedule (seeded ChaCha8,
//!   fixed rate) is replayed by a sender pool; latency is measured from
//!   the *scheduled* arrival, not the send, so coordinated omission
//!   counts against the server. The mix is GET-heavy with a warm
//!   `POST /run` every tenth request.
//! * **keep-alive / pipelining** — the same Poisson methodology replayed
//!   over persistent HTTP/1.1 connections (one per sender, reused across
//!   the whole phase, with periodic two-request pipelined bursts); its
//!   p99 is recorded as `p99_pipelined_ms` and gated like the open-loop
//!   p99.
//! * **replication** — the live store is synced to a follower, digests
//!   must match; a torn tail is injected into the follower and a resync
//!   must repair it back to bit-identical.
//!
//! Wall-clock gates are same-host relative and sized for a single-vCPU
//! reference host: p99 under `P99_LIMIT_MS`, error rate under 1%. Run via:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin bench_serve [-- --smoke]
//! ```

use bvl_bench::{labexp, scn};
use bvl_lab::{serve, store_digest, sync_store, CodeFingerprint, OnStale, Service, ShardedStore};
use bvl_obs::Registry;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::{Duration, Instant};

/// Store shards for the served store: >1 so the serving path exercises
/// digest routing, not just the flat legacy layout.
const SHARDS: usize = 2;
/// Worker threads behind the event loop (the reference host is 1 vCPU;
/// workers only run `POST /run` bodies, GETs are answered on the loop).
const WORKERS: usize = 2;
/// p99 acceptance ceiling, scheduled-arrival to last-byte, milliseconds.
const P99_LIMIT_MS: f64 = 750.0;
/// Acceptance ceiling on the error rate across both load phases.
const ERROR_RATE_LIMIT: f64 = 0.01;

struct Config {
    /// Simultaneously-open connections in the concurrency phase.
    clients: usize,
    /// Poisson arrival rate, requests per second.
    rate_hz: f64,
    /// Open-loop phase length, seconds.
    seconds: f64,
    /// Sender threads replaying the arrival schedule.
    senders: usize,
}

impl Config {
    fn new(smoke: bool) -> Config {
        if smoke {
            Config { clients: 64, rate_hz: 40.0, seconds: 2.0, senders: 8 }
        } else {
            Config { clients: 1000, rate_hz: 100.0, seconds: 6.0, senders: 16 }
        }
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-bench-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One HTTP/1.1 request over a fresh connection. `Ok` carries (status,
/// body); any transport failure or truncated response is an `Err`.
fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| format!("timeout: {e}"))?;
    send_and_read(stream, method, path, body)
}

fn send_and_read(
    mut stream: TcpStream,
    method: &str,
    path: &str,
    body: &str,
) -> Result<(u16, String), String> {
    let req = format!(
        "{method} {path} HTTP/1.1\r\nHost: lab\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(req.as_bytes()).map_err(|e| format!("send: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("recv: {e}"))?;
    let status: u16 = response
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line in {response:.60?}"))?;
    let payload = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .ok_or_else(|| "truncated response (no header/body split)".to_string())?;
    Ok((status, payload))
}

/// Pull the integer following `"needle":` out of a JSON body. Good enough
/// for the flat counters this harness reconciles.
fn json_u64(body: &str, needle: &str) -> Option<u64> {
    let at = body.find(&format!("\"{needle}\":"))?;
    let rest = &body[at + needle.len() + 3..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Phase 1: cold run computes, warm run hits, payloads agree.
fn correctness_phase(addr: SocketAddr) -> (u64, u64) {
    let (status, cold) =
        request(addr, "POST", "/run", "{\"exp\":\"thm2\",\"smoke\":true}").expect("cold run");
    assert_eq!(status, 200, "cold POST /run failed: {cold}");
    let misses = json_u64(&cold, "misses").expect("cold misses");
    assert!(misses > 0, "cold run computed nothing: {cold}");
    let (status, warm) =
        request(addr, "POST", "/run", "{\"exp\":\"thm2\",\"smoke\":true}").expect("warm run");
    assert_eq!(status, 200, "warm POST /run failed: {warm}");
    let hits = json_u64(&warm, "hits").expect("warm hits");
    assert_eq!(hits, misses, "warm run did not hit every cold cell: {warm}");
    (misses, hits)
}

/// Phase 2: hold `clients` connections open at once, prove the server
/// still answers, then drain them all. Returns (active observed by the
/// mid-phase probe, drained OK, errors).
fn concurrency_phase(addr: SocketAddr, clients: usize) -> (u64, u64, u64) {
    let connected = Barrier::new(clients + 1);
    let probed = Barrier::new(clients + 1);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let mut active = 0u64;
    std::thread::scope(|scope| {
        for i in 0..clients {
            let (connected, probed, ok, errors) = (&connected, &probed, &ok, &errors);
            scope.spawn(move || {
                let stream = TcpStream::connect(addr);
                connected.wait();
                probed.wait();
                let outcome = stream
                    .map_err(|e| format!("connect: {e}"))
                    .and_then(|s| {
                        s.set_read_timeout(Some(Duration::from_secs(60))).ok();
                        let path = if i % 2 == 0 { "/status" } else { "/metrics" };
                        send_and_read(s, "GET", path, "")
                    });
                match outcome {
                    Ok((200, _)) => drop(ok.fetch_add(1, Ordering::Relaxed)),
                    _ => drop(errors.fetch_add(1, Ordering::Relaxed)),
                }
            });
        }
        connected.wait();
        // Everyone is connected and parked. The kernel has completed the
        // handshakes but the event loop drains the accept backlog at its
        // own pace (SYN retransmits under a full backlog take seconds),
        // so poll `/metrics` — each probe also proves the loop is still
        // responsive — until every parked connection is registered. The
        // deadline stays well inside the server's 10 s idle reaper:
        // parked clients must issue their request before they are
        // legitimately reaped as idle.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            std::thread::sleep(Duration::from_millis(100));
            let (status, body) = request(addr, "GET", "/metrics", "").expect("mid-phase probe");
            assert_eq!(status, 200, "server unresponsive under {clients} parked conns");
            // The probe's own connection is part of `active`; discount
            // it. Track the high-water mark: what matters is how many
            // the loop demonstrably held at once.
            let now = json_u64(&body, "active").expect("serve.active").saturating_sub(1);
            active = active.max(now);
            if active >= clients as u64 || Instant::now() > deadline {
                break;
            }
        }
        probed.wait();
    });
    (active, ok.into_inner(), errors.into_inner())
}

/// A persistent keep-alive connection: requests are framed by
/// `Content-Length` on both sides, responses are read off the same
/// stream (leftover pipelined bytes kept between reads), and any
/// transport error drops the stream so the next request reconnects.
struct PersistentConn {
    addr: SocketAddr,
    stream: Option<TcpStream>,
    buf: Vec<u8>,
}

impl PersistentConn {
    fn new(addr: SocketAddr) -> PersistentConn {
        PersistentConn { addr, stream: None, buf: Vec::new() }
    }

    fn frame(method: &str, path: &str, body: &str) -> Vec<u8> {
        // No `Connection: close`: HTTP/1.1 keep-alive by default.
        format!(
            "{method} {path} HTTP/1.1\r\nHost: lab\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .into_bytes()
    }

    fn ensure(&mut self) -> Result<&mut TcpStream, String> {
        if self.stream.is_none() {
            let s = TcpStream::connect(self.addr).map_err(|e| format!("connect: {e}"))?;
            s.set_read_timeout(Some(Duration::from_secs(30)))
                .map_err(|e| format!("timeout: {e}"))?;
            self.stream = Some(s);
            self.buf.clear();
        }
        Ok(self.stream.as_mut().expect("just ensured"))
    }

    /// One request-response exchange on the live connection.
    fn request(&mut self, method: &str, path: &str, body: &str) -> Result<(u16, String), String> {
        let result = self.ensure().and_then(|s| {
            s.write_all(&Self::frame(method, path, body))
                .map_err(|e| format!("send: {e}"))
        });
        let result = result.and_then(|()| self.recv());
        if result.is_err() {
            self.stream = None; // reconnect on the next request
        }
        result
    }

    /// Two requests written back-to-back (true pipelining), then both
    /// responses read in order; errors if either is not a 200.
    fn burst2(&mut self, first: &str, second: &str) -> Result<(u16, String), String> {
        let mut bytes = Self::frame("GET", first, "");
        bytes.extend(Self::frame("GET", second, ""));
        let result = self
            .ensure()
            .and_then(|s| s.write_all(&bytes).map_err(|e| format!("send: {e}")))
            .and_then(|()| self.recv())
            .and_then(|(status, _)| {
                if status != 200 {
                    return Err(format!("pipelined first response: {status}"));
                }
                self.recv()
            });
        if result.is_err() {
            self.stream = None;
        }
        result
    }

    /// Read one `Content-Length`-framed response off the stream.
    fn recv(&mut self) -> Result<(u16, String), String> {
        let stream = self.stream.as_mut().ok_or("no stream")?;
        let mut chunk = [0u8; 16 * 1024];
        let head_end = loop {
            if let Some(i) = self.buf.windows(4).position(|w| w == b"\r\n\r\n") {
                break i + 4;
            }
            match stream.read(&mut chunk) {
                Ok(0) => return Err("eof before response head".into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(format!("recv head: {e}")),
            }
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        let status: u16 = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed status line in {head:.60?}"))?;
        let len: usize = head
            .lines()
            .find_map(|l| {
                l.to_ascii_lowercase()
                    .strip_prefix("content-length:")
                    .map(|v| v.trim().to_string())
            })
            .and_then(|v| v.parse().ok())
            .ok_or("response without content-length")?;
        while self.buf.len() < head_end + len {
            match stream.read(&mut chunk) {
                Ok(0) => return Err("eof mid-body".into()),
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => return Err(format!("recv body: {e}")),
            }
        }
        let body = String::from_utf8_lossy(&self.buf[head_end..head_end + len]).into_owned();
        self.buf.drain(..head_end + len);
        Ok((status, body))
    }
}

#[derive(Clone, Copy)]
struct LoadOutcome {
    requests: u64,
    ok: u64,
    errors: u64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    elapsed_s: f64,
}

/// A seeded Poisson arrival schedule, fixed up front.
fn poisson_arrivals(seed: u64, cfg: &Config) -> Vec<Duration> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut arrivals = Vec::new();
    let mut t = 0.0f64;
    while t < cfg.seconds {
        // The vendored rand has no float ranges; an integer draw mapped
        // into (0, 1] seeds the exponential just as well.
        let u = f64::from(rng.gen_range(1..=u32::MAX)) / f64::from(u32::MAX);
        t += -u.ln() / cfg.rate_hz;
        arrivals.push(Duration::from_secs_f64(t));
    }
    arrivals
}

/// Phase 3: open-loop Poisson replay. Arrival times are fixed up front;
/// senders sleep until each scheduled instant and measure completion
/// against it, so server-side queueing (and sender lateness) both count.
fn open_loop_phase(addr: SocketAddr, cfg: &Config) -> LoadOutcome {
    let arrivals = poisson_arrivals(0x5e12_1996, cfg);
    let next = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(arrivals.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.senders {
            let (next, ok, errors, latencies, arrivals) =
                (&next, &ok, &errors, &latencies, &arrivals);
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some(&at) = arrivals.get(i) else { break };
                if let Some(wait) = at.checked_sub(start.elapsed()) {
                    std::thread::sleep(wait);
                }
                let outcome = match i % 10 {
                    9 => request(addr, "POST", "/run", "{\"exp\":\"thm2\",\"smoke\":true}"),
                    7 | 8 => request(addr, "GET", "/cells?exp=thm2", ""),
                    1 => request(addr, "GET", "/metrics", ""),
                    _ => request(addr, "GET", "/status", ""),
                };
                let latency_ms = (start.elapsed().saturating_sub(at)).as_secs_f64() * 1e3;
                match outcome {
                    Ok((200, _)) => {
                        ok.fetch_add(1, Ordering::Relaxed);
                        latencies.lock().unwrap().push(latency_ms);
                    }
                    _ => drop(errors.fetch_add(1, Ordering::Relaxed)),
                }
            });
        }
    });
    outcome(
        arrivals.len() as u64,
        ok.into_inner(),
        errors.into_inner(),
        latencies.into_inner().unwrap(),
        start.elapsed().as_secs_f64(),
    )
}

/// Phase 3b: the same open-loop methodology replayed over *persistent*
/// connections. Each sender keeps one keep-alive connection for the whole
/// phase (reconnecting only after a transport error), so connection setup
/// drops out of the path and the server's keep-alive machinery — drain,
/// re-arm, buffered-byte dispatch — carries the load. Every 10th arrival
/// is a warm `POST /run` through the worker pool on the same connection,
/// and every 10th is a two-request pipelined burst.
fn pipelined_phase(addr: SocketAddr, cfg: &Config) -> LoadOutcome {
    let arrivals = poisson_arrivals(0x5e12_1997, cfg);
    let next = AtomicUsize::new(0);
    let ok = AtomicU64::new(0);
    let errors = AtomicU64::new(0);
    let latencies: Mutex<Vec<f64>> = Mutex::new(Vec::with_capacity(arrivals.len()));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for _ in 0..cfg.senders {
            let (next, ok, errors, latencies, arrivals) =
                (&next, &ok, &errors, &latencies, &arrivals);
            scope.spawn(move || {
                let mut conn = PersistentConn::new(addr);
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(&at) = arrivals.get(i) else { break };
                    if let Some(wait) = at.checked_sub(start.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    let outcome = match i % 10 {
                        9 => conn.request("POST", "/run", "{\"exp\":\"thm2\",\"smoke\":true}"),
                        5 => conn.burst2("/status", "/metrics"),
                        7 | 8 => conn.request("GET", "/cells?exp=thm2", ""),
                        1 => conn.request("GET", "/metrics", ""),
                        _ => conn.request("GET", "/status", ""),
                    };
                    let latency_ms = (start.elapsed().saturating_sub(at)).as_secs_f64() * 1e3;
                    match outcome {
                        Ok((200, _)) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            latencies.lock().unwrap().push(latency_ms);
                        }
                        _ => drop(errors.fetch_add(1, Ordering::Relaxed)),
                    }
                }
            });
        }
    });
    outcome(
        arrivals.len() as u64,
        ok.into_inner(),
        errors.into_inner(),
        latencies.into_inner().unwrap(),
        start.elapsed().as_secs_f64(),
    )
}

fn outcome(
    requests: u64,
    ok: u64,
    errors: u64,
    mut lat: Vec<f64>,
    elapsed_s: f64,
) -> LoadOutcome {
    lat.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| -> f64 {
        if lat.is_empty() {
            return f64::NAN;
        }
        lat[((lat.len() - 1) as f64 * q) as usize]
    };
    LoadOutcome {
        requests,
        ok,
        errors,
        p50_ms: pct(0.50),
        p95_ms: pct(0.95),
        p99_ms: pct(0.99),
        elapsed_s,
    }
}

/// Phase 4: replicate the warm store, then tear the follower's newest
/// segment and prove a resync repairs it back to bit-identical.
fn replication_phase(leader: &Path, follower: &Path) -> (bool, bool, u64) {
    let _ = std::fs::remove_dir_all(follower);
    sync_store(leader, follower).expect("initial sync");
    let initial =
        store_digest(leader).expect("leader digest") == store_digest(follower).expect("follower");

    // Torn tail: append half a record's worth of garbage to the newest
    // follower segment, as a crash mid-append would leave behind.
    let mut segs: Vec<PathBuf> = Vec::new();
    for shard in 0..SHARDS {
        let dir = follower.join(format!("shard-{shard:03}"));
        if let Ok(rd) = std::fs::read_dir(&dir) {
            for e in rd.flatten() {
                let p = e.path();
                if p.extension().is_some_and(|x| x == "jsonl") {
                    segs.push(p);
                }
            }
        }
    }
    segs.sort();
    let victim = segs.last().expect("follower has segments");
    let mut bytes = std::fs::read(victim).expect("read victim");
    bytes.extend_from_slice(b"{\"key\":\"torn-mid-append");
    std::fs::write(victim, &bytes).expect("tear victim");

    let reports = sync_store(leader, follower).expect("resync");
    let repaired: u64 = reports.iter().map(|r| r.repaired_bytes).sum();
    let healed =
        store_digest(leader).expect("leader digest") == store_digest(follower).expect("follower");
    (initial, healed, repaired)
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let cfg = Config::new(smoke);
    let dir = tmpdir("store");
    let follower = tmpdir("follower");

    let store = ShardedStore::open(&dir, SHARDS, CodeFingerprint::current(), OnStale::Invalidate)
        .expect("open store");
    let service = std::sync::Arc::new(
        Service::new(store, Registry::enabled(1), labexp::experiments())
            .with_scenario_runner(Box::new(scn::Runner)),
    );
    let server = serve("127.0.0.1:0", std::sync::Arc::clone(&service), WORKERS).expect("bind");
    let addr = server.addr();
    eprintln!(
        "bench_serve: {} on {addr}, {SHARDS} shard(s), {WORKERS} worker(s)",
        if smoke { "smoke" } else { "full" }
    );

    let (cold_misses, warm_hits) = correctness_phase(addr);
    eprintln!("correctness: cold misses {cold_misses}, warm hits {warm_hits}");

    let (active, conc_ok, conc_errors) = concurrency_phase(addr, cfg.clients);
    eprintln!(
        "concurrency: {} clients parked, server held {active} active, {} drained ok, {} errors",
        cfg.clients, conc_ok, conc_errors
    );

    let load = open_loop_phase(addr, &cfg);
    eprintln!(
        "open-loop: {} arrivals at {:.0}/s over {:.1}s — {} ok, {} errors, \
         p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        load.requests, cfg.rate_hz, load.elapsed_s, load.ok, load.errors, load.p50_ms,
        load.p95_ms, load.p99_ms
    );

    let pipe = pipelined_phase(addr, &cfg);
    eprintln!(
        "pipelined: {} arrivals over {} persistent conn(s) in {:.1}s — {} ok, {} errors, \
         p50 {:.1} ms, p95 {:.1} ms, p99 {:.1} ms",
        pipe.requests, cfg.senders, pipe.elapsed_s, pipe.ok, pipe.errors, pipe.p50_ms,
        pipe.p95_ms, pipe.p99_ms
    );

    // The metrics plane must reconcile with what the harness saw: the
    // server has answered at least every successful request counted here.
    let (status, metrics) = request(addr, "GET", "/metrics", "").expect("final metrics");
    assert_eq!(status, 200);
    let responses = json_u64(&metrics, "responses").expect("serve.responses");
    // cold+warm, both load phases, mid-probe (bursts answer 2 each).
    let harness_ok = 2 + conc_ok + load.ok + pipe.ok + 1;
    assert!(
        responses >= harness_ok,
        "serve.responses {responses} < harness-observed {harness_ok}"
    );

    server.stop();
    let (repl_initial, repl_healed, repaired_bytes) = replication_phase(&dir, &follower);
    eprintln!(
        "replication: initial match {repl_initial}, torn-tail healed {repl_healed} \
         ({repaired_bytes} byte(s) repaired)"
    );

    let total = (conc_ok + conc_errors + load.ok + load.errors + pipe.ok + pipe.errors) as f64;
    let error_rate = (conc_errors + load.errors + pipe.errors) as f64 / total.max(1.0);
    let pass = active >= cfg.clients as u64
        && conc_ok == cfg.clients as u64
        && load.p99_ms <= P99_LIMIT_MS
        && pipe.p99_ms <= P99_LIMIT_MS
        && error_rate <= ERROR_RATE_LIMIT
        && repl_initial
        && repl_healed;

    let json = format!(
        "{{\n  \"config\": {{\"smoke\": {smoke}, \"shards\": {SHARDS}, \"workers\": {WORKERS}, \
         \"clients\": {clients}, \"poisson_rate_hz\": {rate:.1}, \"poisson_seconds\": {secs:.1}}},\n\
         \x20 \"correctness\": {{\"cold_misses\": {cold_misses}, \"warm_hits\": {warm_hits}}},\n\
         \x20 \"concurrent\": {{\"clients\": {clients}, \"active_observed\": {active}, \
         \"ok\": {conc_ok}, \"errors\": {conc_errors}}},\n\
         \x20 \"open_loop\": {{\"requests\": {reqs}, \"ok\": {lok}, \"errors\": {lerr}, \
         \"p50_ms\": {p50:.2}, \"p95_ms\": {p95:.2}, \"p99_ms\": {p99:.2}, \
         \"elapsed_s\": {els:.2}}},\n\
         \x20 \"pipelined\": {{\"requests\": {preqs}, \"ok\": {pok}, \"errors\": {perr}, \
         \"connections\": {senders}, \"p50_ms\": {pp50:.2}, \"p95_ms\": {pp95:.2}, \
         \"p99_ms\": {pp99:.2}, \"elapsed_s\": {pels:.2}}},\n\
         \x20 \"replication\": {{\"initial_match\": {repl_initial}, \
         \"torn_tail_healed\": {repl_healed}, \"repaired_bytes\": {repaired_bytes}}},\n\
         \x20 \"acceptance\": {{\"min_concurrent_clients\": {clients}, \
         \"concurrent_clients\": {active}, \"p99_limit_ms\": {p99lim:.1}, \"p99_ms\": {p99:.2}, \
         \"p99_pipelined_ms\": {pp99:.2}, \
         \"error_rate_limit\": {errlim:.4}, \"error_rate\": {errate:.4}, \
         \"replication_digest_match\": {repl_both}, \"pass\": {pass}}}\n}}\n",
        clients = cfg.clients,
        rate = cfg.rate_hz,
        secs = cfg.seconds,
        senders = cfg.senders,
        preqs = pipe.requests,
        pok = pipe.ok,
        perr = pipe.errors,
        pp50 = pipe.p50_ms,
        pp95 = pipe.p95_ms,
        pp99 = pipe.p99_ms,
        pels = pipe.elapsed_s,
        reqs = load.requests,
        lok = load.ok,
        lerr = load.errors,
        p50 = load.p50_ms,
        p95 = load.p95_ms,
        p99 = load.p99_ms,
        els = load.elapsed_s,
        p99lim = P99_LIMIT_MS,
        errlim = ERROR_RATE_LIMIT,
        errate = error_rate,
        repl_both = repl_initial && repl_healed,
    );
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote BENCH_serve.json (serve gates: {})", if pass { "PASS" } else { "FAIL" });

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&follower);
    if !pass {
        std::process::exit(1);
    }
}

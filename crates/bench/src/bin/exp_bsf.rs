//! E-BSF: the Bulk Synchronous Farm master-worker model.
//!
//! Runs the `scenarios/bsf.scn` grid: the worker-count sweep across the
//! scalability boundary `p* = √(units·t_w / (2·t_t))`, per cell comparing
//! the event-wise simulated farm makespan against the model's closed-form
//! prediction `t_s + 2·p·t_t + ⌈units/p⌉·t_w` and reporting the simulated
//! speedup. In the full sweep the predicted curve must dip at the cell
//! containing `p*` relative to both ends — the model's scalability
//! boundary is visible in the measurements, not just the formula.
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin exp_bsf             # full sweep
//! cargo run --release -p bvl-bench --bin exp_bsf -- --smoke  # CI subset
//! ```

use bvl_bench::{banner, labexp, obs, print_table, scn};

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    banner(if smoke {
        "E-BSF (smoke): the cells bracketing the scalability boundary"
    } else {
        "E-BSF: master-worker farm, predicted vs simulated across p*"
    });

    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("bsf", smoke);
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], None);
    eprintln!("[sweep] bsf: {}", rep.summary());
    let rows = labexp::single_rows(rep);
    print_table(
        &["workers", "units", "simulated", "predicted", "ratio", "speedup", "p*"],
        &rows,
    );

    let num = |r: &[String], i: usize| -> f64 { r[i].parse().expect("numeric column") };
    // The audit already enforces simulated ≥ floor, predicted ≥ simulated
    // and speedup ≤ p per row; the binary adds the curve-level check: the
    // full sweep's prediction bottoms out at the p* cell.
    let curve_ok = if smoke {
        true
    } else {
        let pstar = labexp::bsf::base().optimal_workers();
        let at = |i: usize| num(&rows[i], 3);
        let dip = (0..rows.len())
            .min_by(|&a, &b| at(a).total_cmp(&at(b)))
            .expect("non-empty sweep");
        let w = num(&rows[dip], 0);
        w <= 2.0 * pstar && 2.0 * w >= pstar
    };

    obs::Summary::new("exp_bsf")
        .kv("cells", rows.len())
        .kv("curve_ok", curve_ok)
        .f2(
            "best_speedup",
            rows.iter().map(|r| num(r, 5)).fold(f64::NEG_INFINITY, f64::max),
        )
        .emit();

    if !curve_ok {
        eprintln!("exp_bsf: the predicted curve does not dip at the scalability boundary");
        std::process::exit(1);
    }
}

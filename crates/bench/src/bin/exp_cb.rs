//! E-CB: Propositions 1–2 — Combine-and-Broadcast time
//! `T_CB = Θ(L·log p / log(1 + ⌈L/G⌉))`.
//!
//! Measured CB makespans against the formula across `p` and `(L, G)`,
//! including the capacity-1 regime with the paper's timed-slot binary tree.
//! The ratio column should be roughly constant per parameter family — the
//! Θ shape — and Proposition 1 says no stall-free algorithm beats it by
//! more than a constant.

use bvl_bench::{banner, f2, obs, print_table};
use bvl_core::{run_cb, word_combine, TreeShape};
use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId, Steps};
use bvl_obs::{Span, SpanKind};

fn cb_time(params: LogpParams, seed: u64) -> Steps {
    let values = vec![Payload::word(0, 1); params.p];
    let joins = vec![Steps::ZERO; params.p];
    run_cb(
        params,
        TreeShape::Heap,
        values,
        word_combine(|a, b| a & b),
        &joins,
        &RunOptions::new().shards(bvl_obs::cli::shards()).seed(seed),
    )
    .expect("CB is stall-free")
    .t_cb
}

fn main() {
    banner("Proposition 2: T_CB vs L log p / log(1 + capacity)");
    let mut rows = Vec::new();
    for (l, o, g) in [(16u64, 1u64, 2u64), (16, 1, 8), (16, 1, 16), (64, 2, 4)] {
        for p in [8usize, 32, 128, 512] {
            let params = LogpParams::new(p, l, o, g).unwrap();
            let t = cb_time(params, 1);
            let formula = (l as f64) * (p as f64).log2()
                / (1.0 + params.capacity() as f64).log2();
            let bound = params.cb_bound();
            rows.push(vec![
                format!("{p}"),
                format!("{l}"),
                format!("{g}"),
                format!("{}", params.capacity()),
                format!("{}", t.get()),
                f2(formula),
                f2(t.get() as f64 / formula),
                f2(bound),
            ]);
        }
    }
    print_table(
        &[
            "p", "L", "G", "cap", "T_CB", "L·lg p/lg(1+cap)", "ratio", "3(L+o) bound",
        ],
        &rows,
    );

    banner("Capacity effect at fixed p = 256, L = 32 (wider tree => faster barrier)");
    let mut rows = Vec::new();
    for g in [2u64, 4, 8, 16, 32] {
        let params = LogpParams::new(256, 32, 1, g).unwrap();
        let t = cb_time(params, 2);
        rows.push(vec![
            format!("{g}"),
            format!("{}", params.capacity()),
            format!("{}", 2usize.max(params.capacity() as usize)),
            format!("{}", t.get()),
            f2(params.cb_bound()),
        ]);
    }
    print_table(&["G", "cap", "tree arity", "T_CB", "bound"], &rows);

    banner("Proposition 1 (optimality, empirically): tree CB vs flat gather+scatter");
    println!("(the flat scheme concentrates p-1 messages on the root — it stalls and");
    println!(" pays Θ(G·p); the tree pays Θ(L log p / log(1+cap)), the lower bound)");
    println!();
    let mut rows = Vec::new();
    for p in [32usize, 128, 512] {
        let params = LogpParams::new(p, 16, 1, 2).unwrap();
        let tree = cb_time(params, 3);
        // Flat: everyone sends to P0; P0 folds and sends the result back.
        let mut programs = vec![Script::new(
            std::iter::repeat_n(Op::Recv, p - 1)
                .chain((1..p).map(|j| Op::Send {
                    dst: ProcId(j as u32),
                    payload: Payload::word(0, 1),
                }))
                .collect::<Vec<_>>(),
        )];
        programs.extend((1..p).map(|_| {
            Script::new([
                Op::Send {
                    dst: ProcId(0),
                    payload: Payload::word(0, 1),
                },
                Op::Recv,
            ])
        }));
        let mut m = LogpMachine::with_config(params, LogpConfig::default(), programs);
        let flat = m.run().expect("flat gather completes").makespan;
        rows.push(vec![
            format!("{p}"),
            format!("{}", tree.get()),
            format!("{}", flat.get()),
            f2(flat.get() as f64 / tree.get() as f64),
        ]);
    }
    print_table(&["p", "tree T_CB", "flat T", "flat/tree"], &rows);

    // Flagged cell: one CB at (p=128, L=16, G=2), its combine/broadcast
    // halves exported as spans (all joins at 0, so the phase boundary is
    // `t_combine` on the absolute clock).
    let params = LogpParams::new(128, 16, 1, 2).unwrap();
    let rep = run_cb(
        params,
        TreeShape::Heap,
        vec![Payload::word(0, 1); params.p],
        word_combine(|a, b| a & b),
        &vec![Steps::ZERO; params.p],
        &RunOptions::new().shards(bvl_obs::cli::shards()).seed(1),
    )
    .expect("CB is stall-free");
    let registry = obs::capture_registry("exp_cb", 1, params.p);
    registry.span(Span::new(SpanKind::CbCombine, Steps::ZERO, rep.t_combine));
    registry.span(Span::new(SpanKind::CbBroadcast, rep.t_combine, rep.t_cb));
    obs::Summary::new("exp_cb")
        .kv("cell", "cb_p128_L16_G2")
        .kv("makespan", rep.makespan.get())
        .kv("t_cb", rep.t_cb.get())
        .kv("t_combine", rep.t_combine.get())
        .kv("t_broadcast", rep.t_broadcast.get())
        .kv("spans", registry.spans().len())
        .emit();
    obs::write_spans_if_requested(&registry);
}

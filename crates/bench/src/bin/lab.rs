//! `lab` — the front end of the content-addressed experiment service.
//!
//! ```sh
//! lab run <exp|all> [--smoke]   # run grids through the store (incremental)
//! lab run --scenario F [--smoke] # run a scenario document as data
//! lab validate                  # shipped .scn == legacy grids, bit for bit
//! lab emit <name>               # print the reference scenario document
//! lab audit [--bench F]         # lower-bound audit over exported results
//! lab status                    # store summary: cells, segments, staleness
//! lab query <exp>               # dump an experiment's cached cells
//! lab diff                      # is the store current with this binary?
//! lab gc                        # compact segments, drop stale archives
//! lab serve [--addr A] [--workers N]   # HTTP JSON endpoint
//! ```
//!
//! Every store-touching subcommand takes `--dir <path>`; the default is
//! `$BVL_LAB_DIR`, falling back to `.lab`. The same directory is what the
//! `exp_*` binaries read and write when run with `BVL_LAB_DIR` set, so a
//! store warmed by `lab run` accelerates them and vice versa — the grids
//! (and therefore the cache keys) are shared via `bvl_bench::scn`, which
//! compiles the checked-in `scenarios/*.scn` documents.

use bvl_bench::{labexp, print_table, scn};
use bvl_lab::jsonio::Cursor;
use bvl_lab::{serve, shard_count_of, CodeFingerprint, OnStale, Service, ShardedStore};
use bvl_obs::Registry;
use bvl_scenario::grid_digest;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: lab <run|validate|emit|audit|status|query|diff|gc|serve> [args]\n\
         \n\
         lab run <exp|all> [--smoke] [--dir D]   incremental grid run\n\
         lab run --scenario F [--smoke] [--dir D] run a scenario document\n\
         lab validate                            shipped scenarios vs legacy grids\n\
         lab emit <name>                         print the reference scenario text\n\
         lab audit [--bench F]                   lower-bound audit of BENCH_faults.json\n\
         lab status [--dir D]                    store summary\n\
         lab query <exp> [--dir D]               dump cached cells\n\
         lab diff [--dir D]                      staleness check (exit 1 if stale)\n\
         lab gc [--dir D]                        compact the store\n\
         lab serve [--addr A] [--workers N] [--dir D]\n\
         \n\
         store-touching subcommands also take --store-shards N (default:\n\
         whatever the store records; 1 for a fresh flat store)\n\
         \n\
         experiments: {}",
        labexp::experiments()
            .iter()
            .map(|e| e.name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    exit(2)
}

/// Pull `--flag value` out of the argument list (removing both tokens).
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("lab: {flag} needs a value");
        exit(2);
    }
    args.remove(i);
    Some(args.remove(i))
}

fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    match args.iter().position(|a| a == switch) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn store_dir(args: &mut Vec<String>) -> PathBuf {
    take_flag(args, "--dir")
        .or_else(|| std::env::var("BVL_LAB_DIR").ok().filter(|d| !d.is_empty()))
        .unwrap_or_else(|| ".lab".into())
        .into()
}

/// Shard count for a store-touching subcommand: `--store-shards N` wins
/// (a fresh directory is created with that many shards; an existing one
/// must already match), otherwise whatever the directory records.
fn store_shards(args: &mut Vec<String>, dir: &Path) -> usize {
    if let Some(n) = take_flag(args, "--store-shards") {
        match n.parse() {
            Ok(n) if n >= 1 => return n,
            _ => {
                eprintln!("lab: --store-shards wants a positive integer, got {n}");
                exit(2);
            }
        }
    }
    match shard_count_of(dir) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("lab: bad shard manifest in {}: {e}", dir.display());
            exit(2);
        }
    }
}

fn open(dir: &Path, shards: usize, on_stale: OnStale) -> ShardedStore {
    match ShardedStore::open(dir, shards, CodeFingerprint::current(), on_stale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lab: cannot open store at {}: {e}", dir.display());
            exit(2);
        }
    }
}

fn service(store: ShardedStore) -> Service {
    Service::new(store, Registry::enabled(1), labexp::experiments())
        .with_scenario_runner(Box::new(scn::Runner))
}

/// Parse `BENCH_faults.json` (the exporter in `exp_faults`) into
/// `(sim, h, clean, faulted)` tuples for the lower-bound audit.
fn parse_bench_faults(text: &str) -> Result<Vec<(String, u64, u64, u64)>, String> {
    let mut c = Cursor::new(text);
    c.expect(b'{')?;
    let key = c.string()?;
    if key != "experiment" {
        return Err(format!("expected \"experiment\", got \"{key}\""));
    }
    c.expect(b':')?;
    let _ = c.string()?;
    c.expect(b',')?;
    let key = c.string()?;
    if key != "rows" {
        return Err(format!("expected \"rows\", got \"{key}\""));
    }
    c.expect(b':')?;
    c.expect(b'[')?;
    let mut out = Vec::new();
    if !c.eat(b']') {
        loop {
            c.expect(b'{')?;
            let mut sim = String::new();
            let (mut h, mut clean, mut faulted) = (0u64, 0u64, 0u64);
            loop {
                let field = c.string()?;
                c.expect(b':')?;
                match field.as_str() {
                    "sim" => sim = c.string()?,
                    "plan" => drop(c.string()?),
                    "h" => h = c.u64()?,
                    "clean" => clean = c.u64()?,
                    "faulted" => faulted = c.u64()?,
                    "p" | "attempts" => drop(c.u64()?),
                    "ok" => drop(c.boolean()?),
                    other => return Err(format!("unknown field \"{other}\"")),
                }
                if !c.eat(b',') {
                    break;
                }
            }
            c.expect(b'}')?;
            out.push((sim, h, clean, faulted));
            if !c.eat(b',') {
                break;
            }
        }
        c.expect(b']')?;
    }
    c.expect(b'}')?;
    Ok(out)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    args.remove(0);

    match cmd.as_str() {
        "run" => {
            let smoke = take_switch(&mut args, "--smoke");
            let scenario = take_flag(&mut args, "--scenario");
            let dir = store_dir(&mut args);
            if let Some(path) = scenario {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("lab: cannot read scenario {path}: {e}");
                        exit(2);
                    }
                };
                let shards = store_shards(&mut args, &dir);
                let svc = service(open(&dir, shards, OnStale::Invalidate));
                match svc
                    .run_scenario(&text, smoke, Some(bvl_obs::cli::obs_tier()))
                    .expect("scenario runner is registered")
                {
                    Ok((name, rep)) => {
                        print_table(
                            &["scenario", "cells", "hits", "misses", "forced", "hit rate", "elapsed"],
                            &[vec![
                                name,
                                rep.rows.len().to_string(),
                                rep.hits.to_string(),
                                rep.misses.to_string(),
                                rep.forced.to_string(),
                                format!("{:.1}%", 100.0 * rep.hit_rate()),
                                format!("{:.2}s", rep.elapsed.as_secs_f64()),
                            ]],
                        );
                    }
                    Err(e) => {
                        eprintln!("lab: scenario {path} failed: {e}");
                        exit(1);
                    }
                }
                return;
            }
            let Some(exp) = args.first().cloned() else {
                usage();
            };
            args.remove(0);
            let shards = store_shards(&mut args, &dir);
            let svc = service(open(&dir, shards, OnStale::Invalidate));
            let names: Vec<String> = if exp == "all" {
                svc.names().iter().map(|n| n.to_string()).collect()
            } else {
                vec![exp]
            };
            let mut rows = Vec::new();
            for name in &names {
                match svc.run(name, smoke, Some(bvl_obs::cli::obs_tier())) {
                    None => {
                        eprintln!("lab: unknown experiment '{name}'");
                        exit(2);
                    }
                    Some(Err(e)) => {
                        eprintln!("lab: '{name}' failed: {e}");
                        exit(2);
                    }
                    Some(Ok(rep)) => rows.push(vec![
                        name.clone(),
                        rep.rows.len().to_string(),
                        rep.hits.to_string(),
                        rep.misses.to_string(),
                        rep.forced.to_string(),
                        format!("{:.1}%", 100.0 * rep.hit_rate()),
                        format!("{:.2}s", rep.elapsed.as_secs_f64()),
                    ]),
                }
            }
            print_table(
                &["experiment", "cells", "hits", "misses", "forced", "hit rate", "elapsed"],
                &rows,
            );
        }
        "validate" => {
            // Prove the checked-in scenario documents against the legacy
            // code-defined grids: same documents as the reference
            // builders, and bit-identical compiled grids (exp, master,
            // canonical options, cells and store keys) in both modes.
            let mut rows = Vec::new();
            let mut bad = 0usize;
            for (name, _) in scn::SHIPPED {
                if scn::doc(name) != scn::reference(name) {
                    rows.push(vec![name.into(), "-".into(), "-".into(), "DOC DRIFT".into()]);
                    bad += 1;
                    continue;
                }
                for smoke in [false, true] {
                    let mode = if smoke { "smoke" } else { "full" };
                    let compiled = scn::compiled(name, smoke);
                    let legacy = scn::legacy_grids(name, smoke).expect("shipped name");
                    let cells: usize = compiled.grids.iter().map(|g| g.spec.cells.len()).sum();
                    let ok = compiled.grids.len() == legacy.len()
                        && compiled
                            .grids
                            .iter()
                            .zip(&legacy)
                            .all(|(cg, lg)| grid_digest(&cg.spec) == grid_digest(lg));
                    if !ok {
                        bad += 1;
                    }
                    rows.push(vec![
                        name.into(),
                        mode.into(),
                        format!("{} grid(s), {cells} cell(s)", compiled.grids.len()),
                        if ok { "ok".into() } else { "DIGEST MISMATCH".into() },
                    ]);
                }
            }
            print_table(&["scenario", "mode", "compiled", "status"], &rows);
            if bad > 0 {
                eprintln!("lab: {bad} scenario lowering(s) diverge from the legacy grids");
                exit(1);
            }
        }
        "emit" => {
            let Some(name) = args.first().cloned() else {
                usage();
            };
            print!("{}", scn::reference(&name).to_text());
        }
        "audit" => {
            let path = take_flag(&mut args, "--bench").unwrap_or_else(|| "BENCH_faults.json".into());
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("lab: cannot read {path}: {e}");
                    exit(2);
                }
            };
            let rows = match parse_bench_faults(&text) {
                Ok(r) => r,
                Err(e) => {
                    eprintln!("lab: {path} does not parse: {e}");
                    exit(2);
                }
            };
            let mut violations = Vec::new();
            for (sim, h, clean, faulted) in &rows {
                for v in bvl_scenario::audit_conformance_row(sim, *h as usize, *clean, *faulted) {
                    violations.push(format!("{sim} h={h}: {v}"));
                }
            }
            if violations.is_empty() {
                println!(
                    "audit: {} row(s) in {path} respect the conformance lower bounds",
                    rows.len()
                );
            } else {
                for v in &violations {
                    eprintln!("[audit] {v}");
                }
                eprintln!(
                    "lab: {} lower-bound violation(s) in {path} — a cost below a proven \
                     bound is a simulator bug",
                    violations.len()
                );
                exit(1);
            }
        }
        "status" => {
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Keep);
            println!("store: {}", dir.display());
            println!("code:  {}", store.code());
            println!("shards: {}", store.shard_count());
            match store.stale() {
                Some(writer) => println!("stale: written by {writer}"),
                None => println!("stale: no"),
            }
            let segments = store.segments().unwrap_or_default();
            let bytes: u64 = segments.iter().map(|(_, b)| b).sum();
            println!(
                "cells: {} across {} segment(s), {} bytes, {} torn line(s)",
                store.len(),
                segments.len(),
                bytes,
                store.torn()
            );
            let rows: Vec<Vec<String>> = store
                .experiments()
                .into_iter()
                .map(|(name, cells)| vec![name, cells.to_string()])
                .collect();
            if !rows.is_empty() {
                print_table(&["experiment", "cells"], &rows);
            }
        }
        "query" => {
            let dir = store_dir(&mut args);
            let Some(exp) = args.first().cloned() else {
                usage();
            };
            args.remove(0);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Keep);
            let rows: Vec<Vec<String>> = store
                .cells_for(&exp)
                .into_iter()
                .map(|c| {
                    vec![
                        c.domain.clone(),
                        c.index.to_string(),
                        c.params.clone(),
                        c.plan.clone().unwrap_or_else(|| "-".into()),
                        c.rows.len().to_string(),
                        c.key[..12].to_string(),
                    ]
                })
                .collect();
            if rows.is_empty() {
                println!("no cached cells for '{exp}'");
            } else {
                print_table(&["domain", "index", "params", "plan", "rows", "key"], &rows);
            }
        }
        "diff" => {
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Keep);
            match store.stale() {
                Some(writer) => {
                    println!(
                        "stale: store written by code {writer}; running code is {}",
                        store.code()
                    );
                    println!(
                        "{} cached cell(s) would be invalidated on the next cached run",
                        store.len()
                    );
                    exit(1);
                }
                None => {
                    println!(
                        "current: store and binary agree on code {} ({} cells)",
                        store.code(),
                        store.len()
                    );
                }
            }
        }
        "gc" => {
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Invalidate);
            match store.gc() {
                Ok(rep) => println!(
                    "gc: {} live cell(s) compacted; removed {} segment(s), {} stale archive(s)",
                    rep.live, rep.removed_segments, rep.removed_archives
                ),
                Err(e) => {
                    eprintln!("lab: gc failed: {e}");
                    exit(2);
                }
            }
        }
        "serve" => {
            let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:8091".into());
            let workers: usize = take_flag(&mut args, "--workers")
                .map(|w| w.parse().unwrap_or(4))
                .unwrap_or(4);
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let svc = Arc::new(service(open(&dir, shards, OnStale::Invalidate)));
            match serve(&addr, svc, workers) {
                Ok(server) => {
                    println!("lab: serving {} with {workers} worker(s)", server.addr());
                    println!("  GET  /status         store + cache counters");
                    println!("  GET  /metrics        counter snapshot + scheduler hit rate");
                    println!("  GET  /cells?exp=NAME cached cells with payloads");
                    println!(
                        "  POST /run            \
                         {{\"exp\":\"NAME\",\"smoke\":true,\"tier\":\"sampled:8\"}}"
                    );
                    loop {
                        std::thread::park();
                    }
                }
                Err(e) => {
                    eprintln!("lab: cannot bind {addr}: {e}");
                    exit(2);
                }
            }
        }
        _ => usage(),
    }
}

//! `lab` — the front end of the content-addressed experiment service.
//!
//! ```sh
//! lab run <exp|all> [--smoke]   # run grids through the store (incremental)
//! lab run --scenario F [--smoke] # run a scenario document as data
//! lab validate                  # shipped .scn == legacy grids, bit for bit
//! lab emit <name>               # print the reference scenario document
//! lab audit [--bench F]         # lower-bound audit over exported results
//! lab status                    # store summary: cells, segments, staleness
//! lab query <exp>               # dump an experiment's cached cells
//! lab diff                      # is the store current with this binary?
//! lab gc                        # compact segments, drop stale archives
//! lab serve [--addr A] [--workers N]   # HTTP JSON endpoint
//! ```
//!
//! Every store-touching subcommand takes `--dir <path>`; the default is
//! `$BVL_LAB_DIR`, falling back to `.lab`. The same directory is what the
//! `exp_*` binaries read and write when run with `BVL_LAB_DIR` set, so a
//! store warmed by `lab run` accelerates them and vice versa — the grids
//! (and therefore the cache keys) are shared via `bvl_bench::scn`, which
//! compiles the checked-in `scenarios/*.scn` documents.

use bvl_bench::{labexp, print_table, scn};
use bvl_lab::jsonio::Cursor;
use bvl_lab::{serve, shard_count_of, CodeFingerprint, OnStale, Service, ShardedStore};
use bvl_obs::Registry;
use bvl_scenario::grid_digest;
use std::path::{Path, PathBuf};
use std::process::exit;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: lab <run|validate|emit|audit|status|query|diff|gc|serve> [args]\n\
         \n\
         lab run <exp|all> [--smoke] [--dir D]   incremental grid run\n\
         lab run --scenario F [--smoke] [--dir D] run a scenario document\n\
         lab validate                            shipped scenarios vs legacy grids\n\
         lab emit <name>                         print the reference scenario text\n\
         lab audit [--bench F]                   audit a BENCH_*.json export: the\n\
                                                 faults conformance lower bounds, or\n\
                                                 any file's acceptance block per-gate\n\
         lab status [--dir D]                    store summary\n\
         lab query <exp> [--dir D]               dump cached cells\n\
         lab diff [--dir D]                      staleness check (exit 1 if stale)\n\
         lab gc [--dir D]                        compact the store\n\
         lab serve [--addr A] [--workers N] [--dir D]\n\
         \n\
         store-touching subcommands also take --store-shards N (default:\n\
         whatever the store records; 1 for a fresh flat store)\n\
         \n\
         experiments: {}",
        labexp::experiments()
            .iter()
            .map(|e| e.name().to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    exit(2)
}

/// Pull `--flag value` out of the argument list (removing both tokens).
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let i = args.iter().position(|a| a == flag)?;
    if i + 1 >= args.len() {
        eprintln!("lab: {flag} needs a value");
        exit(2);
    }
    args.remove(i);
    Some(args.remove(i))
}

fn take_switch(args: &mut Vec<String>, switch: &str) -> bool {
    match args.iter().position(|a| a == switch) {
        Some(i) => {
            args.remove(i);
            true
        }
        None => false,
    }
}

fn store_dir(args: &mut Vec<String>) -> PathBuf {
    take_flag(args, "--dir")
        .or_else(|| std::env::var("BVL_LAB_DIR").ok().filter(|d| !d.is_empty()))
        .unwrap_or_else(|| ".lab".into())
        .into()
}

/// Shard count for a store-touching subcommand: `--store-shards N` wins
/// (a fresh directory is created with that many shards; an existing one
/// must already match), otherwise whatever the directory records.
fn store_shards(args: &mut Vec<String>, dir: &Path) -> usize {
    if let Some(n) = take_flag(args, "--store-shards") {
        match n.parse() {
            Ok(n) if n >= 1 => return n,
            _ => {
                eprintln!("lab: --store-shards wants a positive integer, got {n}");
                exit(2);
            }
        }
    }
    match shard_count_of(dir) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("lab: bad shard manifest in {}: {e}", dir.display());
            exit(2);
        }
    }
}

fn open(dir: &Path, shards: usize, on_stale: OnStale) -> ShardedStore {
    match ShardedStore::open(dir, shards, CodeFingerprint::current(), on_stale) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lab: cannot open store at {}: {e}", dir.display());
            exit(2);
        }
    }
}

fn service(store: ShardedStore) -> Service {
    Service::new(store, Registry::enabled(1), labexp::experiments())
        .with_scenario_runner(Box::new(scn::Runner))
}

/// Parse `BENCH_faults.json` (the exporter in `exp_faults`) into
/// `(sim, h, clean, faulted)` tuples for the lower-bound audit.
fn parse_bench_faults(text: &str) -> Result<Vec<(String, u64, u64, u64)>, String> {
    let mut c = Cursor::new(text);
    c.expect(b'{')?;
    let key = c.string()?;
    if key != "experiment" {
        return Err(format!("expected \"experiment\", got \"{key}\""));
    }
    c.expect(b':')?;
    let _ = c.string()?;
    c.expect(b',')?;
    let key = c.string()?;
    if key != "rows" {
        return Err(format!("expected \"rows\", got \"{key}\""));
    }
    c.expect(b':')?;
    c.expect(b'[')?;
    let mut out = Vec::new();
    if !c.eat(b']') {
        loop {
            c.expect(b'{')?;
            let mut sim = String::new();
            let (mut h, mut clean, mut faulted) = (0u64, 0u64, 0u64);
            loop {
                let field = c.string()?;
                c.expect(b':')?;
                match field.as_str() {
                    "sim" => sim = c.string()?,
                    "plan" => drop(c.string()?),
                    "h" => h = c.u64()?,
                    "clean" => clean = c.u64()?,
                    "faulted" => faulted = c.u64()?,
                    "p" | "attempts" => drop(c.u64()?),
                    "ok" => drop(c.boolean()?),
                    other => return Err(format!("unknown field \"{other}\"")),
                }
                if !c.eat(b',') {
                    break;
                }
            }
            c.expect(b'}')?;
            out.push((sim, h, clean, faulted));
            if !c.eat(b',') {
                break;
            }
        }
        c.expect(b']')?;
    }
    c.expect(b'}')?;
    Ok(out)
}

/// One field of an acceptance block: booleans are gates, everything else
/// is reported as context alongside them.
enum Gate {
    Bool(bool),
    Info(String),
}

/// Byte scanner for the acceptance fallback. The store's [`Cursor`] is
/// deliberately closed over the record schema (no floats, no lookahead),
/// and the exporters emit floats like `0.72` — so the generic audit path
/// carries its own tiny tokenizer instead of widening the store's.
struct Scan<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Scan<'a> {
    fn ws(&mut self) {
        while self.b.get(self.i).is_some_and(|c| c.is_ascii_whitespace()) {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> bool {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.eat(c) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    /// A quoted string; the exporters only escape quotes and backslashes.
    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return String::from_utf8(out.into_bytes())
                        .map_err(|e| format!("bad utf-8 in string: {e}"));
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(&c @ (b'"' | b'\\' | b'/')) => out.push(c as char),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        other => return Err(format!("bad escape: {other:?}")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    out.push(c as char);
                    self.i += 1;
                }
            }
        }
    }

    /// A number literal, kept verbatim — the audit reports it, never
    /// computes with it.
    fn number(&mut self) -> Result<String, String> {
        self.ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'-' | b'+' | b'e' | b'E'))
        {
            self.i += 1;
        }
        if start == self.i {
            return Err(format!("expected a value at byte {start}"));
        }
        Ok(String::from_utf8_lossy(&self.b[start..self.i]).into_owned())
    }

    /// One acceptance value: bool, number, string, or a flat array of
    /// strings/numbers (rendered for display).
    fn value(&mut self) -> Result<Gate, String> {
        self.ws();
        match self.b.get(self.i) {
            Some(b't') if self.b[self.i..].starts_with(b"true") => {
                self.i += 4;
                Ok(Gate::Bool(true))
            }
            Some(b'f') if self.b[self.i..].starts_with(b"false") => {
                self.i += 5;
                Ok(Gate::Bool(false))
            }
            Some(b'"') => Ok(Gate::Info(self.string()?)),
            Some(b'[') => {
                self.i += 1;
                let mut items = Vec::new();
                if !self.eat(b']') {
                    loop {
                        self.ws();
                        items.push(match self.b.get(self.i) {
                            Some(b'"') => self.string()?,
                            _ => self.number()?,
                        });
                        if !self.eat(b',') {
                            break;
                        }
                    }
                    self.expect(b']')?;
                }
                Ok(Gate::Info(items.join(" ")))
            }
            _ => Ok(Gate::Info(self.number()?)),
        }
    }
}

/// Pull the `"acceptance"` object out of any `BENCH_*.json` exporter as
/// ordered `(field, value)` pairs. The block is the trailing object in
/// every exporter's fixed shape, so scanning starts at the *last*
/// occurrence of the key — row payloads never follow it.
fn parse_acceptance(text: &str) -> Result<Vec<(String, Gate)>, String> {
    let at = text
        .rfind("\"acceptance\"")
        .ok_or("no \"acceptance\" block")?;
    let mut s = Scan {
        b: &text.as_bytes()[at + "\"acceptance\"".len()..],
        i: 0,
    };
    s.expect(b':')?;
    s.expect(b'{')?;
    let mut out = Vec::new();
    loop {
        if s.eat(b'}') {
            break;
        }
        let key = s.string()?;
        s.expect(b':')?;
        out.push((key, s.value()?));
        s.eat(b',');
    }
    if out.is_empty() {
        return Err("acceptance block is empty".into());
    }
    if !out.iter().any(|(_, g)| matches!(g, Gate::Bool(_))) {
        return Err("acceptance block has no boolean gates".into());
    }
    Ok(out)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first().cloned() else {
        usage();
    };
    args.remove(0);

    match cmd.as_str() {
        "run" => {
            let smoke = take_switch(&mut args, "--smoke");
            let scenario = take_flag(&mut args, "--scenario");
            let dir = store_dir(&mut args);
            if let Some(path) = scenario {
                let text = match std::fs::read_to_string(&path) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("lab: cannot read scenario {path}: {e}");
                        exit(2);
                    }
                };
                let shards = store_shards(&mut args, &dir);
                let svc = service(open(&dir, shards, OnStale::Invalidate));
                match svc
                    .run_scenario(&text, smoke, Some(bvl_obs::cli::obs_tier()))
                    .expect("scenario runner is registered")
                {
                    Ok((name, rep)) => {
                        print_table(
                            &["scenario", "cells", "hits", "misses", "forced", "hit rate", "elapsed"],
                            &[vec![
                                name,
                                rep.rows.len().to_string(),
                                rep.hits.to_string(),
                                rep.misses.to_string(),
                                rep.forced.to_string(),
                                format!("{:.1}%", 100.0 * rep.hit_rate()),
                                format!("{:.2}s", rep.elapsed.as_secs_f64()),
                            ]],
                        );
                    }
                    Err(e) => {
                        eprintln!("lab: scenario {path} failed: {e}");
                        exit(1);
                    }
                }
                return;
            }
            let Some(exp) = args.first().cloned() else {
                usage();
            };
            args.remove(0);
            let shards = store_shards(&mut args, &dir);
            let svc = service(open(&dir, shards, OnStale::Invalidate));
            let names: Vec<String> = if exp == "all" {
                svc.names().iter().map(|n| n.to_string()).collect()
            } else {
                vec![exp]
            };
            let mut rows = Vec::new();
            for name in &names {
                match svc.run(name, smoke, Some(bvl_obs::cli::obs_tier())) {
                    None => {
                        eprintln!("lab: unknown experiment '{name}'");
                        exit(2);
                    }
                    Some(Err(e)) => {
                        eprintln!("lab: '{name}' failed: {e}");
                        exit(2);
                    }
                    Some(Ok(rep)) => rows.push(vec![
                        name.clone(),
                        rep.rows.len().to_string(),
                        rep.hits.to_string(),
                        rep.misses.to_string(),
                        rep.forced.to_string(),
                        format!("{:.1}%", 100.0 * rep.hit_rate()),
                        format!("{:.2}s", rep.elapsed.as_secs_f64()),
                    ]),
                }
            }
            print_table(
                &["experiment", "cells", "hits", "misses", "forced", "hit rate", "elapsed"],
                &rows,
            );
        }
        "validate" => {
            // Prove the checked-in scenario documents against the legacy
            // code-defined grids: same documents as the reference
            // builders, and bit-identical compiled grids (exp, master,
            // canonical options, cells and store keys) in both modes.
            let mut rows = Vec::new();
            let mut bad = 0usize;
            for (name, _) in scn::SHIPPED {
                if scn::doc(name) != scn::reference(name) {
                    rows.push(vec![name.into(), "-".into(), "-".into(), "DOC DRIFT".into()]);
                    bad += 1;
                    continue;
                }
                for smoke in [false, true] {
                    let mode = if smoke { "smoke" } else { "full" };
                    let compiled = scn::compiled(name, smoke);
                    let legacy = scn::legacy_grids(name, smoke).expect("shipped name");
                    let cells: usize = compiled.grids.iter().map(|g| g.spec.cells.len()).sum();
                    let ok = compiled.grids.len() == legacy.len()
                        && compiled
                            .grids
                            .iter()
                            .zip(&legacy)
                            .all(|(cg, lg)| grid_digest(&cg.spec) == grid_digest(lg));
                    if !ok {
                        bad += 1;
                    }
                    rows.push(vec![
                        name.into(),
                        mode.into(),
                        format!("{} grid(s), {cells} cell(s)", compiled.grids.len()),
                        if ok { "ok".into() } else { "DIGEST MISMATCH".into() },
                    ]);
                }
            }
            print_table(&["scenario", "mode", "compiled", "status"], &rows);
            if bad > 0 {
                eprintln!("lab: {bad} scenario lowering(s) diverge from the legacy grids");
                exit(1);
            }
        }
        "emit" => {
            let Some(name) = args.first().cloned() else {
                usage();
            };
            print!("{}", scn::reference(&name).to_text());
        }
        "audit" => {
            let path = take_flag(&mut args, "--bench").unwrap_or_else(|| "BENCH_faults.json".into());
            let text = match std::fs::read_to_string(&path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("lab: cannot read {path}: {e}");
                    exit(2);
                }
            };
            // Two layouts are audited, tried in order. The faults export
            // carries raw conformance rows and gets the lower-bound
            // audit; every other exporter carries an `acceptance` block,
            // whose boolean fields are reported as per-gate pass/fail. A
            // file matching neither is a loud error, not a skip.
            match parse_bench_faults(&text) {
                Ok(rows) => {
                    let mut violations = Vec::new();
                    for (sim, h, clean, faulted) in &rows {
                        for v in
                            bvl_scenario::audit_conformance_row(sim, *h as usize, *clean, *faulted)
                        {
                            violations.push(format!("{sim} h={h}: {v}"));
                        }
                    }
                    if violations.is_empty() {
                        println!(
                            "audit: {} row(s) in {path} respect the conformance lower bounds",
                            rows.len()
                        );
                    } else {
                        for v in &violations {
                            eprintln!("[audit] {v}");
                        }
                        eprintln!(
                            "lab: {} lower-bound violation(s) in {path} — a cost below a \
                             proven bound is a simulator bug",
                            violations.len()
                        );
                        exit(1);
                    }
                }
                Err(faults_err) => match parse_acceptance(&text) {
                    Ok(gates) => {
                        let mut failed = 0usize;
                        let mut total = 0usize;
                        let rows: Vec<Vec<String>> = gates
                            .iter()
                            .map(|(key, gate)| match gate {
                                Gate::Bool(ok) => {
                                    total += 1;
                                    if !ok {
                                        failed += 1;
                                    }
                                    vec![
                                        key.clone(),
                                        ok.to_string(),
                                        if *ok { "pass".into() } else { "FAIL".into() },
                                    ]
                                }
                                Gate::Info(v) => vec![key.clone(), v.clone(), "-".into()],
                            })
                            .collect();
                        print_table(&["gate", "value", "status"], &rows);
                        if failed > 0 {
                            eprintln!("lab: {failed} of {total} gate(s) in {path} failed");
                            exit(1);
                        }
                        println!("audit: all {total} gate(s) in {path} pass");
                    }
                    Err(acc_err) => {
                        eprintln!(
                            "lab: {path} matches no auditable layout — not the faults \
                             conformance export ({faults_err}); {acc_err}"
                        );
                        exit(2);
                    }
                },
            }
        }
        "status" => {
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Keep);
            println!("store: {}", dir.display());
            println!("code:  {}", store.code());
            println!("shards: {}", store.shard_count());
            match store.stale() {
                Some(writer) => println!("stale: written by {writer}"),
                None => println!("stale: no"),
            }
            let segments = store.segments().unwrap_or_default();
            let bytes: u64 = segments.iter().map(|(_, b)| b).sum();
            println!(
                "cells: {} across {} segment(s), {} bytes, {} torn line(s)",
                store.len(),
                segments.len(),
                bytes,
                store.torn()
            );
            let rows: Vec<Vec<String>> = store
                .experiments()
                .into_iter()
                .map(|(name, cells)| vec![name, cells.to_string()])
                .collect();
            if !rows.is_empty() {
                print_table(&["experiment", "cells"], &rows);
            }
        }
        "query" => {
            let dir = store_dir(&mut args);
            let Some(exp) = args.first().cloned() else {
                usage();
            };
            args.remove(0);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Keep);
            let rows: Vec<Vec<String>> = store
                .cells_for(&exp)
                .into_iter()
                .map(|c| {
                    vec![
                        c.domain.clone(),
                        c.index.to_string(),
                        c.params.clone(),
                        c.plan.clone().unwrap_or_else(|| "-".into()),
                        c.rows.len().to_string(),
                        c.key[..12].to_string(),
                    ]
                })
                .collect();
            if rows.is_empty() {
                println!("no cached cells for '{exp}'");
            } else {
                print_table(&["domain", "index", "params", "plan", "rows", "key"], &rows);
            }
        }
        "diff" => {
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Keep);
            match store.stale() {
                Some(writer) => {
                    println!(
                        "stale: store written by code {writer}; running code is {}",
                        store.code()
                    );
                    println!(
                        "{} cached cell(s) would be invalidated on the next cached run",
                        store.len()
                    );
                    exit(1);
                }
                None => {
                    println!(
                        "current: store and binary agree on code {} ({} cells)",
                        store.code(),
                        store.len()
                    );
                }
            }
        }
        "gc" => {
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let store = open(&dir, shards, OnStale::Invalidate);
            match store.gc() {
                Ok(rep) => println!(
                    "gc: {} live cell(s) compacted; removed {} segment(s), {} stale archive(s)",
                    rep.live, rep.removed_segments, rep.removed_archives
                ),
                Err(e) => {
                    eprintln!("lab: gc failed: {e}");
                    exit(2);
                }
            }
        }
        "serve" => {
            let addr = take_flag(&mut args, "--addr").unwrap_or_else(|| "127.0.0.1:8091".into());
            let workers: usize = take_flag(&mut args, "--workers")
                .map(|w| w.parse().unwrap_or(4))
                .unwrap_or(4);
            let dir = store_dir(&mut args);
            let shards = store_shards(&mut args, &dir);
            let svc = Arc::new(service(open(&dir, shards, OnStale::Invalidate)));
            match serve(&addr, svc, workers) {
                Ok(server) => {
                    println!("lab: serving {} with {workers} worker(s)", server.addr());
                    println!("  GET  /status         store + cache counters");
                    println!("  GET  /metrics        counter snapshot + scheduler hit rate");
                    println!("  GET  /cells?exp=NAME cached cells with payloads");
                    println!(
                        "  POST /run            \
                         {{\"exp\":\"NAME\",\"smoke\":true,\"tier\":\"sampled:8\"}}"
                    );
                    loop {
                        std::thread::park();
                    }
                }
                Err(e) => {
                    eprintln!("lab: cannot bind {addr}: {e}");
                    exit(2);
                }
            }
        }
        _ => usage(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acceptance_blocks_of_every_exporter_shape_scan() {
        let text = r#"{
  "experiment": "exp_sort",
  "rows": [{"p": 4, "ratio": 1.24}],
  "acceptance": {
    "pass": true,
    "cells": 6,
    "worst_ratio": 1.36,
    "error_rate": 0.0,
    "gated_workloads": ["logp_ring_p64_x32", "bsp_shift_p64_x16"],
    "envelope_ok": false
  }
}"#;
        let gates = parse_acceptance(text).expect("scans");
        let find = |k: &str| {
            gates
                .iter()
                .find(|(key, _)| key == k)
                .map(|(_, g)| match g {
                    Gate::Bool(b) => b.to_string(),
                    Gate::Info(v) => v.clone(),
                })
                .expect("key present")
        };
        assert_eq!(find("pass"), "true");
        assert_eq!(find("envelope_ok"), "false");
        assert_eq!(find("cells"), "6");
        assert_eq!(find("worst_ratio"), "1.36");
        assert_eq!(find("gated_workloads"), "logp_ring_p64_x32 bsp_shift_p64_x16");
    }

    #[test]
    fn files_without_gates_are_rejected_not_skipped() {
        assert!(parse_acceptance("{\"experiment\": \"exp_engine\", \"rows\": []}").is_err());
        assert!(parse_acceptance("{\"acceptance\": {}}").is_err());
        assert!(parse_acceptance("{\"acceptance\": {\"cells\": 6}}").is_err());
    }

    #[test]
    fn the_faults_layout_still_wins_the_dispatch() {
        let text = r#"{"experiment": "exp_faults", "rows": [
            {"sim": "bsp-on-logp", "plan": "x", "h": 4, "clean": 10, "faulted": 12, "p": 8, "attempts": 1, "ok": true}
        ]}"#;
        let rows = parse_bench_faults(text).expect("faults layout parses");
        assert_eq!(rows, vec![("bsp-on-logp".to_string(), 4, 10, 12)]);
        assert!(parse_acceptance(text).is_err());
    }
}

//! Engine performance snapshot → `BENCH_engine.json`.
//!
//! Measures the hot paths this repo's perf work targets and writes one
//! machine-readable JSON file at the repository root so the perf trajectory
//! is tracked across PRs:
//!
//! * **timeline** — whole-machine LogP runs under `TimelineKind::BinaryHeap`
//!   (the pre-overhaul engine, kept selectable exactly for this comparison)
//!   vs `TimelineKind::Bucket` (the calendar queue). "before/after" on the
//!   same binary, same workloads.
//! * **payload** — construct+clone+read round-trips for an inline payload vs
//!   a spilled one. The spill path is the old representation (every payload
//!   heap-allocated a `Vec`), so this is the message-layer before/after.
//! * **sweep** — the `exp_table1`-style topology measurement job set run
//!   through the sweep harness on a 1-thread rayon pool and on a pool sized
//!   to the host. On a single-core host the parallel leg is skipped with a
//!   notice (a parallel sweep cannot speed up there; pretending to measure
//!   one reports noise as a slowdown).
//! * **scaling** — the sharded engine's growth curve: single-shard wall
//!   time of a fixed-rounds ring versus machine size `p` from 64 to 10⁶ by
//!   decades, plus shards-vs-speedup rows at `p = 10⁵` (skipped with a
//!   notice when the host has fewer than two cores).
//!
//! Wall-clock numbers are environment-dependent; the JSON records the host
//! parallelism next to them. Run via `scripts/regen_experiments.sh` or:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin bench_engine
//! ```
//!
//! With `--smoke` the binary instead runs each benched workload traced at
//! shard counts 1/2/4, byte-compares the traces, prints one PASS/FAIL line
//! per workload, and exits non-zero on any divergence — the CI determinism
//! gate, cheap enough for every push.
//!
//! If `CRITERION_JSONL` points at a `CRITERION_MINI_JSON` output file (the
//! `event_queue` micro-bench writes one), its measurements are embedded
//! under `"criterion"`.

use bvl_bench::sweep::sweep;
use bvl_logp::{
    LogpConfig, LogpMachine, LogpParams, LogpProcess, Op, ProcView, Script, TimelineKind,
};
use bvl_model::{Payload, ProcId, INLINE_WORDS};
use bvl_net::{measure_parameters, Hypercube, MeshOfTrees, RouterConfig, Topology};
use std::hint::black_box;
use std::time::Instant;

fn ring_scripts(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn hot_spot_scripts(p: usize, k: usize) -> Vec<Script> {
    let mut v = vec![Script::new(vec![Op::Recv; (p - 1) * k])];
    v.extend((1..p).map(|i| {
        Script::new((0..k).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    v
}

fn alltoall_scripts(p: usize) -> Vec<Script> {
    (0..p)
        .map(|me| {
            let mut ops = Vec::new();
            for t in 0..p - 1 {
                ops.push(Op::Send {
                    dst: ProcId(((me + 1 + t) % p) as u32),
                    payload: Payload::word(0, me as i64),
                });
            }
            ops.extend(std::iter::repeat_n(Op::Recv, p - 1));
            Script::new(ops)
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn run_machine(kind: TimelineKind, scripts: Vec<Script>, p: usize) -> u64 {
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let config = LogpConfig {
        timeline: kind,
        ..LogpConfig::default()
    };
    let mut m = LogpMachine::with_config(params, config, scripts);
    m.run().unwrap().makespan.get()
}

type ScriptBuilder = Box<dyn Fn() -> Vec<Script>>;

fn timeline_section(out: &mut Vec<String>) {
    let cases: Vec<(&str, usize, ScriptBuilder)> = vec![
        ("ring_x32", 64, Box::new(|| ring_scripts(64, 32))),
        ("hot_spot_stalling", 64, Box::new(|| hot_spot_scripts(64, 16))),
        ("all_to_all", 64, Box::new(|| alltoall_scripts(64))),
    ];
    for (name, p, build) in cases {
        // Equal work both sides; 10 machine runs per timing rep.
        let heap_ms = time_ms(5, || {
            for _ in 0..10 {
                black_box(run_machine(TimelineKind::BinaryHeap, build(), p));
            }
        });
        let bucket_ms = time_ms(5, || {
            for _ in 0..10 {
                black_box(run_machine(TimelineKind::Bucket, build(), p));
            }
        });
        eprintln!(
            "timeline/{name}: heap {heap_ms:.2} ms, bucket {bucket_ms:.2} ms, speedup {:.2}x",
            heap_ms / bucket_ms
        );
        out.push(format!(
            "    {{\"workload\": \"{name}\", \"p\": {p}, \"heap_ms\": {heap_ms:.3}, \
             \"bucket_ms\": {bucket_ms:.3}, \"speedup\": {:.3}}}",
            heap_ms / bucket_ms
        ));
    }
}

fn payload_section(out: &mut Vec<String>) {
    let inline = vec![7i64; INLINE_WORDS];
    let spill = vec![7i64; INLINE_WORDS * 2];
    let iters = 2_000_000u64;
    let bench = |words: &[i64]| -> f64 {
        let ms = time_ms(5, || {
            let mut acc = 0i64;
            for _ in 0..iters {
                let p = Payload::words(3, black_box(words));
                let q = p.clone();
                acc = acc.wrapping_add(q.data().iter().sum::<i64>());
            }
            black_box(acc);
        });
        ms * 1e6 / iters as f64 // ns per construct+clone+read
    };
    let inline_ns = bench(&inline);
    let spill_ns = bench(&spill);
    eprintln!(
        "payload: inline {inline_ns:.1} ns/op, spill {spill_ns:.1} ns/op, ratio {:.2}x",
        spill_ns / inline_ns
    );
    out.push(format!(
        "    {{\"case\": \"inline_{INLINE_WORDS}w\", \"ns_per_op\": {inline_ns:.1}}}"
    ));
    out.push(format!(
        "    {{\"case\": \"spill_{}w\", \"ns_per_op\": {spill_ns:.1}, \
         \"note\": \"spill = pre-overhaul always-Vec representation\"}}",
        INLINE_WORDS * 2
    ));
}

fn sweep_jobs() -> Vec<(&'static str, u32)> {
    vec![
        ("hypercube", 6),
        ("hypercube", 7),
        ("mesh_of_trees", 6),
        ("mesh_of_trees", 8),
        ("hypercube", 6),
        ("hypercube", 7),
        ("mesh_of_trees", 6),
        ("mesh_of_trees", 8),
    ]
}

fn run_sweep() -> f64 {
    let rep = sweep("bench-engine", 11, sweep_jobs(), |(kind, k), _job| {
        let topo: Box<dyn Topology> = match kind {
            "hypercube" => Box::new(Hypercube::new(k)),
            _ => Box::new(MeshOfTrees::new(1usize << (k / 2))),
        };
        let m = measure_parameters(&*topo, &[1, 2, 4, 8], 2, 5, RouterConfig::default());
        m.gamma
    });
    rep.elapsed.as_secs_f64() * 1e3
}

/// Best-of-3 sweep time on a dedicated rayon pool of `threads` workers.
/// An explicit pool is the only honest way to vary thread count here:
/// `RAYON_NUM_THREADS` is read once when the global pool first spins up,
/// so setting it mid-process silently measures the same pool twice.
fn sweep_in_pool(threads: usize) -> f64 {
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .expect("build rayon pool");
    time_ms(3, || {
        pool.install(|| {
            black_box(run_sweep());
        });
    })
}

fn sweep_section() -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let jobs = sweep_jobs().len();
    let t1_ms = sweep_in_pool(1);
    if host < 2 {
        eprintln!(
            "sweep: {jobs} jobs, 1 thread {t1_ms:.1} ms; single-core host, parallel leg skipped"
        );
        return format!(
            "  \"sweep\": {{\"jobs\": {jobs}, \"threads_1_ms\": {t1_ms:.3}, \"host_cpus\": {host}, \
             \"skipped\": \"single-core host: a parallel sweep cannot speed up here\"}}"
        );
    }
    let tn_ms = sweep_in_pool(host);
    let speedup = t1_ms / tn_ms;
    eprintln!(
        "sweep: {jobs} jobs, 1 thread {t1_ms:.1} ms, {host} threads {tn_ms:.1} ms, speedup {speedup:.2}x"
    );
    format!(
        "  \"sweep\": {{\"jobs\": {jobs}, \"threads_1_ms\": {t1_ms:.3}, \"threads_n_ms\": {tn_ms:.3}, \
         \"threads_n\": {host}, \"host_cpus\": {host}, \"speedup\": {speedup:.3}, \"efficiency\": {:.3}}}",
        speedup / host as f64
    )
}

/// A ring participant with constant per-processor memory (one word of
/// state, no op queue), so the scaling curve can reach p = 10⁶ without the
/// `Script` representation dominating the footprint.
struct RingProc {
    next: ProcId,
    rounds_left: u32,
    recv_pending: bool,
}

impl LogpProcess for RingProc {
    fn next_op(&mut self, _view: &ProcView) -> Op {
        if self.recv_pending {
            self.recv_pending = false;
            return Op::Recv;
        }
        if self.rounds_left == 0 {
            return Op::Halt;
        }
        self.rounds_left -= 1;
        self.recv_pending = true;
        Op::Send {
            dst: self.next,
            payload: Payload::word(0, 0),
        }
    }
}

/// Rounds per processor in the scaling-curve ring; total work is O(p · rounds).
const SCALING_ROUNDS: u32 = 4;

/// Wall time of one ring run at `p` processors under `shards` shards,
/// excluding machine construction (the curve tracks engine throughput, not
/// allocation).
fn ring_time_ms(p: usize, shards: usize) -> f64 {
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let config = LogpConfig {
        shards,
        ..LogpConfig::default()
    };
    let procs = (0..p)
        .map(|i| RingProc {
            next: ProcId(((i + 1) % p) as u32),
            rounds_left: SCALING_ROUNDS,
            recv_pending: false,
        })
        .collect();
    let mut m = LogpMachine::with_config(params, config, procs);
    let t0 = Instant::now();
    black_box(m.run().unwrap().makespan.get());
    t0.elapsed().as_secs_f64() * 1e3
}

fn scaling_section() -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut rows = Vec::new();
    for &p in &[64usize, 1_000, 10_000, 100_000, 1_000_000] {
        // Small machines are fast enough to repeat; the big ones are long
        // enough that a single run is already stable.
        let reps = if p <= 10_000 { 3 } else { 1 };
        let mut best = f64::INFINITY;
        for _ in 0..reps {
            best = best.min(ring_time_ms(p, 1));
        }
        eprintln!("scaling/ring_x{SCALING_ROUNDS}: p = {p}, {best:.1} ms (1 shard)");
        rows.push(format!("      {{\"p\": {p}, \"ms\": {best:.3}}}"));
    }
    let shard_json = if host >= 2 {
        let p = 100_000;
        let base = ring_time_ms(p, 1);
        let mut srows = vec![format!(
            "      {{\"shards\": 1, \"ms\": {base:.3}, \"speedup\": 1.0}}"
        )];
        for shards in [2usize, 4] {
            let ms = ring_time_ms(p, shards);
            eprintln!(
                "scaling/shards: p = {p}, {shards} shards {ms:.1} ms, speedup {:.2}x",
                base / ms
            );
            srows.push(format!(
                "      {{\"shards\": {shards}, \"ms\": {ms:.3}, \"speedup\": {:.3}}}",
                base / ms
            ));
        }
        format!(
            "\"shard_speedup\": {{\"p\": {p}, \"rows\": [\n{}\n    ]}}",
            srows.join(",\n")
        )
    } else {
        eprintln!("scaling/shards: single-core host, shard-speedup leg skipped");
        format!(
            "\"shard_speedup\": {{\"host_cpus\": {host}, \
             \"skipped\": \"single-core host: shard speedup is not measurable here\"}}"
        )
    };
    format!(
        "  \"scaling\": {{\n    \"workload\": \"ring_x{SCALING_ROUNDS}\",\n    \
         \"single_shard\": [\n{}\n    ],\n    {shard_json}\n  }}",
        rows.join(",\n")
    )
}

/// `--smoke`: the CI determinism gate. Each benched workload runs traced at
/// shard counts 1, 2, and 4; the traces must be byte-identical.
fn smoke() -> i32 {
    let cases: Vec<(&str, usize, ScriptBuilder)> = vec![
        ("ring_x32", 64, Box::new(|| ring_scripts(64, 32))),
        ("hot_spot_stalling", 64, Box::new(|| hot_spot_scripts(64, 16))),
        ("all_to_all", 64, Box::new(|| alltoall_scripts(64))),
    ];
    let mut failed = false;
    for (name, p, build) in cases {
        let run = |shards: usize| {
            let params = LogpParams::new(p, 16, 1, 2).unwrap();
            let config = LogpConfig {
                shards,
                ..LogpConfig::traced()
            };
            let mut m = LogpMachine::with_config(params, config, build());
            let report = m.run().unwrap();
            (report.makespan, format!("{:?}", m.trace().events()))
        };
        let (makespan, base) = run(1);
        let ok = [2usize, 4].iter().all(|&s| {
            let (mk, trace) = run(s);
            mk == makespan && trace == base
        });
        println!(
            "smoke/{name}: {}",
            if ok {
                "PASS"
            } else {
                "FAIL (trace diverged across shard counts 1/2/4)"
            }
        );
        failed |= !ok;
    }
    if failed {
        1
    } else {
        0
    }
}

fn criterion_section() -> Option<String> {
    let path = std::env::var("CRITERION_JSONL").ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return None;
    }
    Some(format!(
        "  \"criterion\": [\n    {}\n  ]",
        lines.join(",\n    ")
    ))
}

fn main() {
    if std::env::args().skip(1).any(|a| a == "--smoke") {
        std::process::exit(smoke());
    }
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut timeline = Vec::new();
    timeline_section(&mut timeline);
    let mut payload = Vec::new();
    payload_section(&mut payload);
    let sweep_json = sweep_section();
    let scaling_json = scaling_section();

    let mut sections = vec![
        format!("  \"host_cpus\": {host}"),
        format!("  \"timeline\": [\n{}\n  ]", timeline.join(",\n")),
        format!("  \"payload\": [\n{}\n  ]", payload.join(",\n")),
        sweep_json,
        scaling_json,
    ];
    if let Some(crit) = criterion_section() {
        sections.push(crit);
    }
    let json = format!("{{\n{}\n}}\n", sections.join(",\n"));
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("wrote BENCH_engine.json");
}

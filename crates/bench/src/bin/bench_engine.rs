//! Engine performance snapshot → `BENCH_engine.json`.
//!
//! Measures the hot paths this repo's perf work targets and writes one
//! machine-readable JSON file at the repository root so the perf trajectory
//! is tracked across PRs:
//!
//! * **timeline** — whole-machine LogP runs under `TimelineKind::BinaryHeap`
//!   (the pre-overhaul engine, kept selectable exactly for this comparison)
//!   vs `TimelineKind::Bucket` (the calendar queue). "before/after" on the
//!   same binary, same workloads.
//! * **payload** — construct+clone+read round-trips for an inline payload vs
//!   a spilled one. The spill path is the old representation (every payload
//!   heap-allocated a `Vec`), so this is the message-layer before/after.
//! * **sweep** — the `exp_table1`-style topology measurement job set run
//!   through the sweep harness at 1 thread and at the host's parallelism.
//!
//! Wall-clock numbers are environment-dependent; the JSON records the host
//! parallelism next to them. Run via `scripts/regen_experiments.sh` or:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin bench_engine
//! ```
//!
//! If `CRITERION_JSONL` points at a `CRITERION_MINI_JSON` output file (the
//! `event_queue` micro-bench writes one), its measurements are embedded
//! under `"criterion"`.

use bvl_bench::sweep::sweep;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script, TimelineKind};
use bvl_model::{Payload, ProcId, INLINE_WORDS};
use bvl_net::{measure_parameters, Hypercube, MeshOfTrees, RouterConfig, Topology};
use std::hint::black_box;
use std::time::Instant;

fn ring_scripts(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn hot_spot_scripts(p: usize, k: usize) -> Vec<Script> {
    let mut v = vec![Script::new(vec![Op::Recv; (p - 1) * k])];
    v.extend((1..p).map(|i| {
        Script::new((0..k).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    v
}

fn alltoall_scripts(p: usize) -> Vec<Script> {
    (0..p)
        .map(|me| {
            let mut ops = Vec::new();
            for t in 0..p - 1 {
                ops.push(Op::Send {
                    dst: ProcId(((me + 1 + t) % p) as u32),
                    payload: Payload::word(0, me as i64),
                });
            }
            ops.extend(std::iter::repeat_n(Op::Recv, p - 1));
            Script::new(ops)
        })
        .collect()
}

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn run_machine(kind: TimelineKind, scripts: Vec<Script>, p: usize) -> u64 {
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let config = LogpConfig {
        timeline: kind,
        ..LogpConfig::default()
    };
    let mut m = LogpMachine::with_config(params, config, scripts);
    m.run().unwrap().makespan.get()
}

type ScriptBuilder = Box<dyn Fn() -> Vec<Script>>;

fn timeline_section(out: &mut Vec<String>) {
    let cases: Vec<(&str, usize, ScriptBuilder)> = vec![
        ("ring_x32", 64, Box::new(|| ring_scripts(64, 32))),
        ("hot_spot_stalling", 64, Box::new(|| hot_spot_scripts(64, 16))),
        ("all_to_all", 64, Box::new(|| alltoall_scripts(64))),
    ];
    for (name, p, build) in cases {
        // Equal work both sides; 10 machine runs per timing rep.
        let heap_ms = time_ms(5, || {
            for _ in 0..10 {
                black_box(run_machine(TimelineKind::BinaryHeap, build(), p));
            }
        });
        let bucket_ms = time_ms(5, || {
            for _ in 0..10 {
                black_box(run_machine(TimelineKind::Bucket, build(), p));
            }
        });
        eprintln!(
            "timeline/{name}: heap {heap_ms:.2} ms, bucket {bucket_ms:.2} ms, speedup {:.2}x",
            heap_ms / bucket_ms
        );
        out.push(format!(
            "    {{\"workload\": \"{name}\", \"p\": {p}, \"heap_ms\": {heap_ms:.3}, \
             \"bucket_ms\": {bucket_ms:.3}, \"speedup\": {:.3}}}",
            heap_ms / bucket_ms
        ));
    }
}

fn payload_section(out: &mut Vec<String>) {
    let inline = vec![7i64; INLINE_WORDS];
    let spill = vec![7i64; INLINE_WORDS * 2];
    let iters = 2_000_000u64;
    let bench = |words: &[i64]| -> f64 {
        let ms = time_ms(5, || {
            let mut acc = 0i64;
            for _ in 0..iters {
                let p = Payload::words(3, black_box(words));
                let q = p.clone();
                acc = acc.wrapping_add(q.data().iter().sum::<i64>());
            }
            black_box(acc);
        });
        ms * 1e6 / iters as f64 // ns per construct+clone+read
    };
    let inline_ns = bench(&inline);
    let spill_ns = bench(&spill);
    eprintln!(
        "payload: inline {inline_ns:.1} ns/op, spill {spill_ns:.1} ns/op, ratio {:.2}x",
        spill_ns / inline_ns
    );
    out.push(format!(
        "    {{\"case\": \"inline_{INLINE_WORDS}w\", \"ns_per_op\": {inline_ns:.1}}}"
    ));
    out.push(format!(
        "    {{\"case\": \"spill_{}w\", \"ns_per_op\": {spill_ns:.1}, \
         \"note\": \"spill = pre-overhaul always-Vec representation\"}}",
        INLINE_WORDS * 2
    ));
}

fn sweep_jobs() -> Vec<(&'static str, u32)> {
    vec![
        ("hypercube", 6),
        ("hypercube", 7),
        ("mesh_of_trees", 6),
        ("mesh_of_trees", 8),
        ("hypercube", 6),
        ("hypercube", 7),
        ("mesh_of_trees", 6),
        ("mesh_of_trees", 8),
    ]
}

fn run_sweep() -> f64 {
    let rep = sweep("bench-engine", 11, sweep_jobs(), |(kind, k), _job| {
        let topo: Box<dyn Topology> = match kind {
            "hypercube" => Box::new(Hypercube::new(k)),
            _ => Box::new(MeshOfTrees::new(1usize << (k / 2))),
        };
        let m = measure_parameters(&*topo, &[1, 2, 4, 8], 2, 5, RouterConfig::default());
        m.gamma
    });
    rep.elapsed.as_secs_f64() * 1e3
}

fn sweep_section() -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let t1_ms = time_ms(3, || {
        black_box(run_sweep());
    });
    std::env::set_var("RAYON_NUM_THREADS", host.to_string());
    let tn_ms = time_ms(3, || {
        black_box(run_sweep());
    });
    std::env::remove_var("RAYON_NUM_THREADS");
    let speedup = t1_ms / tn_ms;
    eprintln!(
        "sweep: {} jobs, 1 thread {t1_ms:.1} ms, {host} threads {tn_ms:.1} ms, speedup {speedup:.2}x",
        sweep_jobs().len()
    );
    format!(
        "  \"sweep\": {{\"jobs\": {}, \"threads_1_ms\": {t1_ms:.3}, \"threads_n_ms\": {tn_ms:.3}, \
         \"threads_n\": {host}, \"speedup\": {speedup:.3}, \"efficiency\": {:.3}}}",
        sweep_jobs().len(),
        speedup / host as f64
    )
}

fn criterion_section() -> Option<String> {
    let path = std::env::var("CRITERION_JSONL").ok()?;
    let text = std::fs::read_to_string(path).ok()?;
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    if lines.is_empty() {
        return None;
    }
    Some(format!(
        "  \"criterion\": [\n    {}\n  ]",
        lines.join(",\n    ")
    ))
}

fn main() {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut timeline = Vec::new();
    timeline_section(&mut timeline);
    let mut payload = Vec::new();
    payload_section(&mut payload);
    let sweep_json = sweep_section();

    let mut sections = vec![
        format!("  \"host_cpus\": {host}"),
        format!("  \"timeline\": [\n{}\n  ]", timeline.join(",\n")),
        format!("  \"payload\": [\n{}\n  ]", payload.join(",\n")),
        sweep_json,
    ];
    if let Some(crit) = criterion_section() {
        sections.push(crit);
    }
    let json = format!("{{\n{}\n}}\n", sections.join(",\n"));
    std::fs::write("BENCH_engine.json", &json).expect("write BENCH_engine.json");
    println!("{json}");
    eprintln!("wrote BENCH_engine.json");
}

//! E-STACK: composable simulation stacks grounded on Table 1 networks.
//!
//! The paper's program is a tower: LogP and BSP are abstractions of a
//! point-to-point network whose parameters (`γ`, `δ` per Table 1) are
//! *measured*, and Theorems 1–3 relate the two abstractions to each other.
//! This experiment runs the full tower on one guest workload per topology:
//!
//! 1. **Measure** the topology's `(γ̂, δ̂)` by routing random h-relations
//!    (§5), then round them into a valid LogP quadruple `(p, L̂, 1, Ĝ)`.
//! 2. **Abstract run** — the guest over the pure latency-`L̂` medium
//!    (`Stacked<LogpSpec, PolicyMedium>`): the LogP model's account.
//! 3. **Grounded run** — the *same* guest over the network-backed medium
//!    (`Stacked<LogpSpec, NetMedium>`): per-link store-and-forward
//!    contention on the real topology. The ratio `grounded/abstract` is how
//!    faithfully LogP(`Ĝ`, `L̂`) abstracts this network for this traffic.
//! 4. **Hosted run** — the guest simulated on a BSP(`g=Ĝ`, `ℓ=L̂`) machine
//!    (Theorem 1). The measured slowdown is compared against the theorem's
//!    `1 + g/Ĝ + ℓ/L̂` bound evaluated at the measured parameters.
//!
//! The tower lives in [`bvl_bench::labexp::stack`]; the grid is compiled
//! from `scenarios/stack.scn` and runs through the `bvl-lab` scheduler
//! (cached when `BVL_LAB_DIR` is set; the butterfly cell is forced so its
//! registry carries real spans for `--trace-out`). One `SUMMARY` line per
//! topology, rebuilt from the cached row so warm and cold runs are
//! bit-identical. The completed grid passes the Theorem 1 lower-bound
//! audit before printing. Run via `scripts/regen_experiments.sh` or:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin exp_stack
//! ```

use bvl_bench::labexp::{self, stack};
use bvl_bench::{obs, scn};

fn main() {
    println!("E-STACK: LogP guest over measured Table 1 networks (abstract vs grounded vs Theorem 1)");
    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("stack", false);

    // Two Table 1 rows with equal processor counts (p = 32): the multi-port
    // hypercube (γ = Θ(1), δ = Θ(log p)) and the butterfly (γ = δ = Θ(log p)).
    // The forced butterfly cell attaches this registry so `--trace-out`
    // exports the grounded/hosted span stream.
    let registry = obs::capture_registry("exp_stack", 0, stack::FLAGGED_P);
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], Some(&registry));
    eprintln!("[sweep] stack: {}", rep.summary());

    for rows in &rep.rows {
        let r = &rows[0];
        obs::Summary::new("exp_stack")
            .kv("topology", &r[0])
            .kv("p", &r[1])
            .kv("gamma", &r[2])
            .kv("delta", &r[3])
            .kv("r2", &r[4])
            .kv("G", &r[5])
            .kv("L", &r[6])
            .kv("t_abstract", &r[7])
            .kv("t_grounded", &r[8])
            .kv("grounding_ratio", &r[9])
            .kv("t_hosted_bsp", &r[10])
            .kv("thm1_slowdown", &r[11])
            .kv("thm1_bound", &r[12])
            .kv("within_2x_bound", &r[13])
            .emit();
        // Theorem 1's bound suppresses a small constant (the host superstep
        // is ⌈L/2⌉ guest cycles; acquisition serialization adds a factor
        // ≤ 2) — the audit enforces the floor, this asserts the ceiling.
        assert!(
            r[13] == "true",
            "{}: Theorem 1 slowdown {} exceeds 2x bound {}",
            r[0],
            r[11],
            r[12]
        );
    }
    obs::write_spans_if_requested(&registry);
}

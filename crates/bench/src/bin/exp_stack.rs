//! E-STACK: composable simulation stacks grounded on Table 1 networks.
//!
//! The paper's program is a tower: LogP and BSP are abstractions of a
//! point-to-point network whose parameters (`γ`, `δ` per Table 1) are
//! *measured*, and Theorems 1–3 relate the two abstractions to each other.
//! This experiment runs the full tower on one guest workload per topology:
//!
//! 1. **Measure** the topology's `(γ̂, δ̂)` by routing random h-relations
//!    (§5), then round them into a valid LogP quadruple `(p, L̂, 1, Ĝ)`.
//! 2. **Abstract run** — the guest over the pure latency-`L̂` medium
//!    (`Stacked<LogpSpec, PolicyMedium>`): the LogP model's account.
//! 3. **Grounded run** — the *same* guest over the network-backed medium
//!    (`Stacked<LogpSpec, NetMedium>`): per-link store-and-forward
//!    contention on the real topology. The ratio `grounded/abstract` is how
//!    faithfully LogP(`Ĝ`, `L̂`) abstracts this network for this traffic.
//! 4. **Hosted run** — the guest simulated on a BSP(`g=Ĝ`, `ℓ=L̂`) machine
//!    (Theorem 1). The measured slowdown is compared against the theorem's
//!    `1 + g/Ĝ + ℓ/L̂` bound evaluated at the measured parameters.
//!
//! One `SUMMARY` line per topology. Run via `scripts/regen_experiments.sh`
//! or:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin exp_stack
//! ```

use bvl_bench::obs;
use bvl_bsp::BspParams;
use bvl_core::{simulate_logp_on_bsp, Theorem1Config};
use bvl_exec::{RunOptions, RunStack};
use bvl_logp::{DeliveryPolicy, LogpParams, LogpSpec, Op, PolicyMedium, Script};
use bvl_model::{Payload, ProcId};
use bvl_net::{measure_parameters, Butterfly, Hypercube, NetMedium, RouterConfig, Topology};

const ROUNDS: usize = 8;
const SEED: u64 = 1996;

/// The guest workload: a `ROUNDS`-round neighbour ring — each processor
/// sends one word right and receives one word from the left per round.
/// An exact 1-relation per round, stall-free for any capacity ≥ 1.
fn ring(p: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..ROUNDS {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn run_topology<T: Topology + Clone + Send + 'static>(topo: T) {
    // 1. Measure γ̂ (slope) and δ̂ (intercept) and round into valid LogP
    //    parameters: the paper's constraint max{2, o} ≤ G ≤ L.
    let measured = measure_parameters(&topo, &[1, 2, 4, 8], 3, SEED, RouterConfig::default());
    let p = measured.p;
    let g_hat = (measured.gamma.round() as u64).max(2);
    let l_hat = (measured.delta.round() as u64).max(g_hat);
    let params = LogpParams::new(p, l_hat, 1, g_hat).expect("measured params valid");

    let opts = RunOptions::new().shards(bvl_obs::cli::shards()).seed(SEED);

    // 2. The abstract LogP account of the workload.
    let abstract_run = LogpSpec::new(params, ring(p))
        .over(PolicyMedium::new(params, DeliveryPolicy::AtLatencyBound))
        .run_stack(&opts)
        .expect("abstract stack completes");
    let t_abstract = abstract_run.report.makespan;

    // 3. The same guest grounded on the network, with an enabled registry
    //    so `--trace-out` can capture the stacked run's span stream.
    let registry = obs::capture_registry("exp_stack", 0, p);
    let grounded_run = LogpSpec::new(params, ring(p))
        .over(NetMedium::new(topo.clone(), params.capacity()))
        .run_stack(&opts.clone().registry(&registry))
        .expect("grounded stack completes");
    let t_grounded = grounded_run.report.makespan;
    assert_eq!(
        grounded_run.report.delivered, abstract_run.report.delivered,
        "both transports deliver the full workload"
    );

    // 4. Theorem 1: host the guest on BSP(g = Ĝ, ℓ = L̂) — the BSP machine
    //    grounded on the same measured network — and compare the slowdown
    //    against 1 + g/G + ℓ/L at the measured values. The registry rides
    //    along so `--trace-out` exports the host's superstep spans (the
    //    stall-free LogP runs contribute no spans of their own).
    let bsp = BspParams::new(p, g_hat, l_hat).expect("measured BSP params valid");
    let hosted = simulate_logp_on_bsp(
        params,
        bsp,
        ring(p),
        Theorem1Config::default(),
        &opts.clone().registry(&registry),
    )
    .expect("Theorem 1 simulation completes");
    let slowdown = hosted.bsp.cost.get() as f64 / t_abstract.get() as f64;
    let bound = 1.0 + bsp.g as f64 / params.g as f64 + bsp.l as f64 / params.l as f64;
    // Theorem 1's bound suppresses a small constant (the host superstep is
    // ⌈L/2⌉ guest cycles; acquisition serialization adds a factor ≤ 2).
    let within = slowdown <= 2.0 * bound;

    obs::Summary::new("exp_stack")
        .kv("topology", &measured.name)
        .kv("p", p)
        .f2("gamma", measured.gamma)
        .f2("delta", measured.delta)
        .f3("r2", measured.r2)
        .kv("G", g_hat)
        .kv("L", l_hat)
        .kv("t_abstract", t_abstract.get())
        .kv("t_grounded", t_grounded.get())
        .f2(
            "grounding_ratio",
            t_grounded.get() as f64 / t_abstract.get() as f64,
        )
        .kv("t_hosted_bsp", hosted.bsp.cost.get())
        .f2("thm1_slowdown", slowdown)
        .f2("thm1_bound", bound)
        .kv("within_2x_bound", within)
        .emit();
    assert!(
        within,
        "{}: Theorem 1 slowdown {slowdown:.2} exceeds 2x bound {bound:.2}",
        measured.name
    );
    obs::write_spans_if_requested(&registry);
}

fn main() {
    println!("E-STACK: LogP guest over measured Table 1 networks (abstract vs grounded vs Theorem 1)");
    // Two Table 1 rows with equal processor counts (p = 32): the multi-port
    // hypercube (γ = Θ(1), δ = Θ(log p)) and the butterfly (γ = δ = Θ(log p)).
    run_topology(Hypercube::new(5));
    run_topology(Butterfly::new(3));
}

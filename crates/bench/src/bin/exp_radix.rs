//! E-RADIX: §6's Radixsort capacity hazard — the same counting phase under
//! uniform vs skewed keys, naive vs capacity-respecting schedules, and the
//! BSP superstep that prices it predictably either way.

use bvl_algos::logp::radix::{naive_count_phase, reference_counts, staggered_count_phase};
use bvl_bench::{banner, f2, obs, print_table};
use bvl_bsp::BspParams;
use bvl_logp::LogpParams;
use bvl_model::{Steps, Word};
use bvl_obs::{Span, SpanKind};

fn main() {
    let p = 16usize;
    let digits = 16usize;
    let params = LogpParams::new(p, 8, 1, 2).unwrap();
    println!("LogP machine: p = {p}, L = 8, o = 1, G = 2 (capacity 4); {digits} digit owners");

    // Balanced: every processor holds every digit equally.
    let balanced: Vec<Vec<Word>> = (0..p)
        .map(|_| (0..64).map(|q| (q % digits) as Word).collect())
        .collect();
    // Skew levels: keys drawn from only the first `present` digits, so the
    // counting relation concentrates on fewer owners.
    let skew = |present: usize| -> Vec<Vec<Word>> {
        (0..p)
            .map(|_| (0..64).map(|q| (q % present) as Word).collect())
            .collect()
    };

    banner("Counting phase on LogP: naive vs capacity-respecting schedule");
    let mut rows = Vec::new();
    // One synthesized span per skew level (naive schedule, back to back on a
    // shared clock) plus the hot-spot stall count, for `--trace-out` and the
    // summary line.
    let registry = obs::capture_registry("exp_radix", 0, p);
    let mut clock = Steps::ZERO;
    let mut hot_spot = (Steps::ZERO, 0u64);
    for (level, (name, keys)) in [
        ("16 digits (balanced)", balanced.clone()),
        ("8 digits", skew(8)),
        ("4 digits", skew(4)),
        ("1 digit (hot spot)", skew(1)),
    ]
    .into_iter()
    .enumerate()
    {
        let naive = naive_count_phase(params, &keys, digits, 1).unwrap();
        let stag = staggered_count_phase(params, &keys, digits, 1).unwrap();
        assert_eq!(naive.counts, reference_counts(&keys, digits));
        let end = clock + naive.makespan;
        registry.span(Span::new(SpanKind::Routing, clock, end).at_index(level as u64));
        clock = end;
        hot_spot = (naive.makespan, naive.stall_episodes);
        rows.push(vec![
            name.into(),
            format!("{}", naive.makespan.get()),
            format!("{}", naive.stall_episodes),
            f2(naive.mean_latency),
            format!("{}", stag.makespan.get()),
            format!("{}", stag.stall_episodes),
            f2(stag.mean_latency),
        ]);
    }
    print_table(
        &[
            "keys",
            "naive time",
            "naive stalls",
            "naive latency",
            "stag time",
            "stag stalls",
            "stag latency",
        ],
        &rows,
    );
    println!();
    println!("(naive stalls scale with skew and its per-message latency balloons —");
    println!(" 'relations that may violate the capacity constraint and whose cost");
    println!(" cannot be estimated reliably'; the staggered rewrite is stall-free");
    println!(" but required global knowledge of the senders per owner)");

    banner("The same phase as one BSP superstep: cost is w + g*h + l, always");
    let bsp = BspParams::new(p, 2, 8).unwrap();
    let mut rows = Vec::new();
    for (name, h) in [("balanced", p as u64), ("100% skew", p as u64)] {
        // Balanced: every owner receives p messages (h = p). Full skew:
        // owner 0 receives p (h = p as well) — BSP prices both identically.
        rows.push(vec![
            name.into(),
            format!("{h}"),
            format!("{}", bsp.superstep_cost(4, h)),
        ]);
    }
    print_table(&["keys", "h", "superstep cost"], &rows);
    println!();
    println!("(on BSP the programmer never sees the capacity constraint: any");
    println!(" h-relation is legal and priced by the same two parameters)");

    obs::Summary::new("exp_radix")
        .kv("cell", "naive_hot_spot")
        .kv("makespan", hot_spot.0.get())
        .kv("stall_episodes", hot_spot.1)
        .kv("skew_levels", 4)
        .kv("spans", registry.spans().len())
        .emit();
    obs::write_spans_if_requested(&registry);
}

//! E-ANOM: the §2.2 constraint anomalies, executed.
//!
//! * `G = 1`: L simultaneous senders to one node are all accepted without
//!   stalling and delivered within L — a one-message-per-step burst into a
//!   single node. `G = 2` on the same pattern immediately stalls instead.
//! * `G > L`: the paper's periodic two-sender schedule never violates the
//!   capacity constraint yet grows the receiver's input buffer without
//!   bound; the control row (`G = L`) stays flat.

use bvl_bench::{banner, obs, print_table};
use bvl_core::anomalies::{gap_exceeds_latency_anomaly, gap_one_anomaly};
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use bvl_exec::RunOptions;

fn main() {
    banner("G = 1 anomaly: L senders -> one destination, simultaneously");
    let mut rows = Vec::new();
    for (l, g) in [(8u64, 1u64), (8, 2), (16, 1), (16, 2)] {
        let rep = gap_one_anomaly(l, 1, g, 1).expect("runs");
        rows.push(vec![
            format!("{l}"),
            format!("{g}"),
            format!("{}", rep.senders),
            format!("{}", rep.stalled),
            format!("{}", rep.all_within_latency),
            format!("{}", rep.max_deliveries_per_step),
        ]);
    }
    print_table(
        &[
            "L", "G", "senders", "stalled", "all within L", "max deliveries/step",
        ],
        &rows,
    );
    println!();
    println!("(G=1 rows: no stall, all within L, burst = senders — the 'strong");
    println!(" performance requirement' the paper rules out by requiring G >= 2)");

    banner("G > L anomaly: receiver buffer growth under the paper's periodic schedule");
    let mut rows = Vec::new();
    let mut worst_buffer = 0usize;
    for n in [10u64, 20, 40, 80] {
        let rep = gap_exceeds_latency_anomaly(2, 6, n, 1).expect("runs");
        worst_buffer = worst_buffer.max(rep.peak_buffer);
        rows.push(vec![
            "G=6 > L=2".into(),
            format!("{n}"),
            format!("{}", rep.stall_free),
            format!("{}", rep.delivered),
            format!("{}", rep.peak_buffer),
        ]);
    }
    print_table(
        &["params", "msgs/sender", "stall-free", "delivered", "peak buffer"],
        &rows,
    );
    println!();
    println!("(peak buffer grows ~ n/2: unbounded buffers, hence the G <= L rule;");
    println!(" with G <= L the same schedule keeps the buffer constant — verified");
    println!(" in the anomalies test suite)");

    // Flagged cell: the G = 1 burst (L senders -> P0) re-run directly with a
    // traced, registry-fed machine so `--trace-out` shows the simultaneous
    // deliveries the anomaly is about.
    let l = 16u64;
    // G = 1 is exactly what §2.2 rules out, so it needs the unchecked
    // constructor — same as the anomaly harness itself.
    let params = LogpParams::new_unchecked(l as usize + 1, l, 1, 1);
    let mut scripts = vec![Script::new(vec![Op::Recv; l as usize])];
    scripts.extend((1..=l).map(|i| {
        Script::new([Op::Send {
            dst: ProcId(0),
            payload: Payload::word(0, i as i64),
        }])
    }));
    let config = LogpConfig {
        forbid_stalling: false,
        trace: true,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, scripts);
    let registry = obs::capture_registry("exp_anomalies", 0, params.p);
    machine.instrument(&RunOptions::new().shards(bvl_obs::cli::shards()).registry(&registry));
    let rep = machine.run().expect("burst completes");
    obs::Summary::new("exp_anomalies")
        .kv("cell", "gap1_burst_L16")
        .kv("makespan", rep.makespan.get())
        .kv("stall_episodes", rep.stall_episodes)
        .kv("delivered", rep.delivered)
        .kv("burst_max_buffer", rep.max_buffer())
        .kv("periodic_peak_buffer", worst_buffer)
        .emit();
    obs::write_trace_if_requested(machine.trace(), &registry);
}

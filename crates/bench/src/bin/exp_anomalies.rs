//! E-ANOM: the §2.2 constraint anomalies, executed.
//!
//! * `G = 1`: L simultaneous senders to one node are all accepted without
//!   stalling and delivered within L — a one-message-per-step burst into a
//!   single node. `G = 2` on the same pattern immediately stalls instead.
//! * `G > L`: the paper's periodic two-sender schedule never violates the
//!   capacity constraint yet grows the receiver's input buffer without
//!   bound; the control row (`G = L`) stays flat.

use bvl_bench::{banner, print_table};
use bvl_core::anomalies::{gap_exceeds_latency_anomaly, gap_one_anomaly};

fn main() {
    banner("G = 1 anomaly: L senders -> one destination, simultaneously");
    let mut rows = Vec::new();
    for (l, g) in [(8u64, 1u64), (8, 2), (16, 1), (16, 2)] {
        let rep = gap_one_anomaly(l, 1, g, 1).expect("runs");
        rows.push(vec![
            format!("{l}"),
            format!("{g}"),
            format!("{}", rep.senders),
            format!("{}", rep.stalled),
            format!("{}", rep.all_within_latency),
            format!("{}", rep.max_deliveries_per_step),
        ]);
    }
    print_table(
        &[
            "L", "G", "senders", "stalled", "all within L", "max deliveries/step",
        ],
        &rows,
    );
    println!();
    println!("(G=1 rows: no stall, all within L, burst = senders — the 'strong");
    println!(" performance requirement' the paper rules out by requiring G >= 2)");

    banner("G > L anomaly: receiver buffer growth under the paper's periodic schedule");
    let mut rows = Vec::new();
    for n in [10u64, 20, 40, 80] {
        let rep = gap_exceeds_latency_anomaly(2, 6, n, 1).expect("runs");
        rows.push(vec![
            "G=6 > L=2".into(),
            format!("{n}"),
            format!("{}", rep.stall_free),
            format!("{}", rep.delivered),
            format!("{}", rep.peak_buffer),
        ]);
    }
    print_table(
        &["params", "msgs/sender", "stall-free", "delivered", "peak buffer"],
        &rows,
    );
    println!();
    println!("(peak buffer grows ~ n/2: unbounded buffers, hence the G <= L rule;");
    println!(" with G <= L the same schedule keeps the buffer constant — verified");
    println!(" in the anomalies test suite)");
}

//! E-PART: §6 partitionability — LogP tenants on disjoint processors do not
//! interfere; BSP tenants share every barrier.

use bvl_bench::{banner, f2, obs, print_table};
use bvl_bsp::{BspParams, FnProcess, Status};
use bvl_core::partition::{bsp_coschedule, logp_coschedule};
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use bvl_exec::RunOptions;

fn logp_tenant(rounds: u64, compute: u64) -> impl FnMut(usize) -> Vec<Script> {
    move |p: usize| {
        (0..p)
            .map(|i| {
                let mut ops = vec![Op::Compute(compute)];
                for r in 0..rounds {
                    ops.push(Op::Send {
                        dst: ProcId(((i + 1) % p) as u32),
                        payload: Payload::word(r as u32, i as i64),
                    });
                    ops.push(Op::Recv);
                }
                Script::new(ops)
            })
            .collect()
    }
}

fn bsp_tenant(rounds: u64, compute: u64) -> impl FnMut(usize) -> Vec<FnProcess<i64>> {
    move |p: usize| {
        let _ = p;
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    if ctx.superstep_index() > 0 {
                        *acc += ctx.recv().map(|m| m.payload.expect_word()).unwrap_or(0);
                    }
                    if ctx.superstep_index() < rounds {
                        ctx.charge(compute);
                        let right = ProcId(((ctx.me().0 as usize + 1) % ctx.p()) as u32);
                        ctx.send(right, Payload::word(0, 1));
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    }
}

fn main() {
    banner("LogP: two tenants on disjoint halves of one machine (p = 16)");
    let logp = LogpParams::new(16, 8, 1, 2).unwrap();
    let mut rows = Vec::new();
    let mut logp_max_interf = 0.0f64;
    for (name_a, ra, ca, name_b, rb, cb) in [
        ("light (1 round)", 1u64, 0u64, "heavy (8 rounds + compute)", 8u64, 400u64),
        ("light", 1, 0, "light", 1, 0),
        ("heavy", 8, 400, "heavy", 8, 400),
    ] {
        let rep = logp_coschedule(logp, logp_tenant(ra, ca), logp_tenant(rb, cb), 1).unwrap();
        let (ia, ib) = rep.interference();
        logp_max_interf = logp_max_interf.max(ia).max(ib);
        rows.push(vec![
            format!("{name_a} + {name_b}"),
            format!("{}", rep.solo_a.get()),
            format!("{}", rep.tenant_a.get()),
            f2(ia),
            format!("{}", rep.solo_b.get()),
            format!("{}", rep.tenant_b.get()),
            f2(ib),
        ]);
    }
    print_table(
        &["tenants", "A solo", "A coshed", "A interf", "B solo", "B coshed", "B interf"],
        &rows,
    );
    println!();
    println!("(interference exactly 1.00 in every pairing: LogP executions on");
    println!(" disjoint processors are independent — natural multiuser mode)");

    banner("BSP: the same tenant pairings through one global barrier");
    let bsp = BspParams::new(16, 2, 16).unwrap();
    let mut rows = Vec::new();
    let mut bsp_max_interf = 0.0f64;
    for (name_a, ra, ca, name_b, rb, cb) in [
        ("light (1 round)", 1u64, 0u64, "heavy (8 rounds + compute)", 8u64, 400u64),
        ("light", 1, 0, "light", 1, 0),
        ("heavy", 8, 400, "heavy", 8, 400),
    ] {
        let rep = bsp_coschedule(bsp, bsp_tenant(ra, ca), bsp_tenant(rb, cb)).unwrap();
        let (ia, ib) = rep.interference();
        bsp_max_interf = bsp_max_interf.max(ia).max(ib);
        rows.push(vec![
            format!("{name_a} + {name_b}"),
            format!("{}", rep.solo_a.get()),
            format!("{}", rep.tenant_a.get()),
            f2(ia),
            format!("{}", rep.solo_b.get()),
            format!("{}", rep.tenant_b.get()),
            f2(ib),
        ]);
    }
    print_table(
        &["tenants", "A solo", "A coshed", "A interf", "B solo", "B coshed", "B interf"],
        &rows,
    );
    println!();
    println!("(the light tenant pays for every heavy superstep it shares a barrier");
    println!(" with — the global-synchronization drawback §2.1/§6 describe)");

    // Flagged cell: the heavy LogP tenant solo on the full machine, traced
    // and registry-fed, so `--trace-out` shows one tenant's event stream.
    let scripts = logp_tenant(8, 400)(16);
    let config = LogpConfig {
        trace: true,
        ..LogpConfig::stall_free()
    };
    let mut machine = LogpMachine::with_config(logp, config, scripts);
    let registry = obs::capture_registry("exp_partition", 0, 16);
    machine.instrument(&RunOptions::new().shards(bvl_obs::cli::shards()).registry(&registry));
    let rep = machine.run().expect("tenant completes");
    obs::Summary::new("exp_partition")
        .kv("cell", "logp_heavy_tenant_p16")
        .kv("makespan", rep.makespan.get())
        .kv("delivered", rep.delivered)
        .f2("logp_max_interference", logp_max_interf)
        .f2("bsp_max_interference", bsp_max_interf)
        .emit();
    obs::write_trace_if_requested(machine.trace(), &registry);
}

//! Observability overhead proof → `BENCH_obs.json`.
//!
//! The instrumentation contract is "one branch when disabled": every obs
//! site in the engines and the cross-simulation runners first checks
//! `Registry::is_enabled()` (a single `Option` discriminant test) and does
//! nothing else when it fails. This binary measures that claim on three
//! workloads, each in three modes:
//!
//! * **baseline** — default [`RunOptions`]: no registry handed to the
//!   engine; its internal registry stays in the disabled state.
//! * **off** — `instrument` / `RunOptions::registry` with an explicitly
//!   disabled [`Registry`]. Identical fast path to baseline, so any gap
//!   between the two columns is measurement noise; the acceptance gate
//!   (`off ≤ baseline · 1.02`) bounds instrumented-but-disabled cost.
//! * **on** — an enabled registry: counters, histograms, and spans all
//!   recorded. This column prices what `--trace-out` actually costs.
//!
//! Wall-clock numbers are environment-dependent; best-of-5 timing of
//! multi-run batches keeps the jitter below the 2% gate on an idle host.
//! Run via `scripts/regen_experiments.sh` or:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin bench_obs
//! ```

use bvl_bsp::{BspMachine, BspParams, FnProcess, Status};
use bvl_core::{simulate_bsp_on_logp, RoutingStrategy, Theorem2Config};
use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use bvl_obs::Registry;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time of `f`, in milliseconds.
fn time_ms<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    best
}

fn ring_scripts(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

/// LogP engine: 64-processor ring, 32 rounds, measured at the machine level.
fn logp_case(registry: Option<Registry>) -> f64 {
    let params = LogpParams::new(64, 16, 1, 2).unwrap();
    time_ms(5, || {
        for _ in 0..20 {
            let mut m = LogpMachine::with_config(
                params,
                LogpConfig::default(),
                ring_scripts(64, 32),
            );
            if let Some(reg) = &registry {
                m.instrument(&RunOptions::new().registry(reg));
            }
            black_box(m.run().unwrap().makespan);
        }
    })
}

fn bsp_procs(p: usize) -> Vec<FnProcess<i64>> {
    (0..p)
        .map(|_| {
            FnProcess::new(0i64, move |acc, ctx| {
                let p = ctx.p();
                while let Some(m) = ctx.recv() {
                    *acc += m.payload.expect_word();
                }
                if ctx.superstep_index() < 16 {
                    ctx.charge(8);
                    let me = ctx.me().index();
                    ctx.send(ProcId::from((me * 7 + 3) % p), Payload::word(0, 1));
                    Status::Continue
                } else {
                    Status::Halt
                }
            })
        })
        .collect()
}

/// BSP engine: 64 processors, 16 supersteps, measured at the machine level.
fn bsp_case(registry: Option<Registry>) -> f64 {
    let params = BspParams::new(64, 2, 16).unwrap();
    time_ms(5, || {
        for _ in 0..50 {
            let mut m = BspMachine::new(params, bsp_procs(64));
            if let Some(reg) = &registry {
                m.instrument(&RunOptions::new().registry(reg));
            }
            black_box(m.run(64).unwrap().cost);
        }
    })
}

/// Theorem 2 runner: full BSP-on-LogP superstep simulation (offline router),
/// the path that carries the densest span instrumentation.
fn thm2_case(registry: Option<Registry>) -> f64 {
    let logp = LogpParams::new(16, 16, 1, 2).unwrap();
    let make = || -> Vec<FnProcess<i64>> {
        (0..16)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    while let Some(m) = ctx.recv() {
                        *acc += m.payload.expect_word();
                    }
                    if ctx.superstep_index() < 4 {
                        ctx.charge(12);
                        let me = ctx.me().index();
                        for k in 1..=2usize {
                            ctx.send(
                                ProcId::from((me * 3 + k * 5) % p),
                                Payload::word(k as u32, 1),
                            );
                        }
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let config = Theorem2Config {
        strategy: RoutingStrategy::Offline,
    };
    time_ms(5, || {
        for _ in 0..20 {
            let opts = match &registry {
                None => RunOptions::new(),
                Some(reg) => RunOptions::new().registry(reg),
            };
            let total = simulate_bsp_on_logp(logp, make(), config, &opts).unwrap().total;
            black_box(total);
        }
    })
}

type Case = fn(Option<Registry>) -> f64;

fn main() {
    let cases: Vec<(&str, usize, Case)> = vec![
        ("logp_ring_p64_x32", 64, logp_case),
        ("bsp_shift_p64_x16", 64, bsp_case),
        ("thm2_offline_p16_x4", 16, thm2_case),
    ];
    let mut rows = Vec::new();
    let mut worst_off = f64::NEG_INFINITY;
    for (name, procs, run) in cases {
        // Warm-up evens out allocator and cache state before the three
        // timed modes.
        run(None);
        let baseline = run(None);
        let off = run(Some(Registry::disabled()));
        let on = run(Some(Registry::enabled(procs)));
        let off_pct = (off / baseline - 1.0) * 100.0;
        let on_pct = (on / baseline - 1.0) * 100.0;
        worst_off = worst_off.max(off_pct);
        eprintln!(
            "{name}: baseline {baseline:.2} ms, off {off:.2} ms ({off_pct:+.2}%), \
             on {on:.2} ms ({on_pct:+.2}%)"
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"baseline_ms\": {baseline:.3}, \
             \"off_ms\": {off:.3}, \"on_ms\": {on:.3}, \
             \"off_overhead_pct\": {off_pct:.2}, \"on_overhead_pct\": {on_pct:.2}}}"
        ));
    }
    let pass = worst_off <= 2.0;
    let json = format!(
        "{{\n  \"cases\": [\n{}\n  ],\n  \"acceptance\": {{\"off_overhead_limit_pct\": 2.0, \
         \"off_overhead_worst_pct\": {worst_off:.2}, \"pass\": {pass}}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("{json}");
    eprintln!("wrote BENCH_obs.json (disabled-registry overhead gate: {})",
        if pass { "PASS" } else { "FAIL" });
    if !pass {
        std::process::exit(1);
    }
}

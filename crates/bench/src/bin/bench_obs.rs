//! Observability overhead proof → `BENCH_obs.json`.
//!
//! The instrumentation contract has two halves. Disabled, every obs site
//! in the engines and the cross-simulation runners is one branch
//! (`Registry::is_enabled()`, a single `Option` discriminant test).
//! Enabled, recording depth is a [`Tier`]: counters only, sampled spans,
//! or the full span log — spans staged in lock-free rings and serialized
//! in batches at phase barriers. This binary prices all of it on three
//! workloads, each in five modes:
//!
//! * **baseline** — default [`RunOptions`]: no registry handed to the
//!   engine; its internal registry stays in the disabled state.
//! * **off** — an explicitly disabled [`Registry`]. Identical fast path
//!   to baseline, so any gap between the two columns is measurement
//!   noise; the acceptance gate (`off ≤ baseline + 2%`) bounds
//!   instrumented-but-disabled cost.
//! * **counters** — [`Tier::CountersOnly`]: relaxed atomic adds, no spans.
//! * **sampled** — [`Tier::Sampled`] at rate 8: counters plus roughly one
//!   span in eight, admission decided by content hash.
//! * **full** — [`Tier::Full`]: everything `--trace-out` exports.
//!
//! Wall-clock numbers are environment-dependent, and the reference hosts
//! are small (often a single vCPU), where a background wakeup anywhere in
//! a multi-millisecond timing window poisons the whole window. Three
//! defenses keep the jitter below the gates: every mode gets a warm-up
//! batch first; the timed batches run **round-robin** (mode 1..5, then
//! again, `REPS` times) so slow drift — thermal, allocator, cache state —
//! lands on every mode equally instead of biasing whichever column ran
//! last; and within a batch each *run* is timed individually with the
//! batch reporting its fastest run. A single run is ~0.1–0.6 ms, far
//! shorter than a scheduler quantum, so among the hundreds of per-run
//! samples each mode collects, the minimum is overwhelmingly likely to be
//! an interference-free window — the true cost of the code path. Run via
//! `scripts/regen_experiments.sh` or:
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin bench_obs
//! ```

use bvl_bsp::{BspMachine, BspParams, FnProcess, Status};
use bvl_core::{simulate_bsp_on_logp, RoutingStrategy, Theorem2Config};
use bvl_exec::RunOptions;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use bvl_obs::{Registry, Tier};
use std::hint::black_box;
use std::time::Instant;

/// Timed rounds per mode (minimum kept).
const REPS: usize = 15;

/// The measured modes, in round-robin order.
const MODES: [Mode; 5] = [Mode::Baseline, Mode::Off, Mode::Counters, Mode::Sampled, Mode::Full];

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    Baseline,
    Off,
    Counters,
    Sampled,
    Full,
}

impl Mode {
    /// A fresh registry for one timed batch (`None` = baseline: the engine
    /// keeps its internal disabled registry). One registry serves every
    /// run in the batch — exactly how the sweep harness and the lab use
    /// one registry across a whole grid — so construction is amortized
    /// and the tiers price recording, not setup.
    fn registry(self, procs: usize) -> Option<Registry> {
        match self {
            Mode::Baseline => None,
            Mode::Off => Some(Registry::disabled()),
            Mode::Counters => Some(Registry::tiered(procs, Tier::CountersOnly, 0)),
            Mode::Sampled => Some(Registry::tiered(procs, Tier::Sampled { rate: 8 }, 0x5eed)),
            Mode::Full => Some(Registry::tiered(procs, Tier::Full, 0)),
        }
    }
}

fn ring_scripts(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

/// LogP engine: 64-processor ring, 32 rounds, measured at the machine
/// level. One batch = 20 runs; returns the fastest run in seconds. The
/// timed region is `instrument` + `run` — machine construction is
/// mode-independent, and the instrumented span includes every obs cost a
/// caller pays (staging-block allocation through the final absorb).
fn logp_batch(mode: Mode) -> f64 {
    let params = LogpParams::new(64, 16, 1, 2).unwrap();
    let reg = mode.registry(64);
    let opts = reg.as_ref().map(|r| RunOptions::new().registry(r));
    let mut best = f64::INFINITY;
    for _ in 0..20 {
        let mut m = LogpMachine::with_config(params, LogpConfig::default(), ring_scripts(64, 32));
        let t0 = Instant::now();
        if let Some(opts) = &opts {
            m.instrument(opts);
        }
        black_box(m.run().unwrap().makespan);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn bsp_procs(p: usize) -> Vec<FnProcess<i64>> {
    // Each superstep is a realistically loaded h-relation: every processor
    // shifts a message to each of 8 strided destinations (h = 8) and folds
    // its inbox. A featherweight superstep (one message, no fold) would
    // gate the recording cost against near-zero work — a denominator so
    // small that host jitter alone spans the gate.
    (0..p)
        .map(|_| {
            FnProcess::new(0i64, move |acc, ctx| {
                let p = ctx.p();
                while let Some(m) = ctx.recv() {
                    *acc += m.payload.expect_word();
                }
                if ctx.superstep_index() < 16 {
                    ctx.charge(8);
                    let me = ctx.me().index();
                    for k in 0..8usize {
                        ctx.send(ProcId::from((me * 7 + 3 + k * 11) % p), Payload::word(k as u32, 1));
                    }
                    Status::Continue
                } else {
                    Status::Halt
                }
            })
        })
        .collect()
}

/// BSP engine: 64 processors, 16 supersteps, measured at the machine
/// level. One batch = 50 runs; returns the fastest run in seconds.
fn bsp_batch(mode: Mode) -> f64 {
    let params = BspParams::new(64, 2, 16).unwrap();
    let reg = mode.registry(64);
    let opts = reg.as_ref().map(|r| RunOptions::new().registry(r));
    let mut best = f64::INFINITY;
    for _ in 0..50 {
        let mut m = BspMachine::new(params, bsp_procs(64));
        let t0 = Instant::now();
        if let Some(opts) = &opts {
            m.instrument(opts);
        }
        black_box(m.run(64).unwrap().cost);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Theorem 2 runner: full BSP-on-LogP superstep simulation (offline
/// router), the path that carries the densest span instrumentation. One
/// batch = 20 runs; returns the fastest run in seconds.
fn thm2_batch(mode: Mode) -> f64 {
    let logp = LogpParams::new(16, 16, 1, 2).unwrap();
    let make = || -> Vec<FnProcess<i64>> {
        (0..16)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    while let Some(m) = ctx.recv() {
                        *acc += m.payload.expect_word();
                    }
                    if ctx.superstep_index() < 4 {
                        ctx.charge(12);
                        let me = ctx.me().index();
                        for k in 1..=2usize {
                            ctx.send(
                                ProcId::from((me * 3 + k * 5) % p),
                                Payload::word(k as u32, 1),
                            );
                        }
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    };
    let config = Theorem2Config {
        strategy: RoutingStrategy::Offline,
    };
    let reg = mode.registry(16);
    let opts = match &reg {
        None => RunOptions::new(),
        Some(reg) => RunOptions::new().registry(reg),
    };
    let mut best = f64::INFINITY;
    for _ in 0..20 {
        let procs = make();
        let t0 = Instant::now();
        let total = simulate_bsp_on_logp(logp, procs, config, &opts).unwrap().total;
        black_box(total);
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Warm up, then run every mode round-robin: `REPS` passes over the mode
/// list, keeping each mode's fastest single run in milliseconds.
fn bench(batch: fn(Mode) -> f64) -> [f64; MODES.len()] {
    for mode in MODES {
        batch(mode);
    }
    let mut best = [f64::INFINITY; MODES.len()];
    for _ in 0..REPS {
        for (slot, &mode) in MODES.iter().enumerate() {
            best[slot] = best[slot].min(batch(mode) * 1e3);
        }
    }
    best
}

fn main() {
    let cases = [
        ("logp_ring_p64_x32", logp_batch as fn(Mode) -> f64),
        ("bsp_shift_p64_x16", bsp_batch),
        ("thm2_offline_p16_x4", thm2_batch),
    ];
    // The tiered gates apply to the two engine workloads; thm2 is reported
    // for visibility (its virtual-clock runner is dominated by simulation,
    // not recording).
    let gated = ["logp_ring_p64_x32", "bsp_shift_p64_x16"];
    let mut rows = Vec::new();
    let mut worst_off = f64::NEG_INFINITY;
    let mut worst_counters = f64::NEG_INFINITY;
    let mut worst_sampled = f64::NEG_INFINITY;
    for (name, batch) in cases {
        let [baseline, off, counters, sampled, full] = bench(batch);
        let pct = |t: f64| (t / baseline - 1.0) * 100.0;
        let (off_pct, counters_pct, sampled_pct, full_pct) =
            (pct(off), pct(counters), pct(sampled), pct(full));
        worst_off = worst_off.max(off_pct);
        if gated.contains(&name) {
            worst_counters = worst_counters.max(counters_pct);
            worst_sampled = worst_sampled.max(sampled_pct);
        }
        eprintln!(
            "{name}: baseline {baseline:.4} ms, off {off:.4} ms ({off_pct:+.2}%), \
             counters {counters:.4} ms ({counters_pct:+.2}%), \
             sampled {sampled:.4} ms ({sampled_pct:+.2}%), \
             full {full:.4} ms ({full_pct:+.2}%)"
        );
        rows.push(format!(
            "    {{\"workload\": \"{name}\", \"baseline_ms\": {baseline:.4}, \
             \"off_ms\": {off:.4}, \"counters_ms\": {counters:.4}, \
             \"sampled_ms\": {sampled:.4}, \"full_ms\": {full:.4}, \
             \"off_overhead_pct\": {off_pct:.2}, \
             \"counters_overhead_pct\": {counters_pct:.2}, \
             \"sampled_overhead_pct\": {sampled_pct:.2}, \
             \"full_overhead_pct\": {full_pct:.2}}}"
        ));
    }
    let pass = worst_off <= 2.0 && worst_counters <= 4.0 && worst_sampled <= 8.0;
    let json = format!(
        "{{\n  \"cases\": [\n{}\n  ],\n  \"acceptance\": {{\
         \"off_overhead_limit_pct\": 2.0, \"off_overhead_worst_pct\": {worst_off:.2}, \
         \"counters_overhead_limit_pct\": 4.0, \
         \"counters_overhead_worst_pct\": {worst_counters:.2}, \
         \"sampled_overhead_limit_pct\": 8.0, \
         \"sampled_overhead_worst_pct\": {worst_sampled:.2}, \
         \"gated_workloads\": [\"logp_ring_p64_x32\", \"bsp_shift_p64_x16\"], \
         \"pass\": {pass}}}\n}}\n",
        rows.join(",\n")
    );
    std::fs::write("BENCH_obs.json", &json).expect("write BENCH_obs.json");
    println!("{json}");
    eprintln!(
        "wrote BENCH_obs.json (tiered overhead gates: {})",
        if pass { "PASS" } else { "FAIL" }
    );
    if !pass {
        std::process::exit(1);
    }
}

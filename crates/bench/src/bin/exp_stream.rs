//! E-STREAM: bounded-memory pseudo-streaming supersteps.
//!
//! Runs the `scenarios/stream.scn` grid: the sample-sort workload
//! executed classically and through a fixed working set of `window`
//! messages per processor per synchronization round
//! (`RunOptions::streamed`, applicable to any workload). Each row
//! verifies the exact cost identity
//! `streamed = native + ℓ·(rounds − supersteps)` and that the output is
//! unchanged — streaming moves *when* synchronization happens, never
//! *what* is computed.
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin exp_stream             # full grid
//! cargo run --release -p bvl-bench --bin exp_stream -- --smoke  # CI subset
//! ```

use bvl_bench::{banner, labexp, obs, print_table, scn};

fn main() {
    let smoke = std::env::args().skip(1).any(|a| a == "--smoke");
    banner(if smoke {
        "E-STREAM (smoke): widest and narrowest windows"
    } else {
        "E-STREAM: pseudo-streaming supersteps across window sizes"
    });

    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("stream", smoke);
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], None);
    eprintln!("[sweep] stream: {}", rep.summary());
    let rows = labexp::single_rows(rep);
    print_table(
        &[
            "p", "n", "window", "native", "streamed", "rounds", "supersteps", "overhead", "sorted",
        ],
        &rows,
    );

    let sorted_ok = rows.iter().all(|r| r[8] == "yes");
    let worst_overhead = rows
        .iter()
        .map(|r| r[7].parse::<f64>().expect("overhead column"))
        .fold(f64::NEG_INFINITY, f64::max);

    obs::Summary::new("exp_stream")
        .kv("cells", rows.len())
        .kv("sorted_ok", sorted_ok)
        .f2("worst_overhead", worst_overhead)
        .emit();

    if !sorted_ok {
        eprintln!("exp_stream: a streamed run changed the sorted output");
        std::process::exit(1);
    }
}

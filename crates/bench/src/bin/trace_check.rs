//! `trace_check <file.jsonl> [...more files]` — validate exported traces.
//!
//! Reads each compact-JSONL trace produced by `--trace-out`, rebuilds the
//! event `Trace`, and runs it through the model's well-formedness validator
//! (`bvl_model::validate_wellformed`) plus span sanity checks
//! (`start ≤ end`, known kinds — already enforced by the parser). Exits
//! non-zero on the first invalid file, printing every violation, so CI can
//! gate on the artifacts the experiment binaries emit.
//!
//! Traces carry their recording provenance in an optional `obs` meta line
//! (`{"type":"obs","tier":…,"spans_dropped":…}`). When the meta says the
//! span log is a sampled subset (or spans were dropped at a full ring),
//! only *subset-closed* checks run against the spans — properties that
//! hold for every subset of a valid span log, like `start ≤ end`. Checks
//! that presume completeness (non-emptiness, whole-log shape heuristics)
//! are skipped, and the report states the nominal kept fraction and the
//! drop count instead, so a sampled artifact is never "invalid" merely for
//! being sampled.

use bvl_model::{validate_wellformed, Steps, Trace};
use bvl_obs::export::parse_jsonl_full;
use bvl_obs::{Span, Tier};
use std::process::ExitCode;

fn check(path: &str) -> Result<String, Vec<String>> {
    let text = std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read: {e}")])?;
    let (events, spans, meta) = parse_jsonl_full(&text).map_err(|e| vec![e])?;

    let mut problems = Vec::new();
    let mut trace = Trace::enabled();
    for ev in &events {
        trace.record(ev.clone());
    }
    // Events are never sampled (sampling is a span-plane concept), so the
    // full well-formedness validator always applies to them.
    problems.extend(validate_wellformed(&trace));

    // Subset-closed span checks: valid for complete and sampled logs alike.
    let span_problems = spans
        .iter()
        .enumerate()
        .filter(|(_, s): &(usize, &Span)| s.start > s.end)
        .map(|(i, s)| {
            format!(
                "span {i} ({:?}): start {} after end {}",
                s.kind, s.start, s.end
            )
        });
    problems.extend(span_problems);

    // Completeness-assuming checks: only when nothing was sampled away or
    // dropped. A trace with an `obs` meta line is self-describing; one
    // without is treated as complete (the historical format).
    let subset = match &meta {
        Some(m) => matches!(m.tier, Tier::Sampled { .. }) || m.spans_dropped > 0,
        None => false,
    };
    if !subset {
        if events.is_empty() && spans.is_empty() {
            problems.push("file holds no events and no spans".to_string());
        }
        if let Some(max_end) = spans.iter().map(|s| s.end).max() {
            if max_end == Steps::ZERO && spans.len() > 1 {
                problems.push("all spans end at step 0".to_string());
            }
        }
    }

    if !problems.is_empty() {
        return Err(problems);
    }
    let provenance = match &meta {
        Some(m) => {
            let fraction = match m.tier {
                Tier::Sampled { rate } => format!(", ~1/{rate} of spans kept"),
                _ => String::new(),
            };
            format!(
                "; tier {}{fraction}, {} dropped",
                m.tier.label(),
                m.spans_dropped
            )
        }
        None => String::new(),
    };
    Ok(format!(
        "{} events, {} spans{provenance}",
        events.len(),
        spans.len()
    ))
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check <trace.jsonl> [...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &files {
        match check(path) {
            Ok(summary) => {
                println!("{path}: OK ({summary})");
            }
            Err(problems) => {
                failed = true;
                eprintln!("{path}: INVALID");
                for p in problems {
                    eprintln!("  - {p}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

//! `trace_check <file.jsonl> [...more files]` — validate exported traces.
//!
//! Reads each compact-JSONL trace produced by `--trace-out`, rebuilds the
//! event `Trace`, and runs it through the model's well-formedness validator
//! (`bvl_model::validate_wellformed`) plus span sanity checks
//! (`start ≤ end`, known kinds — already enforced by the parser). Exits
//! non-zero on the first invalid file, printing every violation, so CI can
//! gate on the artifacts the experiment binaries emit.

use bvl_model::{validate_wellformed, Steps, Trace};
use bvl_obs::export::parse_jsonl;
use bvl_obs::Span;
use std::process::ExitCode;

fn check(path: &str) -> Result<(usize, usize), Vec<String>> {
    let text = std::fs::read_to_string(path).map_err(|e| vec![format!("cannot read: {e}")])?;
    let (events, spans) = parse_jsonl(&text).map_err(|e| vec![e])?;

    let mut problems = Vec::new();
    let mut trace = Trace::enabled();
    for ev in &events {
        trace.record(ev.clone());
    }
    problems.extend(validate_wellformed(&trace));

    let span_problems = spans
        .iter()
        .enumerate()
        .filter(|(_, s): &(usize, &Span)| s.start > s.end)
        .map(|(i, s)| {
            format!(
                "span {i} ({:?}): start {} after end {}",
                s.kind, s.start, s.end
            )
        });
    problems.extend(span_problems);
    if events.is_empty() && spans.is_empty() {
        problems.push("file holds no events and no spans".to_string());
    }
    if let Some(max_end) = spans.iter().map(|s| s.end).max() {
        if max_end == Steps::ZERO && spans.len() > 1 {
            problems.push("all spans end at step 0".to_string());
        }
    }

    if problems.is_empty() {
        Ok((events.len(), spans.len()))
    } else {
        Err(problems)
    }
}

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: trace_check <trace.jsonl> [...]");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for path in &files {
        match check(path) {
            Ok((events, spans)) => {
                println!("{path}: OK ({events} events, {spans} spans)");
            }
            Err(problems) => {
                failed = true;
                eprintln!("{path}: INVALID");
                for p in problems {
                    eprintln!("  - {p}");
                }
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

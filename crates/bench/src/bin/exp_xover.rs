//! E-XOVER: §4.2 sorting-scheme crossover — network sort (AKS role) vs
//! Columnsort (Cubesort role) as r grows.
//!
//! The paper: "for r ≤ 2^√(log p) the AKS-based scheme outperforms the
//! Cubesort-based one; in contrast, when r = p^ε ... TCS = O(Gr + L), which
//! ... improves upon TAKS by a factor O(log p)." With Batcher standing in
//! for AKS the network side carries an extra log p, so the crossover moves
//! left but keeps its shape: constant-round Columnsort wins for large r.
//!
//! Each r is routed independently (all three schemes against the same
//! h-relation), so the rows fan out through the [`bvl_bench::sweep`]
//! harness with per-job RNG streams.

use bvl_bench::sweep::sweep;
use bvl_bench::{banner, f2, obs, print_table};
use bvl_core::bsp_on_logp::sortnet::{aks_cost_formula, bitonic_cost_formula};
use bvl_core::{route_deterministic, SortScheme};
use bvl_exec::RunOptions;
use bvl_logp::LogpParams;
use bvl_model::rngutil::SeedStream;
use bvl_model::HRelation;

fn main() {
    banner("Sorting-phase cost vs r (p = 8, L = 16, o = 1, G = 2)");
    let p = 8usize;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    let hs = vec![2usize, 8, 32, 98, 196, 392];
    let rep = sweep("xover", 77, hs, move |h, mut job| {
        let rel = HRelation::random_exact(&mut job.rng, p, h);
        let opts = job.opts.seed(3);
        let net = route_deterministic(params, &rel, SortScheme::Network, &opts).expect("net");
        let oe = route_deterministic(params, &rel, SortScheme::NetworkOddEven, &opts).expect("oe");
        let cs_valid = h >= 2 * (p - 1) * (p - 1);
        let cs = if cs_valid {
            Some(route_deterministic(params, &rel, SortScheme::Columnsort, &opts).expect("cs"))
        } else {
            None
        };
        vec![
            format!("{h}"),
            format!("{}", net.t_sort.get()),
            format!("{}", oe.t_sort.get()),
            cs.as_ref()
                .map(|r| r.t_sort.get().to_string())
                .unwrap_or_else(|| "(invalid)".into()),
            f2(bitonic_cost_formula(params.g, params.l, params.o, h as u64, p)),
            f2(aks_cost_formula(params.g, params.l, h as u64, p)),
            cs.as_ref()
                .map(|c| f2(net.t_sort.get() as f64 / c.t_sort.get() as f64))
                .unwrap_or_else(|| "-".into()),
        ]
    });
    eprintln!("[sweep] xover: {}", rep.summary());
    print_table(
        &[
            "r=h",
            "bitonic t_sort",
            "odd-even t_sort",
            "columnsort t_sort",
            "bitonic formula",
            "AKS formula",
            "net/cs",
        ],
        &rep.results,
    );
    println!();
    println!("(crossover: once Columnsort is valid (r >= 2(p-1)^2 = 98 here) its");
    println!(" constant-round sort beats the log^2 p-round network, and the ratio");
    println!(" grows with r — the paper's large-r O(log p) separation, shifted by");
    println!(" the Batcher-for-AKS substitution)");

    // Flagged cell: one Columnsort route at the largest r, captured so
    // `--trace-out` shows the constant number of ColumnsortRound spans next
    // to the routing cycles.
    let h = 392usize;
    let mut rng = SeedStream::new(77).derive("flagged", 0);
    let rel = HRelation::random_exact(&mut rng, p, h);
    let registry = obs::capture_registry("exp_xover", 77, p);
    let rep = route_deterministic(
        params,
        &rel,
        SortScheme::Columnsort,
        &RunOptions::new().shards(bvl_obs::cli::shards()).seed(3).registry(&registry),
    )
    .expect("columnsort routes");
    obs::Summary::new("exp_xover")
        .kv("cell", format_args!("columnsort_p{p}_h{h}"))
        .kv("makespan", rep.total.get())
        .kv("t_sort", rep.t_sort.get())
        .kv("sort_rounds", rep.sort_rounds)
        .kv("spans", registry.spans().len())
        .emit();
    obs::write_spans_if_requested(&registry);
}

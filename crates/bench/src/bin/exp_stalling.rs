//! E-STALL: the stalling regime (§2.2 discussion and §3).
//!
//! (a) Hot-spot drain rate approaches the bandwidth limit `1/G` — the
//! paper's observation that "the LogP performance model would actually
//! encourage the use of stalling" for reduction-to-one-node patterns.
//! (b) Hosting *stalling* programs on BSP via the naive Theorem 1 extension
//! loses the per-cycle `h ≤ ⌈L/G⌉` bound; measured slowdown vs the
//! improved `O(((ℓ+g)/G)·log p)` preprocessing bound of §3.

use bvl_bench::{banner, f2, f3, obs, print_table};
use bvl_bsp::BspParams;
use bvl_core::stalling::{hot_spot_study, stalling_on_bsp};
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use bvl_exec::RunOptions;

fn main() {
    banner("Hot-spot throughput under the Stalling Rule (target drain vs 1/G)");
    let params = LogpParams::new(16, 8, 1, 2).unwrap();
    let mut rows = Vec::new();
    for (senders, k) in [(2usize, 1usize), (4, 2), (8, 4), (15, 4), (15, 8)] {
        let rep = hot_spot_study(params, senders, k, 1).expect("runs");
        rows.push(vec![
            format!("{senders}x{k}"),
            format!("{}", rep.delivered),
            format!("{}", rep.makespan.get()),
            f3(rep.drain_rate),
            f3(1.0 / params.g as f64),
            format!("{}", rep.stall_episodes),
            f2(rep.mean_latency),
        ]);
    }
    print_table(
        &[
            "senders x k", "msgs", "makespan", "drain rate", "1/G", "stalls", "mean latency",
        ],
        &rows,
    );
    println!();
    println!("(as load grows the drain rate converges to the bandwidth limit 1/G");
    println!(" while individual latency degrades — both §2.2 predictions)");

    banner("Hosting stalling LogP programs on BSP (naive Theorem 1 extension)");
    let mut rows = Vec::new();
    for p in [8usize, 16, 32] {
        let logp = LogpParams::new(p, 8, 1, 2).unwrap();
        let bsp = BspParams::new(p, 2, 8).unwrap();
        let rep = stalling_on_bsp(logp, bsp, p - 1, 4, 2).expect("runs");
        rows.push(vec![
            format!("{p}"),
            format!("{}", rep.native.get()),
            format!("{}", rep.hosted.get()),
            f2(rep.slowdown),
            f2(rep.improved_bound_per_cycle),
        ]);
    }
    print_table(
        &["p", "native (stalling)", "hosted BSP", "slowdown", "§3 bound/cycle"],
        &rows,
    );

    // Flagged cell: the 15x8 hot spot re-run with an enabled registry and an
    // event trace, so `--trace-out` exports the full stalling picture
    // (deliveries as instants, stall windows as spans).
    let params = LogpParams::new(16, 8, 1, 2).unwrap();
    let mut scripts = vec![Script::new(vec![Op::Recv; 15 * 8])];
    scripts.extend((1..16).map(|i| {
        Script::new((0..8).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    let config = LogpConfig {
        forbid_stalling: false,
        trace: true,
        ..LogpConfig::default()
    };
    let mut machine = LogpMachine::with_config(params, config, scripts);
    let registry = obs::capture_registry("exp_stalling", 0, 16);
    machine.instrument(&RunOptions::new().shards(bvl_obs::cli::shards()).registry(&registry));
    let rep = machine.run().expect("hot spot completes");
    obs::Summary::new("exp_stalling")
        .kv("cell", "hot_spot_15x8")
        .kv("makespan", rep.makespan.get())
        .kv("stall_episodes", rep.stall_episodes)
        .kv("stall_steps", rep.total_stall.get())
        .kv("max_buffer", rep.max_buffer())
        .kv("delivered", rep.delivered)
        .kv("spans", registry.spans().len())
        .emit();
    obs::write_trace_if_requested(machine.trace(), &registry);
}

//! E-FAULT: differential conformance under adversarial media.
//!
//! Runs the fault-plan matrix (`bvl_fault::conformance`) over every
//! simulator and reports per-case timings, retry counts and check
//! failures. Every failure prints a one-line repro command; the lines are
//! also written to `fault-repros.txt` so CI can upload them as artifacts.
//!
//! ```sh
//! cargo run --release -p bvl-bench --bin exp_faults              # full grid
//! cargo run --release -p bvl-bench --bin exp_faults -- --smoke   # CI matrix
//! cargo run --release -p bvl-bench --bin exp_faults -- \
//!     --sim route_rand --p 8 --h 4 --seed 3 --plan 'seed=9,jitter=uniform:6'
//! ```
//!
//! The single-case form is exactly what the printed repro lines contain.

use bvl_bench::labexp::{self, faults};
use bvl_bench::{banner, obs, print_table, scn};
use bvl_fault::conformance::{default_plans, run_case};
use bvl_fault::Case;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Single-case repro mode: the exact flags the failure lines print.
    if args.iter().any(|a| a.starts_with("--sim")) {
        let case = Case::parse_args(&args).unwrap_or_else(|e| {
            eprintln!("exp_faults: {e}");
            std::process::exit(2);
        });
        banner(&format!("Repro: {} under '{}'", case.sim, case.plan));
        let rep = run_case(&case);
        println!(
            "clean {} / faulted {} steps, {} attempt(s), {} checks",
            rep.clean_time.get(),
            rep.faulted_time.get(),
            rep.attempts,
            rep.checks
        );
        if rep.ok() {
            println!("conformant");
            return;
        }
        for f in &rep.failures {
            eprintln!("FAIL {f}");
        }
        std::process::exit(1);
    }

    let smoke = args.iter().any(|a| a == "--smoke");
    banner(if smoke {
        "E-FAULT (smoke): default plans x all simulators at p=8, h=4"
    } else {
        "E-FAULT: fault-plan conformance matrix across the simulators"
    });

    // The case matrix runs as a lab grid compiled from
    // `scenarios/faults.scn`: each cell is one (plan, shape, simulator)
    // case, keyed by its fault-plan repro line. Uncached by default; with
    // BVL_LAB_DIR set, a warm store replays verdicts, check counts and
    // repro lines without re-simulating. Cells also fan out over rayon
    // either way (the old driver was sequential) — the printed table keeps
    // matrix order because the grid preserves request order. Completed
    // grids pass the conformance lower-bound audit (faulted >= clean,
    // clean >= the route latency floor) before printing.
    let lab = labexp::Lab::from_env();
    let scenario = scn::compiled("faults", smoke);
    let case_count = faults::cases(smoke).len();
    let (rep, _) = scn::run_in_lab(&lab, &scenario.grids[0], None);
    eprintln!("[sweep] faults: {}", rep.summary());
    let (rows, repros, checks) = faults::fold(rep);
    print_table(
        &["sim", "p", "h", "plan", "clean", "faulted", "attempts", "verdict"],
        &rows,
    );

    obs::Summary::new("exp_faults")
        .kv("cases", case_count)
        .kv("checks", checks)
        .kv("plans", default_plans().len())
        .kv("failures", repros.len())
        .emit();

    if !smoke {
        let mut json = String::from("{\n  \"experiment\": \"exp_faults\",\n  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                "    {{\"sim\": \"{}\", \"p\": {}, \"h\": {}, \"plan\": \"{}\", \
                 \"clean\": {}, \"faulted\": {}, \"attempts\": {}, \"ok\": {}}}{}\n",
                r[0],
                r[1],
                r[2],
                r[3],
                r[4],
                r[5],
                r[6],
                r[7] == "ok",
                if i + 1 < rows.len() { "," } else { "" }
            ));
        }
        json.push_str("  ]\n}\n");
        std::fs::write("BENCH_faults.json", &json).expect("write BENCH_faults.json");
        eprintln!("wrote BENCH_faults.json");
    }

    if !repros.is_empty() {
        std::fs::write("fault-repros.txt", repros.join("\n") + "\n")
            .expect("write fault-repros.txt");
        eprintln!(
            "{} failing case(s); repro commands in fault-repros.txt",
            repros.len()
        );
        std::process::exit(1);
    }
}

//! E-THM3: Theorem 3 — randomized routing of known-degree h-relations:
//! time `βGh` without stalling, with high probability.
//!
//! Measures (a) the empirical β = time/(Gh) across h and p, (b) the stall
//! frequency over many seeded trials (the theorem's failure event), and
//! (c) the worst-case `O(Gh²)` backstop on adversarial hot-spot relations.

use bvl_bench::{banner, f2, f3, obs, print_table};
use bvl_core::slowdown::{stalling_worst_case, theorem3_slack};
use bvl_core::route_randomized;
use bvl_exec::RunOptions;
use bvl_logp::LogpParams;
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, ProcId};

fn main() {
    banner("Theorem 3: randomized routing, beta = time/(G·h) and stall frequency");
    let seeds = SeedStream::new(31);
    let mut rows = Vec::new();
    for p in [16usize, 64] {
        // Capacity 32 = L/G: comfortably >= log p, the theorem's premise.
        let params = LogpParams::new(p, 64, 1, 2).unwrap();
        for h in [8usize, 32, 64, 128] {
            let trials = 20;
            let mut stalls = 0u64;
            let mut beta_sum = 0.0;
            for t in 0..trials {
                let mut rng = seeds.derive("rel", (p * 100_000 + h * 100 + t) as u64);
                let rel = HRelation::random_exact(&mut rng, p, h);
                let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().shards(bvl_obs::cli::shards()).seed(t as u64))
                    .expect("routes");
                if rep.stalled {
                    stalls += 1;
                }
                beta_sum += rep.beta_measured;
            }
            rows.push(vec![
                format!("{p}"),
                format!("{h}"),
                format!("{}", params.capacity()),
                f2(beta_sum / trials as f64),
                format!("{stalls}/{trials}"),
                f2(theorem3_slack(&params, 1.0)),
            ]);
        }
    }
    print_table(
        &["p", "h", "cap", "beta meas", "stall freq", "paper slack (c2=1)"],
        &rows,
    );
    println!();
    println!("(protocol slack 2.0; the paper's analytic slack column shows how loose");
    println!(" the worst-case Chernoff constant is compared with observed behaviour)");

    banner("Worst case under stalling: hot-spot relations vs the O(Gh^2) backstop");
    let params = LogpParams::new(16, 8, 1, 2).unwrap(); // tight capacity 4
    let mut rows = Vec::new();
    for (senders, k) in [(8usize, 2usize), (15, 2), (15, 4), (15, 8)] {
        let rel = HRelation::hot_spot(16, ProcId(0), senders, k);
        let h = rel.degree() as u64;
        let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().shards(bvl_obs::cli::shards()).seed(5)).expect("routes");
        rows.push(vec![
            format!("{senders}x{k}"),
            format!("{h}"),
            format!("{}", rep.time.get()),
            format!("{}", stalling_worst_case(&params, h)),
            f3(rep.time.get() as f64 / stalling_worst_case(&params, h) as f64),
            format!("{}", rep.stall_episodes),
        ]);
    }
    print_table(
        &["hot spot", "h", "time", "G·h²", "time/Gh²", "stall episodes"],
        &rows,
    );

    // Flagged cell: one randomized route at (p=16, h=32) re-run with an
    // enabled registry so its batch rounds feed the summary line and the
    // optional `--trace-out` export.
    let params = LogpParams::new(16, 64, 1, 2).unwrap();
    let mut rng = SeedStream::new(31).derive("flagged", 0);
    let rel = HRelation::random_exact(&mut rng, 16, 32);
    let registry = obs::capture_registry("exp_thm3", 31, 16);
    let rep = route_randomized(params, &rel, 2.0, &RunOptions::new().shards(bvl_obs::cli::shards()).seed(7).registry(&registry))
        .expect("routes");
    obs::Summary::new("exp_thm3")
        .kv("cell", "rand_p16_h32")
        .kv("makespan", rep.time.get())
        .kv("batches", rep.batches)
        .kv("leftover", rep.leftover)
        .kv("stall_episodes", rep.stall_episodes)
        .f2("beta", rep.beta_measured)
        .kv("spans", registry.spans().len())
        .emit();
    obs::write_spans_if_requested(&registry);
}

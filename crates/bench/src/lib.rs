//! # bvl-bench — experiment regenerators and engine benchmarks
//!
//! The `exp-*` binaries (`src/bin/`) regenerate every quantitative result of
//! the paper — Table 1 and each theorem/proposition bound — printing
//! measured-vs-predicted tables (recorded in `EXPERIMENTS.md`). The
//! Criterion benches (`benches/`) track simulator throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod labexp;
pub mod scn;

/// Print a fixed-width table: a header row, a separator, then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", parts.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        line(row);
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Section banner.
pub fn banner(title: &str) {
    println!();
    println!("== {title} ==");
    println!();
}

pub mod sweep {
    //! Parallel experiment sweeps with deterministic per-config seeding.
    //!
    //! An experiment binary is typically a list of independent *configurations*
    //! (a topology, an `h`, a `(g, ℓ)` scaling factor, …) each mapped to one
    //! table row. [`sweep`] fans those jobs out over `rayon` worker threads
    //! and collects the results **in input order**, so the printed tables are
    //! byte-identical at any thread count.
    //!
    //! Randomized jobs draw from [`Job::rng`], a ChaCha8 stream derived by
    //! [`SeedStream`] from `(domain, job index)` — never from thread identity
    //! or scheduling order. The determinism contract is therefore:
    //!
    //! > same `(domain, master seed, configuration list)` ⇒ same results,
    //! > regardless of `RAYON_NUM_THREADS`.

    use bvl_exec::RunOptions;
    use bvl_model::rngutil::SeedStream;
    use rand_chacha::ChaCha8Rng;
    use rayon::prelude::*;
    use std::time::{Duration, Instant};

    /// Per-job context handed to the sweep body.
    pub struct Job {
        /// Position of this configuration in the input list (= output slot).
        pub index: usize,
        /// Private RNG stream for this job, derived from `(domain, index)`.
        pub rng: ChaCha8Rng,
        /// Ready-made run options for this job: a disabled registry in the
        /// common case; [`sweep_captured`] hands the flagged job an enabled
        /// one. Bodies thread this straight into the unified run entry
        /// points (optionally after `.seed(..)` / `.budget(..)`).
        pub opts: RunOptions,
    }

    /// Results of a sweep, in input order, plus execution metadata.
    pub struct SweepReport<R> {
        /// One result per input configuration, in input order.
        pub results: Vec<R>,
        /// Number of configurations executed.
        pub jobs: usize,
        /// Worker threads the sweep ran on.
        pub threads: usize,
        /// Wall-clock time of the whole sweep.
        pub elapsed: Duration,
    }

    impl<R> SweepReport<R> {
        /// One-line execution summary, e.g. `14 jobs / 8 threads / 0.31s`.
        pub fn summary(&self) -> String {
            format!(
                "{} jobs / {} threads / {:.2}s",
                self.jobs,
                self.threads,
                self.elapsed.as_secs_f64()
            )
        }
    }

    /// [`sweep`] with per-cell observability capture. The job at index
    /// `flagged` (when `Some`) receives [`Job::opts`] carrying a
    /// [`bvl_obs::Registry`] enabled for `procs` processors; every other
    /// job's options keep a disabled registry, so the sweep pays the
    /// instrumentation cost on exactly one cell. Returns the report plus the
    /// flagged cell's registry (disabled when nothing was flagged), ready
    /// for [`bvl_obs::export::write_trace_file`].
    pub fn sweep_captured<C, R, F>(
        domain: &str,
        master: u64,
        configs: Vec<C>,
        flagged: Option<usize>,
        procs: usize,
        f: F,
    ) -> (SweepReport<R>, bvl_obs::Registry)
    where
        C: Send,
        R: Send,
        F: Fn(C, Job) -> R + Sync,
    {
        let captured = match flagged {
            // The capture registry runs at the process-wide `--obs-tier`,
            // keyed by the flagged cell's `(domain, index)` seed lane — so a
            // sampled capture admits the same spans at any shard or thread
            // count.
            Some(index) => bvl_obs::Registry::tiered(
                procs,
                bvl_obs::cli::obs_tier(),
                SeedStream::new(master).lane_key(domain, index as u64),
            ),
            None => bvl_obs::Registry::disabled(),
        };
        let report = sweep(domain, master, configs, |config, mut job| {
            if Some(job.index) == flagged {
                job.opts = job.opts.registry(&captured);
            }
            f(config, job)
        });
        (report, captured)
    }

    /// Run `f` over every configuration in parallel; results come back in
    /// input order. `domain` names the experiment (it salts each job's RNG
    /// stream, so two sweeps with the same master seed stay independent).
    pub fn sweep<C, R, F>(domain: &str, master: u64, configs: Vec<C>, f: F) -> SweepReport<R>
    where
        C: Send,
        R: Send,
        F: Fn(C, Job) -> R + Sync,
    {
        let seeds = SeedStream::new(master);
        let jobs = configs.len();
        let threads = rayon::current_num_threads().min(jobs.max(1));
        let t0 = Instant::now();
        let results: Vec<R> = configs
            .into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|(index, config)| {
                let rng = seeds.derive(domain, index as u64);
                // Jobs inherit the process-wide `--shards` and `--obs-tier`
                // flags so sweep cells run on the sharded engines and at the
                // requested recording depth.
                let opts = RunOptions::new()
                    .shards(bvl_obs::cli::shards())
                    .obs(bvl_obs::cli::obs_tier());
                f(config, Job { index, rng, opts })
            })
            .collect();
        SweepReport {
            results,
            jobs,
            threads,
            elapsed: t0.elapsed(),
        }
    }
}

pub mod obs {
    //! Shared observability wiring for the `exp_*` binaries.
    //!
    //! Every experiment binary prints one machine-greppable `SUMMARY` line
    //! (consumed by `scripts/regen_experiments.sh`) and honors the shared
    //! `--trace-out <path>` flag by exporting the flagged cell's spans via
    //! [`bvl_obs::export::write_trace_file`].

    use bvl_model::rngutil::SeedStream;
    use bvl_model::Trace;
    use bvl_obs::export::ObsMeta;
    use bvl_obs::Registry;

    /// The capture registry for an experiment's flagged/export cell:
    /// `procs` processors recording at the process-wide `--obs-tier`, with
    /// sampling keyed by lane 0 of the experiment's `(domain, master)` seed
    /// stream — so a sampled export admits the same spans on every run, at
    /// any shard or thread count.
    pub fn capture_registry(domain: &str, master: u64, procs: usize) -> Registry {
        Registry::tiered(
            procs,
            bvl_obs::cli::obs_tier(),
            SeedStream::new(master).lane_key(domain, 0),
        )
    }

    /// Builder for the one-line experiment summary: `SUMMARY <name> k=v ...`.
    ///
    /// Every binary emits exactly one; `scripts/regen_experiments.sh` greps
    /// the line, so keys must be stable identifiers (`makespan`,
    /// `stall_episodes`, ...) and fields print in insertion order. The
    /// typed appenders keep numeric formatting uniform across binaries:
    /// [`Summary::kv`] for anything `Display` (strings, integers,
    /// booleans), [`Summary::f2`]/[`Summary::f3`]/[`Summary::f4`] for
    /// fixed-precision floats.
    #[must_use = "finish with .emit() to print the SUMMARY line"]
    pub struct Summary {
        line: String,
    }

    impl Summary {
        /// Start a summary line for `experiment` (the binary name).
        pub fn new(experiment: &str) -> Summary {
            Summary {
                line: format!("SUMMARY {experiment}"),
            }
        }

        /// Append `key=value` with the value's `Display` form.
        pub fn kv(mut self, key: &str, value: impl std::fmt::Display) -> Summary {
            use std::fmt::Write;
            write!(self.line, " {key}={value}").expect("write to String");
            self
        }

        /// Append a float rendered at two decimal places (`{:.2}`).
        pub fn f2(self, key: &str, value: f64) -> Summary {
            self.kv(key, format_args!("{value:.2}"))
        }

        /// Append a float rendered at three decimal places (`{:.3}`).
        pub fn f3(self, key: &str, value: f64) -> Summary {
            self.kv(key, format_args!("{value:.3}"))
        }

        /// Append a float rendered at four decimal places (`{:.4}`).
        pub fn f4(self, key: &str, value: f64) -> Summary {
            self.kv(key, format_args!("{value:.4}"))
        }

        /// The finished line, without printing it.
        pub fn line(&self) -> &str {
            &self.line
        }

        /// Print the line to stdout.
        pub fn emit(self) {
            println!("{}", self.line);
        }
    }

    /// If `--trace-out <path>` was passed to this process, write `trace` +
    /// the registry's spans there (format chosen by extension: `.jsonl` →
    /// compact JSONL, anything else → Chrome `trace_event` JSON). JSONL
    /// leads with the registry's recording metadata (tier, spans dropped)
    /// so `trace_check` can tell a sampled export from a full one. Exits
    /// non-zero on I/O failure so scripted runs fail loudly.
    pub fn write_trace_if_requested(trace: &Trace, registry: &Registry) {
        let Some(path) = bvl_obs::cli::trace_out() else {
            return;
        };
        let spans = registry.spans();
        let meta = ObsMeta {
            tier: registry.tier(),
            spans_dropped: registry.spans_dropped(),
        };
        match bvl_obs::export::write_trace_file_with_meta(&path, trace, &spans, Some(&meta)) {
            Ok(()) => eprintln!(
                "trace-out: {} events + {} spans ({}, {} dropped) -> {}",
                trace.events().len(),
                spans.len(),
                meta.tier.label(),
                meta.spans_dropped,
                path.display()
            ),
            Err(e) => {
                eprintln!("trace-out: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
        }
    }

    /// [`write_trace_if_requested`] for registry-only captures (the virtual
    /// clocks of the cross-simulations have spans but no event trace).
    pub fn write_spans_if_requested(registry: &Registry) {
        write_trace_if_requested(&Trace::disabled(), registry);
    }
}

#[cfg(test)]
mod tests {
    use super::sweep::sweep;
    use super::*;
    use rand::RngCore;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // rustfmt of floats rounds half-even
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }

    #[test]
    fn sweep_preserves_input_order() {
        let rep = sweep("order", 1, (0..64usize).collect(), |c, job| {
            assert_eq!(c, job.index);
            c * 3
        });
        assert_eq!(rep.jobs, 64);
        assert_eq!(rep.results, (0..64).map(|c| c * 3).collect::<Vec<_>>());
    }

    #[test]
    fn sweep_rng_depends_on_index_not_schedule() {
        let draw = |_c: (), mut job: super::sweep::Job| -> u64 { job.rng.next_u64() };
        let a = sweep("det", 9, vec![(); 32], draw).results;
        let b = sweep("det", 9, vec![(); 32], draw).results;
        assert_eq!(a, b);
        // Distinct lanes produce distinct streams.
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn sweep_captured_enables_exactly_the_flagged_cell() {
        use super::sweep::sweep_captured;
        let (rep, reg) =
            sweep_captured("cap", 1, (0..8usize).collect(), Some(3), 4, |c, job| {
                assert_eq!(job.opts.registry.is_enabled(), job.index == 3);
                if job.opts.registry.is_enabled() {
                    job.opts.registry.span(bvl_obs::Span::new(
                        bvl_obs::SpanKind::LocalWork,
                        bvl_model::Steps(0),
                        bvl_model::Steps(1),
                    ));
                }
                c
            });
        assert_eq!(rep.results, (0..8).collect::<Vec<_>>());
        assert_eq!(reg.spans().len(), 1);

        let (_, unflagged) = sweep_captured("cap", 1, vec![0u8; 4], None, 4, |_, job| {
            assert!(!job.opts.registry.is_enabled());
        });
        assert!(!unflagged.is_enabled());
    }

    #[test]
    fn sweep_of_nothing_is_empty() {
        let rep = sweep("empty", 0, Vec::<u8>::new(), |_, _| 0u8);
        assert!(rep.results.is_empty());
        assert!(rep.summary().starts_with("0 jobs"));
    }

    #[test]
    fn summary_builder_matches_the_grepped_format() {
        let s = super::obs::Summary::new("exp_demo")
            .kv("cell", "ring_x8")
            .kv("makespan", 1234u64)
            .kv("ok", true)
            .f2("beta", 0.456)
            .f3("r2", 0.98765)
            .f4("residual_frac", 0.00009);
        assert_eq!(
            s.line(),
            "SUMMARY exp_demo cell=ring_x8 makespan=1234 ok=true \
             beta=0.46 r2=0.988 residual_frac=0.0001"
        );
    }

    #[test]
    fn summary_fields_print_in_insertion_order() {
        let s = super::obs::Summary::new("exp_order")
            .kv("z", 1)
            .kv("a", 2)
            .kv("z", 3);
        assert_eq!(s.line(), "SUMMARY exp_order z=1 a=2 z=3");
    }
}

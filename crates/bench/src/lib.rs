//! # bvl-bench — experiment regenerators and engine benchmarks
//!
//! The `exp-*` binaries (`src/bin/`) regenerate every quantitative result of
//! the paper — Table 1 and each theorem/proposition bound — printing
//! measured-vs-predicted tables (recorded in `EXPERIMENTS.md`). The
//! Criterion benches (`benches/`) track simulator throughput.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Print a fixed-width table: a header row, a separator, then rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let parts: Vec<String> = cells
            .iter()
            .zip(&widths)
            .map(|(c, w)| format!("{c:>w$}", w = w))
            .collect();
        println!("| {} |", parts.join(" | "));
    };
    line(&headers.iter().map(|s| s.to_string()).collect::<Vec<_>>());
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    println!("|-{}-|", sep.join("-|-"));
    for row in rows {
        line(row);
    }
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Section banner.
pub fn banner(title: &str) {
    println!();
    println!("== {title} ==");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(f2(1.234), "1.23");
        assert_eq!(f3(1.2345), "1.234"); // rustfmt of floats rounds half-even
    }

    #[test]
    fn print_table_does_not_panic() {
        print_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
    }
}

//! The shipped scenario documents and their runner.
//!
//! This module is the bridge between the declarative scenario plane
//! (`bvl-scenario`) and the row-builders in [`crate::labexp`]:
//!
//! * [`SHIPPED`] embeds the checked-in `scenarios/*.scn` files;
//!   [`reference()`] rebuilds the same documents from the legacy
//!   configuration lists, and the tests prove `doc(name) ==
//!   reference(name)` — the text files are the source of truth, the code
//!   is the oracle.
//! * [`run_work`] dispatches a compiled [`Work`] item to the shared row
//!   helper it describes, preserving the legacy seeding and registry
//!   contract exactly.
//! * [`experiments`] packages every shipped scenario behind
//!   [`bvl_lab::Experiment`] (including the lower-bound `audit` hook), and
//!   [`Runner`] implements [`bvl_lab::ScenarioRunner`] so `POST /run` and
//!   `lab run --scenario` accept arbitrary scenario documents as data.
//!
//! Every completed grid is audited against the Bilardi–Scquizzato–
//! Silvestri-style communication lower bounds (`bvl_scenario::bounds`): a
//! measured cost below a proven bound is a simulator bug and fails the
//! run, on every front end.

use crate::labexp;
use bvl_core::{RoutingStrategy, SortScheme};
use bvl_fault::Case;
use bvl_lab::{
    run_grid, CellSpec, Experiment, GridReport, GridSpec, Job, ScenarioError, ScenarioRunner,
    ShardedStore,
};
use bvl_logp::LogpParams;
use bvl_net::PortMode;
use bvl_obs::{CostReport, Registry, Tier};
use bvl_scenario::{
    compile, parse, CellDoc, CompiledGrid, CompiledScenario, GridDoc, HostWl, Net, OnlyIn,
    ScenarioDoc, Scheme, Strategy, SuperWl, View, Violation, Work,
};
use std::sync::Mutex;

/// The shipped scenario sources, embedded so every binary finds them
/// regardless of working directory. The on-disk `scenarios/*.scn` files
/// are the checked-in form; `lab emit <name>` regenerates them from
/// [`reference()`].
pub const SHIPPED: [(&str, &str); 9] = [
    ("table1", include_str!("../../../scenarios/table1.scn")),
    ("thm1", include_str!("../../../scenarios/thm1.scn")),
    ("thm2", include_str!("../../../scenarios/thm2.scn")),
    ("faults", include_str!("../../../scenarios/faults.scn")),
    ("stack", include_str!("../../../scenarios/stack.scn")),
    ("scaling", include_str!("../../../scenarios/scaling.scn")),
    ("sort", include_str!("../../../scenarios/sort.scn")),
    ("stream", include_str!("../../../scenarios/stream.scn")),
    ("bsf", include_str!("../../../scenarios/bsf.scn")),
];

/// The embedded text of shipped scenario `name`, if it exists.
pub fn shipped(name: &str) -> Option<&'static str> {
    SHIPPED.iter().find(|(n, _)| *n == name).map(|(_, t)| *t)
}

/// The parsed form of shipped scenario `name`.
pub fn doc(name: &str) -> ScenarioDoc {
    let text = shipped(name).unwrap_or_else(|| panic!("unknown shipped scenario '{name}'"));
    parse(text).unwrap_or_else(|e| panic!("shipped scenario '{name}' does not parse: {e}"))
}

/// Shipped scenario `name`, lowered for a smoke or full run.
pub fn compiled(name: &str, smoke: bool) -> CompiledScenario {
    compile(&doc(name), smoke)
        .unwrap_or_else(|e| panic!("shipped scenario '{name}' does not compile: {e}"))
}

fn mode_str(mode: PortMode) -> &'static str {
    match mode {
        PortMode::Multi => "multi",
        PortMode::Single => "single",
    }
}

fn table1_main_doc() -> GridDoc {
    let mut g = GridDoc::new("table1", 42).domain("table1");
    for (net, family, mode) in labexp::table1::main_configs() {
        g = g.cell(CellDoc::new(
            Work::Measure {
                net,
                mode,
                seed: 42,
                view: View::Main { family },
            },
            format!("{} {} {}", family.label(), net.tag(), mode_str(mode)),
        ));
    }
    g
}

fn scaling_doc() -> GridDoc {
    let mut g = GridDoc::new("table1", 7).domain("table1-scaling");
    for (i, (net, family, label)) in labexp::table1::scaling_configs().into_iter().enumerate() {
        let mut c = CellDoc::new(
            Work::Measure {
                net,
                mode: PortMode::Multi,
                seed: 7,
                view: View::Scaling {
                    family,
                    label: label.to_string(),
                },
            },
            format!("{label} {}", net.tag()),
        );
        if i == 0 || i == 3 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn obs1_doc() -> GridDoc {
    let mut g = GridDoc::new("table1", 9).domain("table1-obs1");
    for (net, name) in labexp::table1::obs1_configs() {
        g = g.cell(CellDoc::new(
            Work::Measure {
                net,
                mode: PortMode::Multi,
                seed: 9,
                view: View::Obs1 {
                    label: name.to_string(),
                },
            },
            name,
        ));
    }
    g
}

fn k6_doc() -> GridDoc {
    GridDoc::new("table1", 11).domain("table1-k6").cell(
        CellDoc::new(
            Work::Measure {
                net: Net::Hypercube(6),
                mode: PortMode::Multi,
                seed: 11,
                view: View::K6 {
                    label: "hypercube_k6".into(),
                },
            },
            "hypercube(6) multi",
        )
        .smoke(),
    )
}

fn host_work(case: &labexp::thm1::Case) -> Work {
    Work::Host {
        logp: case.logp,
        fg: case.factor_g,
        fl: case.factor_l,
        wl: match case.workload {
            labexp::thm1::Workload::Ring { rounds, .. } => HostWl::Ring {
                rounds: rounds as u64,
            },
            labexp::thm1::Workload::AllToAll { .. } => HostWl::AllToAll,
        },
    }
}

fn thm1_scalings_doc() -> GridDoc {
    let mut g = GridDoc::new("thm1", 1996).domain("thm1-scalings");
    for (i, case) in labexp::thm1::scaling_cases().into_iter().enumerate() {
        let mut c = CellDoc::new(
            host_work(&case),
            format!(
                "{} {}x/{}x",
                case.workload.name(),
                case.factor_g,
                case.factor_l
            ),
        );
        if i == 0 {
            c = c.forced();
        } else if i <= 2 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn thm1_sizes_doc() -> GridDoc {
    let mut g = GridDoc::new("thm1", 1996).domain("thm1-sizes");
    for (i, case) in labexp::thm1::size_cases().into_iter().enumerate() {
        let mut c = CellDoc::new(host_work(&case), format!("ring p={} 1x/1x", case.logp.p));
        if i <= 1 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn thm2_cells_doc() -> GridDoc {
    let mut g = GridDoc::new("thm2", 2024).domain("thm2-cells");
    for (i, (p, h)) in labexp::thm2::cell_shapes().into_iter().enumerate() {
        let mut c = CellDoc::new(
            Work::Route {
                logp: LogpParams::new(p, 16, 1, 2).unwrap(),
                h,
                scheme: Scheme::Network,
                seed: 7,
            },
            format!("p={p} h={h}"),
        );
        if i == 3 {
            c = c.forced();
        } else if i < 3 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn thm2_big_doc() -> GridDoc {
    let mut g = GridDoc::new("thm2", 2024).domain("thm2-big");
    for (i, h) in labexp::thm2::BIG_HS.into_iter().enumerate() {
        let mut c = CellDoc::new(
            Work::RouteBig {
                logp: LogpParams::new(labexp::thm2::BIG_P, 16, 1, 2).unwrap(),
                h,
                seed: 9,
            },
            format!("p={} h={h}", labexp::thm2::BIG_P),
        );
        if i == 0 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn thm2_strategies_doc() -> GridDoc {
    let mut g = GridDoc::new("thm2", 2024).domain("thm2-strategies");
    for (i, (name, strategy)) in labexp::thm2::strategies().into_iter().enumerate() {
        let strategy = match strategy {
            RoutingStrategy::Offline => Strategy::Offline,
            RoutingStrategy::Randomized { slack } => Strategy::Randomized {
                slack: slack as u64,
            },
            RoutingStrategy::Deterministic(_) => Strategy::Deterministic,
        };
        let mut c = CellDoc::new(
            Work::Superstep {
                logp: LogpParams::new(16, 16, 1, 2).unwrap(),
                strategy,
                wl: SuperWl::Mod7Fan,
            },
            format!("strategy={name}"),
        );
        if i == 2 {
            c = c.forced();
        } else if i == 0 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn faults_doc(smoke: bool) -> GridDoc {
    let (domain, only) = if smoke {
        ("faults-smoke", OnlyIn::Smoke)
    } else {
        ("faults-full", OnlyIn::Full)
    };
    let mut g = GridDoc::new("faults", 100).domain(domain).only(only);
    for case in labexp::faults::cases(smoke) {
        g = g.cell(
            CellDoc::new(
                Work::Conformance {
                    sim: case.sim,
                    p: case.p,
                    h: case.h,
                    seed: case.seed,
                },
                format!(
                    "sim={} p={} h={} seed={}",
                    case.sim, case.p, case.h, case.seed
                ),
            )
            .plan(case.plan.clone()),
        );
    }
    g
}

fn stack_doc() -> GridDoc {
    let mut g = GridDoc::new("stack", labexp::stack::SEED).domain("stack");
    g.seed = Some(labexp::stack::SEED);
    for (i, (net, params)) in labexp::stack::nets().into_iter().enumerate() {
        let mut c = CellDoc::new(
            Work::Stack {
                net,
                rounds: labexp::stack::ROUNDS,
                seed: labexp::stack::SEED,
            },
            params,
        );
        if i == 0 {
            c = c.smoke();
        } else {
            c = c.forced();
        }
        g = g.cell(c);
    }
    g
}

fn sort_doc() -> GridDoc {
    let mut g = GridDoc::new("sort", labexp::sort::SEED).domain("sort");
    for (i, cfg) in labexp::sort::configs().iter().enumerate() {
        let mut c = CellDoc::new(
            Work::Sort {
                p: cfg.p,
                n: cfg.n,
                g: cfg.g,
                l: cfg.l,
                seed: cfg.seed,
            },
            labexp::sort::params_of(cfg),
        );
        if i <= 1 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn stream_doc() -> GridDoc {
    let mut g = GridDoc::new("stream", labexp::stream::SEED).domain("stream");
    for (i, cfg) in labexp::stream::configs().iter().enumerate() {
        let mut c = CellDoc::new(
            Work::Stream {
                p: cfg.sort.p,
                n: cfg.sort.n,
                window: cfg.window,
                g: cfg.sort.g,
                l: cfg.sort.l,
                seed: cfg.sort.seed,
            },
            labexp::stream::params_of(cfg),
        );
        if i == 0 || i == 3 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

fn bsf_doc() -> GridDoc {
    let mut g = GridDoc::new("bsf", 1996).domain("bsf");
    for (i, cfg) in labexp::bsf::configs().iter().enumerate() {
        let mut c = CellDoc::new(
            Work::Bsf {
                workers: cfg.workers,
                units: cfg.units,
                tt: cfg.tt,
                tw: cfg.tw,
                ts: cfg.ts,
                iters: cfg.iters,
            },
            labexp::bsf::params_of(cfg),
        );
        if i == 2 || i == 3 {
            c = c.smoke();
        }
        g = g.cell(c);
    }
    g
}

/// The code-defined reference document for shipped scenario `name`, built
/// from the same configuration lists as the legacy grid builders. This is
/// the oracle the checked-in `.scn` files are proven against (`doc(name)
/// == reference(name)` is tested) and what `lab emit <name>` prints.
pub fn reference(name: &str) -> ScenarioDoc {
    match name {
        "table1" => ScenarioDoc::new("table1")
            .grid(table1_main_doc())
            .grid(scaling_doc())
            .grid(obs1_doc())
            .grid(k6_doc()),
        // The standalone scaling scenario reuses the table1-scaling grid
        // verbatim (same exp, master, domains), so it shares cache keys
        // with the full table1 run — the exemplar for carving a focused
        // scenario out of a bigger experiment as pure data.
        "scaling" => ScenarioDoc::new("scaling").grid(scaling_doc()),
        "thm1" => ScenarioDoc::new("thm1")
            .grid(thm1_scalings_doc())
            .grid(thm1_sizes_doc()),
        "thm2" => ScenarioDoc::new("thm2")
            .grid(thm2_cells_doc())
            .grid(thm2_big_doc())
            .grid(thm2_strategies_doc()),
        "faults" => ScenarioDoc::new("faults")
            .grid(faults_doc(true))
            .grid(faults_doc(false)),
        "stack" => ScenarioDoc::new("stack").grid(stack_doc()),
        "sort" => ScenarioDoc::new("sort").grid(sort_doc()),
        "stream" => ScenarioDoc::new("stream").grid(stream_doc()),
        "bsf" => ScenarioDoc::new("bsf").grid(bsf_doc()),
        other => panic!("unknown shipped scenario '{other}'"),
    }
}

/// The legacy code-defined grids for shipped scenario `name` — the oracle
/// `lab validate` and the equivalence tests diff compiled digests against.
pub fn legacy_grids(name: &str, smoke: bool) -> Option<Vec<GridSpec>> {
    match name {
        "table1" => Some(labexp::table1::grids(smoke)),
        "thm1" => Some(labexp::thm1::grids(smoke)),
        "thm2" => Some(labexp::thm2::grids(smoke)),
        "faults" => Some(vec![labexp::faults::grid(smoke)]),
        "stack" => Some(labexp::stack::grids(smoke)),
        "sort" => Some(labexp::sort::grids(smoke)),
        "stream" => Some(labexp::stream::grids(smoke)),
        "bsf" => Some(labexp::bsf::grids(smoke)),
        "scaling" => {
            let mut g = labexp::table1::scaling_grid();
            if smoke {
                g.cells.retain(|c| c.index == 0 || c.index == 3);
            }
            Some(vec![g])
        }
        _ => None,
    }
}

/// The work item behind `cell` in a compiled grid.
pub fn work_for<'a>(grid: &'a CompiledGrid, cell: &CellSpec) -> &'a Work {
    grid.spec
        .cells
        .iter()
        .position(|c| c.domain == cell.domain && c.index == cell.index)
        .map(|i| &grid.work[i])
        .unwrap_or_else(|| panic!("cell {}[{}] not in compiled grid", cell.domain, cell.index))
}

/// Compute one cell from its typed work description. `captured` follows
/// the legacy contract: it attaches to the options of forced cells only
/// (the binaries pass their span-export registry; the service passes
/// `None` — forced cells still run live, and their rows are
/// registry-independent by the determinism contract).
pub fn run_work(
    work: &Work,
    cell: &CellSpec,
    mut job: Job,
    captured: Option<&Registry>,
) -> (Vec<Vec<String>>, Option<CostReport>) {
    let cap = if cell.force { captured } else { None };
    // The stack tower manages its own registry attachment (grounded and
    // hosted legs only); every other kind observes the whole run.
    if !matches!(work, Work::Stack { .. }) {
        if let Some(reg) = cap {
            job.opts = job.opts.registry(reg);
        }
    }
    match work {
        Work::Measure {
            net,
            mode,
            seed,
            view,
        } => {
            let rows = match view {
                View::Main { family } => {
                    vec![labexp::table1::measure_row(*net, *family, *mode, *seed)]
                }
                View::Scaling { family, label } => {
                    vec![labexp::table1::scaling_row(*net, *family, label, *seed)]
                }
                View::Obs1 { label } => vec![labexp::table1::obs1_row(*net, label, *seed)],
                View::K6 { label } => labexp::table1::k6_rows(*net, label, *seed),
            };
            (rows, None)
        }
        Work::Host { logp, fg, fl, wl } => {
            let workload = match wl {
                HostWl::Ring { rounds } => labexp::thm1::Workload::Ring {
                    p: logp.p,
                    rounds: *rounds as usize,
                },
                HostWl::AllToAll => labexp::thm1::Workload::AllToAll { p: logp.p },
            };
            let case = labexp::thm1::Case {
                logp: *logp,
                factor_g: *fg,
                factor_l: *fl,
                workload,
            };
            let (row, att) = labexp::thm1::run_case(case, &job.opts);
            (vec![row], att)
        }
        Work::Route {
            logp,
            h,
            scheme,
            seed,
        } => {
            let scheme = match scheme {
                Scheme::Network => SortScheme::Network,
                Scheme::Columnsort => SortScheme::Columnsort,
            };
            (
                vec![labexp::thm2::route_row(*logp, *h, scheme, *seed, &mut job)],
                None,
            )
        }
        Work::RouteBig { logp, h, seed } => (
            labexp::thm2::route_big_rows(*logp, *h, *seed, &mut job),
            None,
        ),
        Work::Superstep { logp, strategy, .. } => {
            let (name, strategy) = match strategy {
                Strategy::Offline => ("offline", RoutingStrategy::Offline),
                Strategy::Randomized { slack } => (
                    "randomized",
                    RoutingStrategy::Randomized {
                        slack: *slack as f64,
                    },
                ),
                Strategy::Deterministic => (
                    "deterministic",
                    RoutingStrategy::Deterministic(SortScheme::Network),
                ),
            };
            let (row, att) = labexp::thm2::superstep_row(*logp, name, strategy, &job.opts);
            (vec![row], att)
        }
        Work::Conformance { sim, p, h, seed } => {
            let plan = cell
                .plan
                .as_deref()
                .expect("conformance cell carries a plan")
                .parse()
                .expect("conformance plan parses");
            let case = Case {
                sim: *sim,
                p: *p,
                h: *h,
                seed: *seed,
                plan,
            };
            (labexp::faults::case_rows(&case), None)
        }
        Work::Stack { net, rounds, seed } => (
            vec![labexp::stack::stack_row(*net, *rounds, *seed, &job.opts, cap)],
            None,
        ),
        Work::Sort { p, n, g, l, seed } => {
            let cfg = bvl_workloads::SortConfig {
                p: *p,
                n: *n,
                g: *g,
                l: *l,
                seed: *seed,
            };
            (vec![labexp::sort::sort_row(&cfg, &job.opts)], None)
        }
        Work::Stream {
            p,
            n,
            window,
            g,
            l,
            seed,
        } => {
            let cfg = bvl_workloads::StreamConfig {
                sort: bvl_workloads::SortConfig {
                    p: *p,
                    n: *n,
                    g: *g,
                    l: *l,
                    seed: *seed,
                },
                window: *window,
            };
            (vec![labexp::stream::stream_row(&cfg, &job.opts)], None)
        }
        Work::Bsf {
            workers,
            units,
            tt,
            tw,
            ts,
            iters,
        } => {
            let params = bvl_workloads::BsfParams::new(*workers, *units, *tt, *tw, *ts, *iters)
                .expect("bsf cell parameters valid");
            (vec![labexp::bsf::bsf_row(&params)], None)
        }
    }
}

/// Audit one completed grid's rows against the proven lower bounds.
pub fn audit(grid: &CompiledGrid, rows: &[Vec<Vec<String>>]) -> Vec<Violation> {
    bvl_scenario::audit_grid(&grid.spec, &grid.work, rows)
}

/// Run one compiled grid through a [`labexp::Lab`], collecting the flagged
/// cell's cost attribution and auditing the completed rows. Violations are
/// fatal: a measured cost below a proven bound is a simulator bug, not a
/// fast run, so the binaries exit rather than print a broken table.
pub fn run_in_lab(
    lab: &labexp::Lab,
    grid: &CompiledGrid,
    captured: Option<&Registry>,
) -> (GridReport, Option<CostReport>) {
    let att: Mutex<Option<CostReport>> = Mutex::new(None);
    let rep = lab.run(&grid.spec, |cell, job| {
        let (rows, a) = run_work(work_for(grid, cell), cell, job, captured);
        if let Some(a) = a {
            *att.lock().expect("attribution lock") = Some(a);
        }
        rows
    });
    let violations = audit(grid, &rep.rows);
    if !violations.is_empty() {
        for v in &violations {
            eprintln!("[audit] {v}");
        }
        eprintln!(
            "[audit] grid '{}': {} lower-bound violation(s) — a measured cost below a \
             proven bound is a simulator bug",
            grid.spec.exp,
            violations.len()
        );
        std::process::exit(2);
    }
    (rep, att.into_inner().expect("attribution lock"))
}

/// An [`Experiment`] compiled from a shipped scenario document. Both the
/// full and smoke lowerings are kept so cells of either mode dispatch.
struct ScenarioExperiment {
    name: String,
    full: CompiledScenario,
    smoke: CompiledScenario,
}

impl ScenarioExperiment {
    fn new(name: &str) -> ScenarioExperiment {
        ScenarioExperiment {
            name: name.to_string(),
            full: compiled(name, false),
            smoke: compiled(name, true),
        }
    }

    fn work_of(&self, cell: &CellSpec) -> &Work {
        for grid in self.full.grids.iter().chain(self.smoke.grids.iter()) {
            if let Some(i) = grid
                .spec
                .cells
                .iter()
                .position(|c| c.domain == cell.domain && c.index == cell.index)
            {
                return &grid.work[i];
            }
        }
        panic!("unknown {} cell {}[{}]", self.name, cell.domain, cell.index)
    }
}

impl Experiment for ScenarioExperiment {
    fn name(&self) -> &str {
        &self.name
    }
    fn grids(&self, smoke: bool) -> Vec<GridSpec> {
        let compiled = if smoke { &self.smoke } else { &self.full };
        compiled.grids.iter().map(|g| g.spec.clone()).collect()
    }
    fn run_cell(&self, cell: &CellSpec, job: Job) -> Vec<Vec<String>> {
        run_work(self.work_of(cell), cell, job, None).0
    }
    fn audit(&self, grid: &GridSpec, rows: &[Vec<Vec<String>>]) -> Vec<String> {
        let work: Vec<Work> = grid.cells.iter().map(|c| self.work_of(c).clone()).collect();
        bvl_scenario::audit_grid(grid, &work, rows)
            .iter()
            .map(|v| v.to_string())
            .collect()
    }
}

/// Every experiment the `lab` CLI and HTTP service can run, compiled from
/// the checked-in scenario documents. (`scaling` is not listed: it aliases
/// a subset of `table1`'s cells and would collide with its experiment
/// name; run it as a document via `lab run --scenario`.)
pub fn experiments() -> Vec<Box<dyn Experiment>> {
    ["table1", "thm1", "thm2", "faults", "stack", "sort", "stream", "bsf"]
        .into_iter()
        .map(|name| Box::new(ScenarioExperiment::new(name)) as Box<dyn Experiment>)
        .collect()
}

/// The scenario runner behind `POST /run {"scenario": ...}` and `lab run
/// --scenario`: parse, compile, run every grid through the shared store,
/// audit each against the lower bounds, merge the reports.
pub struct Runner;

impl ScenarioRunner for Runner {
    fn run_scenario(
        &self,
        text: &str,
        store: &ShardedStore,
        registry: &Registry,
        smoke: bool,
        tier: Option<Tier>,
    ) -> Result<(String, GridReport), ScenarioError> {
        let doc = parse(text).map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        let compiled = compile(&doc, smoke).map_err(|e| ScenarioError::Invalid(e.to_string()))?;
        let mut merged = GridReport::empty();
        for grid in &compiled.grids {
            let mut spec = grid.spec.clone();
            if let Some(t) = tier {
                // Observability-only: the tier never moves cache keys.
                spec.opts = spec.opts.clone().obs(t);
            }
            let rep = run_grid(&spec, Some(store), registry, |cell, job| {
                run_work(work_for(grid, cell), cell, job, None).0
            })
            .map_err(|e| {
                ScenarioError::Failed(format!("grid '{}' failed: {e}", grid.spec.exp))
            })?;
            let violations = audit(grid, &rep.rows);
            if !violations.is_empty() {
                let lines: Vec<String> = violations.iter().map(|v| v.to_string()).collect();
                return Err(ScenarioError::Failed(format!(
                    "bounds audit failed ({} violation{}): {}",
                    lines.len(),
                    if lines.len() == 1 { "" } else { "s" },
                    lines.join("; ")
                )));
            }
            merged.merge(rep);
        }
        Ok((compiled.name, merged))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bvl_scenario::grid_digest;

    const NAMES: [&str; 9] = [
        "table1", "thm1", "thm2", "faults", "stack", "scaling", "sort", "stream", "bsf",
    ];

    #[test]
    fn shipped_documents_match_their_reference() {
        for name in NAMES {
            assert_eq!(doc(name), reference(name), "scenario '{name}' drifted");
        }
    }

    #[test]
    fn reference_documents_round_trip_through_text_and_repro() {
        for name in NAMES {
            let r = reference(name);
            assert_eq!(parse(&r.to_text()).unwrap(), r, "{name}: to_text");
            assert_eq!(parse(&r.repro()).unwrap(), r, "{name}: repro");
        }
    }

    #[test]
    fn compiled_scenarios_match_the_legacy_grids_bit_for_bit() {
        for name in NAMES {
            for smoke in [false, true] {
                let compiled = compiled(name, smoke);
                let legacy = legacy_grids(name, smoke).expect("shipped name");
                assert_eq!(
                    compiled.grids.len(),
                    legacy.len(),
                    "{name} smoke={smoke}: grid count"
                );
                for (cg, lg) in compiled.grids.iter().zip(&legacy) {
                    assert_eq!(
                        grid_digest(&cg.spec),
                        grid_digest(lg),
                        "{name} smoke={smoke}: grid '{}' digest (exp/master/opts/cells/keys)",
                        lg.exp
                    );
                }
            }
        }
    }

    #[test]
    fn a_cost_below_a_proven_bound_is_caught() {
        // Fabricate rows that undercut the (h-1)·G + L routing bound: the
        // audit must flag them (a simulator "this fast" is a bug).
        let scenario = compiled("thm2", true);
        let grid = &scenario.grids[0]; // thm2-cells, Route work
        let broken: Vec<Vec<Vec<String>>> = grid
            .spec
            .cells
            .iter()
            .map(|_| {
                vec![["16", "1", "0", "0", "0", "1", "1", "16.00", "0.06", "1.00"]
                    .iter()
                    .map(|s| s.to_string())
                    .collect()]
            })
            .collect();
        let violations = audit(grid, &broken);
        assert!(
            violations.len() >= grid.spec.cells.len(),
            "broken costs must be flagged, got {violations:?}"
        );
        // And the Experiment-level hook reports them as strings.
        let exp = ScenarioExperiment::new("thm2");
        let flagged = Experiment::audit(&exp, &grid.spec, &broken);
        assert_eq!(flagged.len(), violations.len());
    }

    #[test]
    fn experiments_cover_every_legacy_front_end_name() {
        let names: Vec<String> = experiments().iter().map(|e| e.name().to_string()).collect();
        assert_eq!(
            names,
            ["table1", "thm1", "thm2", "faults", "stack", "sort", "stream", "bsf"]
        );
    }
}

//! Lab grid definitions shared by the `exp_*` binaries, the `lab` CLI and
//! the HTTP service.
//!
//! Each experiment binary used to own its configuration lists inline; the
//! `bvl-lab` result store keys cells by `(experiment, domain, index,
//! params, options, plan)`, so every front end that wants to share the
//! cache must build **the same grids**. This module is that single
//! definition: the binaries drive the grids through [`Lab`] (caching is
//! opt-in via `BVL_LAB_DIR`), while [`experiments`] packages the same
//! grids behind the [`bvl_lab::Experiment`] trait for `lab run`/`serve`.
//!
//! Two invariants carried over from `bvl_bench::sweep`:
//!
//! * **Determinism** — cell bodies draw only from [`Job::rng`] (derived
//!   from `(master, domain, index)`) or from constants, so a cell computes
//!   identical rows cold, warm, resumed, or at any `RAYON_NUM_THREADS`.
//! * **Flagged cells stay live** — cells that feed an enabled
//!   observability registry (cost attribution, span export) are marked
//!   [`CellSpec::forced`]: they recompute on every run and are never
//!   stored, because their side effects (spans) are the point.

use crate::f2;
use bvl_bsp::{BspParams, FnProcess, Status};
use bvl_core::slowdown::{theorem1_bound, theorem2_s};
use bvl_core::{
    route_deterministic, simulate_bsp_on_logp, simulate_logp_on_bsp, RoutingStrategy, SortScheme,
    Theorem1Config, Theorem2Config,
};
use bvl_exec::RunOptions;
use bvl_lab::{
    run_grid, CellSpec, CodeFingerprint, Experiment, GridReport, GridSpec, Job, OnStale,
    ShardedStore,
};
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{HRelation, Payload, ProcId};
use bvl_obs::{CostReport, Registry};
use std::path::Path;

/// The optional caching context of an experiment binary: a store when
/// `BVL_LAB_DIR` is set, otherwise a pure pass-through. Both paths go
/// through [`bvl_lab::run_grid`], so the execution and seeding are
/// identical — caching changes *when* a cell computes, never *what*.
pub struct Lab {
    /// The store, when `BVL_LAB_DIR` selected one.
    pub store: Option<ShardedStore>,
    /// Cache hit/miss counters and compute-latency histograms.
    pub registry: Registry,
}

impl Lab {
    /// Build from the environment: `BVL_LAB_DIR=<dir>` opts into the
    /// store (created on first use; a store written by older code is
    /// archived and recomputed), and `BVL_LAB_SHARDS=<n>` selects the
    /// shard count when the directory is created (an existing directory
    /// keeps whatever count it records). Unset or empty means uncached.
    pub fn from_env() -> Lab {
        Lab::from_dir(std::env::var("BVL_LAB_DIR").ok().filter(|d| !d.is_empty()))
    }

    /// The shard count requested by `BVL_LAB_SHARDS` (default 1).
    pub fn shards_from_env() -> usize {
        std::env::var("BVL_LAB_SHARDS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(1)
    }

    /// Build from an explicit directory; `None` means uncached. An
    /// unopenable store degrades to uncached with a warning rather than
    /// aborting: the cache is an accelerator, and a bad `BVL_LAB_DIR`
    /// (permissions, a file in the way) should not take the experiment
    /// down with it.
    pub fn from_dir(dir: Option<impl AsRef<str>>) -> Lab {
        let Some(dir) = dir else {
            return Lab {
                store: None,
                registry: Registry::disabled(),
            };
        };
        let dir = dir.as_ref();
        let path = Path::new(dir);
        // An existing store keeps its recorded shard count; a fresh one
        // takes BVL_LAB_SHARDS.
        let shards = bvl_lab::shard_count_of(path)
            .ok()
            .filter(|_| path.join("SHARDS.json").exists())
            .unwrap_or_else(Lab::shards_from_env);
        match ShardedStore::open(path, shards, CodeFingerprint::current(), OnStale::Invalidate) {
            Ok(store) => {
                eprintln!(
                    "[lab] store {dir}: {} cached cells across {} shard(s)",
                    store.len(),
                    store.shard_count()
                );
                Lab {
                    store: Some(store),
                    registry: Registry::enabled(1),
                }
            }
            Err(e) => {
                eprintln!("[lab] warning: cannot open store at {dir}: {e}; running uncached");
                Lab {
                    store: None,
                    registry: Registry::disabled(),
                }
            }
        }
    }

    /// Run one grid, cached when a store is attached. I/O failures while
    /// journaling are fatal (a silently un-journaled cell would defeat
    /// resume), so the binaries exit rather than continue uncached.
    pub fn run<F>(&self, grid: &GridSpec, f: F) -> GridReport
    where
        F: Fn(&CellSpec, Job) -> Vec<Vec<String>> + Sync,
    {
        match run_grid(grid, self.store.as_ref(), &self.registry, f) {
            Ok(rep) => rep,
            Err(e) => {
                eprintln!("[lab] grid '{}' failed: {e}", grid.exp);
                std::process::exit(2);
            }
        }
    }
}

/// Flatten a report of single-row cells into table rows (request order).
pub fn single_rows(rep: GridReport) -> Vec<Vec<String>> {
    rep.rows
        .into_iter()
        .map(|mut cell| {
            debug_assert_eq!(cell.len(), 1, "cell is not single-row");
            cell.pop().expect("non-empty cell")
        })
        .collect()
}

/// Flatten a report of multi-row cells into table rows (request order).
pub fn flat_rows(rep: GridReport) -> Vec<Vec<String>> {
    rep.rows.into_iter().flatten().collect()
}

pub mod table1 {
    //! E-T1 / E-NETEQ grids (Table 1, the scaling check, Observation 1,
    //! and the span-exporting hypercube-k6 cell).

    use super::*;
    use bvl_net::{Family, PortMode};
    use bvl_model::Steps;
    use bvl_obs::{Span, SpanKind};

    // The topology vocabulary (tags, construction, measurement) moved to
    // `bvl-scenario` so `.scn` files and these grids share one definition;
    // re-exported here because the binaries and tests reach it as
    // `labexp::table1::{measure, Net}`.
    pub use bvl_scenario::{measure, Net};

    /// One Table 1 measured-vs-predicted row.
    pub fn measure_row(net: Net, family: Family, mode: PortMode, seed: u64) -> Vec<String> {
        let m = measure(net, mode, seed);
        let p = m.p as f64;
        let pred_g = family.gamma(p);
        let pred_d = family.delta(p);
        vec![
            family.label(),
            format!("{}", m.p),
            f2(m.gamma),
            f2(pred_g),
            f2(m.gamma / pred_g),
            f2(m.delta),
            f2(pred_d),
            f2(m.delta / pred_d),
            f2(m.r2),
        ]
    }

    /// One gamma-ratio scaling-check row.
    pub fn scaling_row(net: Net, family: Family, label: &str, seed: u64) -> Vec<String> {
        let m = measure(net, PortMode::Multi, seed);
        vec![
            label.into(),
            format!("{}", m.p),
            f2(m.gamma),
            f2(family.gamma(m.p as f64)),
            f2(m.delta),
            f2(family.delta(m.p as f64)),
        ]
    }

    /// One Observation 1 row: predicted `(G*, L*)` from measured `(g*, ℓ*)`.
    pub fn obs1_row(net: Net, label: &str, seed: u64) -> Vec<String> {
        let m = measure(net, PortMode::Multi, seed);
        // LogP-side: fit over the small-h prefix only (h <= capacity-ish).
        let small: Vec<(f64, f64)> = m
            .samples
            .iter()
            .take(3)
            .map(|&(h, t)| (h as f64, t))
            .collect();
        let (g_logp, l_logp, _) = bvl_model::stats::linear_fit(&small);
        let (pred_g, pred_l) = Family::predicted_logp(m.gamma, m.delta);
        vec![
            label.into(),
            f2(m.gamma),
            f2(m.delta),
            f2(g_logp),
            f2(pred_g),
            f2(l_logp),
            f2(pred_l),
        ]
    }

    /// The k6 deep-dive rows. Row 0: the fit summary; rows 1..: the raw
    /// `(h, T(h))` samples, stored at full precision so the span timeline
    /// rebuilds exactly.
    pub fn k6_rows(net: Net, label: &str, seed: u64) -> Vec<Vec<String>> {
        let m = measure(net, PortMode::Multi, seed);
        let mut rows = vec![vec![
            label.to_string(),
            m.p.to_string(),
            f2(m.gamma),
            f2(m.delta),
            f2(m.r2),
        ]];
        for &(h, t) in &m.samples {
            rows.push(vec![h.to_string(), format!("{t}")]);
        }
        rows
    }

    pub(crate) fn main_configs() -> Vec<(Net, Family, PortMode)> {
        vec![
            (Net::Array2d(16), Family::ArrayD(2), PortMode::Multi), // p = 256
            (Net::Array3d(6), Family::ArrayD(3), PortMode::Multi),  // p = 216
            (Net::Hypercube(8), Family::HypercubeMulti, PortMode::Multi), // p = 256
            (Net::Hypercube(8), Family::HypercubeSingle, PortMode::Single),
            (Net::Butterfly(5), Family::Butterfly, PortMode::Multi), // p = 192
            (Net::Ccc(5), Family::Ccc, PortMode::Multi),             // p = 160
            (Net::ShuffleExchange(8), Family::ShuffleExchange, PortMode::Multi), // p = 256
            (Net::MeshOfTrees(16), Family::MeshOfTrees, PortMode::Multi), // p = 256
        ]
    }

    pub(crate) fn scaling_configs() -> Vec<(Net, Family, &'static str)> {
        vec![
            (Net::Hypercube(4), Family::HypercubeMulti, "hypercube (multi)"),
            (Net::Hypercube(6), Family::HypercubeMulti, "hypercube (multi)"),
            (Net::Hypercube(8), Family::HypercubeMulti, "hypercube (multi)"),
            (Net::MeshOfTrees(4), Family::MeshOfTrees, "mesh-of-trees"),
            (Net::MeshOfTrees(8), Family::MeshOfTrees, "mesh-of-trees"),
            (Net::MeshOfTrees(16), Family::MeshOfTrees, "mesh-of-trees"),
        ]
    }

    pub(crate) fn obs1_configs() -> Vec<(Net, &'static str)> {
        vec![
            (Net::Hypercube(8), "hypercube(256)"),
            (Net::Array2d(16), "2d-array(256)"),
            (Net::MeshOfTrees(16), "mesh-of-trees(256)"),
        ]
    }

    /// The Table 1 grid (one cell per topology row).
    pub fn main_grid() -> GridSpec {
        let mut g = GridSpec::new("table1", 42);
        for (i, (net, family, mode)) in main_configs().into_iter().enumerate() {
            let mode = match mode {
                PortMode::Multi => "multi",
                PortMode::Single => "single",
            };
            g = g.cell(CellSpec::new(
                "table1",
                i,
                format!("{} {} {mode}", family.label(), net.tag()),
            ));
        }
        g
    }

    /// The gamma-ratio scaling check (hypercube vs mesh-of-trees ladder).
    pub fn scaling_grid() -> GridSpec {
        let mut g = GridSpec::new("table1", 7);
        for (i, (net, _, label)) in scaling_configs().into_iter().enumerate() {
            g = g.cell(CellSpec::new(
                "table1-scaling",
                i,
                format!("{label} {}", net.tag()),
            ));
        }
        g
    }

    /// Observation 1: best-attainable LogP vs BSP on the same network.
    pub fn obs1_grid() -> GridSpec {
        let mut g = GridSpec::new("table1", 9);
        for (i, (_, name)) in obs1_configs().into_iter().enumerate() {
            g = g.cell(CellSpec::new("table1-obs1", i, name));
        }
        g
    }

    /// The hypercube-k6 cell whose per-h routing samples become spans.
    /// Cacheable (not forced): the payload carries the raw samples, so the
    /// span timeline and the SUMMARY line rebuild bit-identically from a
    /// warm hit via [`k6_registry`].
    pub fn k6_grid() -> GridSpec {
        GridSpec::new("table1", 11).cell(CellSpec::new("table1-k6", 0, "hypercube(6) multi"))
    }

    /// All grids of the `table1` experiment. Smoke keeps the small nets:
    /// the hypercube(4)/mesh-of-trees(4) scaling cells (their indexes and
    /// params match the full grid, so smoke and full share cache keys) and
    /// the k6 cell.
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        if smoke {
            let mut scaling = scaling_grid();
            scaling.cells.retain(|c| c.index == 0 || c.index == 3);
            vec![scaling, k6_grid()]
        } else {
            vec![main_grid(), scaling_grid(), obs1_grid(), k6_grid()]
        }
    }

    /// Compute one `table1` cell (dispatch on the cell's domain).
    pub fn run_cell(cell: &CellSpec, _job: Job) -> Vec<Vec<String>> {
        match cell.domain.as_str() {
            "table1" => {
                let (net, family, mode) = main_configs()[cell.index];
                vec![measure_row(net, family, mode, 42)]
            }
            "table1-scaling" => {
                let (net, family, label) = scaling_configs()[cell.index];
                vec![scaling_row(net, family, label, 7)]
            }
            "table1-obs1" => {
                let (net, name) = obs1_configs()[cell.index];
                vec![obs1_row(net, name, 9)]
            }
            "table1-k6" => k6_rows(Net::Hypercube(6), "hypercube_k6", 11),
            other => panic!("unknown table1 domain '{other}'"),
        }
    }

    /// Rebuild the k6 cell's span timeline from its payload rows:
    /// back-to-back `Routing` spans, one per (h, T(h)) sample. The rebuilt
    /// registry records at the process-wide `--obs-tier`, like any live
    /// capture.
    pub fn k6_registry(rows: &[Vec<String>]) -> Registry {
        let p: usize = rows[0][1].parse().expect("k6 meta row carries p");
        let registry = crate::obs::capture_registry("exp_table1", 0, p);
        let mut clock = Steps::ZERO;
        for sample in &rows[1..] {
            let h: u64 = sample[0].parse().expect("sample h");
            let t: f64 = sample[1].parse().expect("sample t");
            let end = clock + Steps(t.round() as u64);
            registry.span(Span::new(SpanKind::Routing, clock, end).at_index(h));
            clock = end;
        }
        registry
    }
}

pub mod thm1 {
    //! E-THM1 grids (LogP-on-BSP slowdown across `(g, ℓ)` scalings and
    //! machine sizes).

    use super::*;

    /// A workload family, instantiable any number of times (the native and
    /// the hosted run each need a fresh copy of the scripts).
    #[derive(Clone, Copy)]
    pub enum Workload {
        /// `rounds` neighbor rounds on a `p`-cycle.
        Ring {
            /// Machine size.
            p: usize,
            /// Number of send/recv rounds.
            rounds: usize,
        },
        /// Staggered total exchange on `p` processors.
        AllToAll {
            /// Machine size.
            p: usize,
        },
    }

    impl Workload {
        /// The row label (also the cell-params prefix in the grids).
        pub fn name(self) -> String {
            match self {
                Workload::Ring { rounds, .. } => format!("ring x{rounds}"),
                Workload::AllToAll { .. } => "all-to-all".into(),
            }
        }

        fn build(self) -> Vec<Script> {
            match self {
                Workload::Ring { p, rounds } => (0..p)
                    .map(|i| {
                        let mut ops = Vec::new();
                        for r in 0..rounds {
                            ops.push(Op::Send {
                                dst: ProcId(((i + 1) % p) as u32),
                                payload: Payload::word(r as u32, i as i64),
                            });
                            ops.push(Op::Recv);
                        }
                        Script::new(ops)
                    })
                    .collect(),
                Workload::AllToAll { p } => (0..p)
                    .map(|me| {
                        let mut ops = Vec::new();
                        for t in 0..p - 1 {
                            ops.push(Op::Send {
                                dst: ProcId(((me + 1 + t) % p) as u32),
                                payload: Payload::word(0, me as i64),
                            });
                        }
                        ops.extend(std::iter::repeat_n(Op::Recv, p - 1));
                        Script::new(ops)
                    })
                    .collect(),
            }
        }
    }

    /// One table row: a workload on a LogP machine hosted by a BSP machine
    /// with `(g, ℓ) = (factor_g · G, factor_l · L)`.
    #[derive(Clone, Copy)]
    pub struct Case {
        /// The native LogP machine.
        pub logp: LogpParams,
        /// Host `g` as a multiple of the LogP `G`.
        pub factor_g: u64,
        /// Host `ℓ` as a multiple of the LogP `L`.
        pub factor_l: u64,
        /// The workload.
        pub workload: Workload,
    }

    /// Run one case; returns the table row plus the cost attribution when
    /// the options carry an enabled registry.
    pub fn run_case(case: Case, opts: &RunOptions) -> (Vec<String>, Option<CostReport>) {
        let Case {
            logp,
            factor_g,
            factor_l,
            workload,
        } = case;
        let mut native = LogpMachine::with_config(logp, LogpConfig::stall_free(), workload.build());
        let native_time = native.run().expect("native run").makespan;
        let bsp = BspParams::new(logp.p, logp.g * factor_g, logp.l * factor_l).unwrap();
        let rep = simulate_logp_on_bsp(logp, bsp, workload.build(), Theorem1Config::default(), opts)
            .expect("hosted run");
        let slowdown = rep.bsp.cost.get() as f64 / native_time.get() as f64;
        let bound = theorem1_bound(bsp.g, bsp.l, logp.g, logp.l);
        let attributed = opts.registry.is_enabled().then(|| {
            rep.attribution(&bsp, format!("thm1 {} {factor_g}x/{factor_l}x", workload.name()))
        });
        let row = vec![
            workload.name(),
            format!("{}", logp.p),
            format!("{}x/{}x", factor_g, factor_l),
            format!("{}", native_time.get()),
            format!("{}", rep.bsp.cost.get()),
            f2(slowdown),
            f2(bound),
            f2(slowdown / bound),
        ];
        (row, attributed)
    }

    /// The reference LogP machine of the scalings table.
    pub fn reference_params() -> LogpParams {
        LogpParams::new(16, 16, 1, 4).unwrap()
    }

    pub(crate) fn scaling_cases() -> Vec<Case> {
        let logp = reference_params();
        let mut cases = Vec::new();
        for (fg, fl) in [(1u64, 1u64), (2, 1), (1, 2), (2, 2), (4, 4)] {
            cases.push(Case {
                logp,
                factor_g: fg,
                factor_l: fl,
                workload: Workload::Ring { p: 16, rounds: 8 },
            });
        }
        for (fg, fl) in [(1u64, 1u64), (2, 2)] {
            cases.push(Case {
                logp,
                factor_g: fg,
                factor_l: fl,
                workload: Workload::AllToAll { p: 16 },
            });
        }
        cases
    }

    pub(crate) fn size_cases() -> Vec<Case> {
        [4usize, 8, 16, 32, 64]
            .into_iter()
            .map(|p| Case {
                logp: LogpParams::new(p, 16, 1, 4).unwrap(),
                factor_g: 1,
                factor_l: 1,
                workload: Workload::Ring { p, rounds: 8 },
            })
            .collect()
    }

    /// The `(g, ℓ)` scalings grid. Cell 0 (ring, matched 1x/1x) is forced:
    /// it feeds the cost-attribution summary and `--trace-out`, so it runs
    /// live on every invocation.
    pub fn scalings_grid() -> GridSpec {
        let mut g = GridSpec::new("thm1", 1996);
        for (i, case) in scaling_cases().into_iter().enumerate() {
            let mut cell = CellSpec::new(
                "thm1-scalings",
                i,
                format!(
                    "{} {}x/{}x",
                    case.workload.name(),
                    case.factor_g,
                    case.factor_l
                ),
            );
            if i == 0 {
                cell = cell.forced();
            }
            g = g.cell(cell);
        }
        g
    }

    /// Matched parameters across machine sizes.
    pub fn sizes_grid() -> GridSpec {
        let mut g = GridSpec::new("thm1", 1996);
        for (i, case) in size_cases().into_iter().enumerate() {
            g = g.cell(CellSpec::new(
                "thm1-sizes",
                i,
                format!("ring p={} 1x/1x", case.logp.p),
            ));
        }
        g
    }

    /// All grids of the `thm1` experiment. Smoke keeps the cheap unforced
    /// cells (scalings 1–2, sizes 0–1).
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        let mut scalings = scalings_grid();
        let mut sizes = sizes_grid();
        if smoke {
            scalings.cells.retain(|c| !c.force && c.index <= 2);
            sizes.cells.retain(|c| c.index <= 1);
        }
        vec![scalings, sizes]
    }

    /// Compute one `thm1` cell. `captured` is attached to the options of
    /// forced cells only (the binary passes its export registry; the
    /// service passes `None` — forced cells still run live, their rows are
    /// registry-independent by the determinism contract).
    pub fn run_cell_with(
        cell: &CellSpec,
        mut job: Job,
        captured: Option<&Registry>,
    ) -> (Vec<Vec<String>>, Option<CostReport>) {
        let case = match cell.domain.as_str() {
            "thm1-scalings" => scaling_cases()[cell.index],
            "thm1-sizes" => size_cases()[cell.index],
            other => panic!("unknown thm1 domain '{other}'"),
        };
        if cell.force {
            if let Some(reg) = captured {
                job.opts = job.opts.registry(reg);
            }
        }
        let (row, att) = run_case(case, &job.opts);
        (vec![row], att)
    }
}

pub mod thm2 {
    //! E-THM2 grids (deterministic h-relation routing, the large-h sort
    //! regime, and the full superstep simulation).

    use super::*;

    pub(crate) fn cell_shapes() -> Vec<(usize, usize)> {
        let mut cells = Vec::new();
        for p in [16usize, 64] {
            for h in [1usize, 2, 4, 8, 16, 32] {
                cells.push((p, h));
            }
        }
        cells
    }

    pub(crate) const BIG_P: usize = 8;
    pub(crate) const BIG_HS: [usize; 3] = [98, 128, 256];

    pub(crate) fn strategies() -> Vec<(&'static str, RoutingStrategy)> {
        vec![
            ("offline", RoutingStrategy::Offline),
            ("randomized", RoutingStrategy::Randomized { slack: 2.0 }),
            (
                "deterministic",
                RoutingStrategy::Deterministic(SortScheme::Network),
            ),
        ]
    }

    /// The phase-breakdown grid over `(p, h)`. Cell 3 — `(16, 8)` — is
    /// forced: its routing phases are captured as spans for the SUMMARY
    /// line and `--trace-out`.
    pub fn cells_grid() -> GridSpec {
        let mut g = GridSpec::new("thm2", 2024);
        for (i, (p, h)) in cell_shapes().into_iter().enumerate() {
            let mut cell = CellSpec::new("thm2-cells", i, format!("p={p} h={h}"));
            if i == 3 {
                cell = cell.forced();
            }
            g = g.cell(cell);
        }
        g
    }

    /// The large-h regime grid (Network vs Columnsort on one relation).
    pub fn big_grid() -> GridSpec {
        let mut g = GridSpec::new("thm2", 2024);
        for (i, h) in BIG_HS.into_iter().enumerate() {
            g = g.cell(CellSpec::new("thm2-big", i, format!("p={BIG_P} h={h}")));
        }
        g
    }

    /// The full superstep simulation, one cell per routing strategy. The
    /// deterministic strategy (cell 2) is forced: its superstep
    /// decomposition is the richest span set the experiment exports.
    pub fn strategies_grid() -> GridSpec {
        let mut g = GridSpec::new("thm2", 2024);
        for (i, (name, _)) in strategies().into_iter().enumerate() {
            let mut cell = CellSpec::new("thm2-strategies", i, format!("strategy={name}"));
            if i == 2 {
                cell = cell.forced();
            }
            g = g.cell(cell);
        }
        g
    }

    /// All grids of the `thm2` experiment. Smoke keeps small unforced
    /// cells: the first three `(16, h)` phase cells, the h=98 sort cell,
    /// and the offline strategy.
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        let mut cells = cells_grid();
        let mut big = big_grid();
        let mut strat = strategies_grid();
        if smoke {
            cells.cells.retain(|c| c.index < 3);
            big.cells.truncate(1);
            strat.cells.retain(|c| c.index == 0);
        }
        vec![cells, big, strat]
    }

    fn make_superstep_processes(p: usize) -> Vec<FnProcess<i64>> {
        (0..p)
            .map(|_| {
                FnProcess::new(0i64, move |acc, ctx| {
                    let p = ctx.p();
                    if ctx.superstep_index() > 0 {
                        while let Some(m) = ctx.recv() {
                            *acc += m.payload.expect_word();
                        }
                    }
                    if ctx.superstep_index() < 4 {
                        ctx.charge(20);
                        let me = ctx.me().index();
                        for k in 1..=3usize {
                            ctx.send(
                                ProcId::from((me * 5 + k * 7) % p),
                                Payload::word(k as u32, me as i64),
                            );
                        }
                        Status::Continue
                    } else {
                        Status::Halt
                    }
                })
            })
            .collect()
    }

    /// One phase-breakdown row: route a random exact h-relation (drawn
    /// from `job.rng`) deterministically and compare against Theorem 2.
    pub fn route_row(
        params: LogpParams,
        h: usize,
        scheme: SortScheme,
        route_seed: u64,
        job: &mut Job,
    ) -> Vec<String> {
        let rel = HRelation::random_exact(&mut job.rng, params.p, h);
        let rep = route_deterministic(params, &rel, scheme, &job.opts.clone().seed(route_seed))
            .expect("routing succeeds");
        let native = (params.g * h as u64 + params.l) as f64;
        let s_meas = rep.total.get() as f64 / native;
        let s_pred = theorem2_s(&params, h as u64);
        vec![
            format!("{}", params.p),
            format!("{h}"),
            format!("{}", rep.t_r.get()),
            format!("{}", rep.t_sort.get()),
            format!("{}", rep.t_s.get()),
            format!("{}", rep.t_cycles.get()),
            format!("{}", rep.total.get()),
            f2(native),
            f2(s_meas),
            f2(s_pred),
        ]
    }

    /// The large-h rows: both sorting schemes route the *same* relation,
    /// so they share one cell and one RNG stream.
    pub fn route_big_rows(
        params: LogpParams,
        h: usize,
        route_seed: u64,
        job: &mut Job,
    ) -> Vec<Vec<String>> {
        let rel = HRelation::random_exact(&mut job.rng, params.p, h);
        let opts = job.opts.clone().seed(route_seed);
        let mut rows = Vec::new();
        for scheme in [SortScheme::Network, SortScheme::Columnsort] {
            let rep = route_deterministic(params, &rel, scheme, &opts).expect("routing succeeds");
            let native = (params.g * h as u64 + params.l) as f64;
            rows.push(vec![
                format!("{h}"),
                format!("{scheme:?}"),
                format!("{}", rep.sort_rounds),
                format!("{}", rep.t_sort.get()),
                format!("{}", rep.total.get()),
                f2(rep.total.get() as f64 / native),
            ]);
        }
        rows
    }

    /// One full superstep-simulation row, plus the cost attribution when
    /// the options carry an enabled registry.
    pub fn superstep_row(
        logp: LogpParams,
        name: &str,
        strategy: RoutingStrategy,
        opts: &RunOptions,
    ) -> (Vec<String>, Option<CostReport>) {
        let rep = simulate_bsp_on_logp(
            logp,
            make_superstep_processes(logp.p),
            Theorem2Config { strategy },
            opts,
        )
        .expect("superstep simulation");
        let att = opts
            .registry
            .is_enabled()
            .then(|| rep.attribution(&logp, format!("thm2 {name}")));
        let s0 = &rep.supersteps[0];
        let row = vec![
            name.to_string(),
            format!("{}", rep.supersteps.len()),
            format!("{}", s0.h),
            format!("{}", s0.t_synch.get()),
            format!("{}", s0.t_rout.get()),
            format!("{}", rep.total.get()),
            format!("{}", rep.native_total.get()),
            f2(rep.slowdown()),
        ];
        (row, att)
    }

    /// Compute one `thm2` cell; same `captured` contract as
    /// [`thm1::run_cell_with`].
    pub fn run_cell_with(
        cell: &CellSpec,
        mut job: Job,
        captured: Option<&Registry>,
    ) -> (Vec<Vec<String>>, Option<CostReport>) {
        if cell.force {
            if let Some(reg) = captured {
                job.opts = job.opts.registry(reg);
            }
        }
        match cell.domain.as_str() {
            "thm2-cells" => {
                let (p, h) = cell_shapes()[cell.index];
                let params = LogpParams::new(p, 16, 1, 2).unwrap();
                (
                    vec![route_row(params, h, SortScheme::Network, 7, &mut job)],
                    None,
                )
            }
            "thm2-big" => {
                let h = BIG_HS[cell.index];
                let params = LogpParams::new(BIG_P, 16, 1, 2).unwrap();
                (route_big_rows(params, h, 9, &mut job), None)
            }
            "thm2-strategies" => {
                let logp = LogpParams::new(16, 16, 1, 2).unwrap();
                let (name, strategy) = strategies()[cell.index];
                let (row, att) = superstep_row(logp, name, strategy, &job.opts);
                (vec![row], att)
            }
            other => panic!("unknown thm2 domain '{other}'"),
        }
    }

    /// Machine size of the forced span-exporting cells (for sizing the
    /// export registries).
    pub const FLAGGED_P: usize = 16;
}

pub mod faults {
    //! E-FAULT grid (the differential conformance matrix).

    use super::*;
    use bvl_fault::conformance::{default_plans, run_case};
    use bvl_fault::{Case, Sim};

    /// The case matrix, in table order (plans × shapes × simulators).
    pub fn cases(smoke: bool) -> Vec<Case> {
        let shapes: &[(usize, usize)] = if smoke {
            &[(8, 4)]
        } else {
            &[(8, 4), (16, 6)]
        };
        let mut cases = Vec::new();
        for (i, plan) in default_plans().into_iter().enumerate() {
            for &(p, h) in shapes {
                for sim in Sim::ALL {
                    cases.push(Case {
                        sim,
                        p,
                        h,
                        seed: 100 + i as u64,
                        plan: plan.clone(),
                    });
                }
            }
        }
        cases
    }

    /// The conformance grid. The smoke and full matrices are distinct
    /// domains (their index→case mappings differ), each cell carrying its
    /// fault-plan line as part of the content address.
    pub fn grid(smoke: bool) -> GridSpec {
        let domain = if smoke { "faults-smoke" } else { "faults-full" };
        let mut g = GridSpec::new("faults", 100);
        for (i, case) in cases(smoke).into_iter().enumerate() {
            g = g.cell(
                CellSpec::new(
                    domain,
                    i,
                    format!("sim={} p={} h={} seed={}", case.sim, case.p, case.h, case.seed),
                )
                .plan(case.plan.to_string()),
            );
        }
        g
    }

    /// Compute one conformance cell. Row 0 is the table row; row 1 is the
    /// meta row `[checks, repro-line...]` so warm runs reproduce the
    /// SUMMARY counters, `fault-repros.txt` and the exit code without
    /// re-running the case.
    pub fn run_cell(cell: &CellSpec, _job: Job) -> Vec<Vec<String>> {
        let smoke = cell.domain == "faults-smoke";
        case_rows(&cases(smoke)[cell.index])
    }

    /// Run one differential case and shape its report into the two stored
    /// rows (see [`run_cell`]); failures print their repro lines to stderr.
    pub fn case_rows(case: &Case) -> Vec<Vec<String>> {
        let rep = run_case(case);
        let row = vec![
            case.sim.to_string(),
            format!("{}", case.p),
            format!("{}", case.h),
            case.plan.to_string(),
            format!("{}", rep.clean_time.get()),
            format!("{}", rep.faulted_time.get()),
            format!("{}", rep.attempts),
            if rep.ok() {
                "ok".into()
            } else {
                format!("{} FAILED", rep.failures.len())
            },
        ];
        let mut meta = vec![rep.checks.to_string()];
        for f in &rep.failures {
            eprintln!("FAIL {f}");
            if let Some(line) = f.lines().find_map(|l| l.trim().strip_prefix("repro: ")) {
                meta.push(line.to_string());
            }
        }
        vec![row, meta]
    }

    /// Split a conformance report back into `(table rows, repro lines,
    /// total checks)` — the shape `exp_faults` prints and gates on.
    pub fn fold(rep: GridReport) -> (Vec<Vec<String>>, Vec<String>, usize) {
        let mut table = Vec::new();
        let mut repros = Vec::new();
        let mut checks = 0usize;
        for mut cell in rep.rows {
            let meta = cell.pop().expect("meta row");
            table.push(cell.pop().expect("table row"));
            checks += meta[0].parse::<usize>().unwrap_or(0);
            repros.extend(meta.into_iter().skip(1));
        }
        (table, repros, checks)
    }
}

pub mod stack {
    //! E-STACK grid: the full tower per topology — measure `(γ̂, δ̂)`, run
    //! the ring guest abstractly, grounded on the network, and hosted on a
    //! BSP machine via Theorem 1 — one 14-column row per topology.

    use super::*;
    use crate::f3;
    use bvl_exec::RunStack;
    use bvl_logp::{DeliveryPolicy, LogpSpec, PolicyMedium};
    use bvl_net::{measure_parameters, NetMedium, RouterConfig, Topology};
    use bvl_scenario::Net;

    /// Ring workload rounds (the historical `exp_stack` constant).
    pub const ROUNDS: u64 = 8;
    /// Master seed, measurement seed and `RunOptions` seed.
    pub const SEED: u64 = 1996;
    /// Processor count of both shipped topologies (p = 32), for sizing the
    /// span-export registry.
    pub const FLAGGED_P: usize = 32;

    /// The guest workload: a `rounds`-round neighbour ring — each processor
    /// sends one word right and receives one word from the left per round.
    /// An exact 1-relation per round, stall-free for any capacity ≥ 1.
    fn ring(p: usize, rounds: u64) -> Vec<Script> {
        (0..p)
            .map(|i| {
                let mut ops = Vec::new();
                for r in 0..rounds {
                    ops.push(Op::Send {
                        dst: ProcId(((i + 1) % p) as u32),
                        payload: Payload::word(r as u32, i as i64),
                    });
                    ops.push(Op::Recv);
                }
                Script::new(ops)
            })
            .collect()
    }

    /// Two Table 1 rows with equal processor counts (p = 32): the
    /// multi-port hypercube (γ = Θ(1), δ = Θ(log p)) and the butterfly
    /// (γ = δ = Θ(log p)), with their cell-params strings.
    pub(crate) fn nets() -> Vec<(Net, &'static str)> {
        vec![
            (Net::Hypercube(5), "hypercube(5) rounds=8"),
            (Net::Butterfly(3), "butterfly(3) rounds=8"),
        ]
    }

    /// The stack grid. The hypercube cell caches; the butterfly cell is
    /// forced — it feeds the span export, like the historical binary where
    /// the second topology's `--trace-out` write won.
    pub fn grid() -> GridSpec {
        let mut g = GridSpec::new("stack", SEED);
        g.opts = RunOptions::new().seed(SEED);
        for (i, (_, params)) in nets().into_iter().enumerate() {
            let mut cell = CellSpec::new("stack", i, params);
            if i == 1 {
                cell = cell.forced();
            }
            g = g.cell(cell);
        }
        g
    }

    /// The `stack` grids; smoke keeps the (cacheable) hypercube cell.
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        let mut g = grid();
        if smoke {
            g.cells.retain(|c| c.index == 0);
        }
        vec![g]
    }

    fn tower<T: Topology + Clone + Send + 'static>(
        topo: T,
        rounds: u64,
        seed: u64,
        opts: &RunOptions,
        captured: Option<&Registry>,
    ) -> Vec<String> {
        // 1. Measure γ̂ (slope) and δ̂ (intercept) and round into valid LogP
        //    parameters: the paper's constraint max{2, o} ≤ G ≤ L.
        let measured = measure_parameters(&topo, &[1, 2, 4, 8], 3, seed, RouterConfig::default());
        let p = measured.p;
        let g_hat = (measured.gamma.round() as u64).max(2);
        let l_hat = (measured.delta.round() as u64).max(g_hat);
        let params = LogpParams::new(p, l_hat, 1, g_hat).expect("measured params valid");
        let opts = opts.clone().shards(bvl_obs::cli::shards());
        // The registry attaches to the grounded and hosted legs only, never
        // the abstract account — the stall-free guest contributes no spans.
        let observed = match captured {
            Some(reg) => opts.clone().registry(reg),
            None => opts.clone(),
        };

        // 2. The abstract LogP account of the workload.
        let abstract_run = LogpSpec::new(params, ring(p, rounds))
            .over(PolicyMedium::new(params, DeliveryPolicy::AtLatencyBound))
            .run_stack(&opts)
            .expect("abstract stack completes");
        let t_abstract = abstract_run.report.makespan;

        // 3. The same guest grounded on the network: per-link
        //    store-and-forward contention on the real topology.
        let grounded_run = LogpSpec::new(params, ring(p, rounds))
            .over(NetMedium::new(topo.clone(), params.capacity()))
            .run_stack(&observed)
            .expect("grounded stack completes");
        let t_grounded = grounded_run.report.makespan;
        assert_eq!(
            grounded_run.report.delivered, abstract_run.report.delivered,
            "both transports deliver the full workload"
        );

        // 4. Theorem 1: host the guest on BSP(g = Ĝ, ℓ = L̂) and compare the
        //    slowdown against 1 + g/G + ℓ/L at the measured values.
        let bsp = BspParams::new(p, g_hat, l_hat).expect("measured BSP params valid");
        let hosted = simulate_logp_on_bsp(
            params,
            bsp,
            ring(p, rounds),
            Theorem1Config::default(),
            &observed,
        )
        .expect("Theorem 1 simulation completes");
        let slowdown = hosted.bsp.cost.get() as f64 / t_abstract.get() as f64;
        let bound = 1.0 + bsp.g as f64 / params.g as f64 + bsp.l as f64 / params.l as f64;
        // Theorem 1's bound suppresses a small constant (the host superstep
        // is ⌈L/2⌉ guest cycles; acquisition serialization adds a factor
        // ≤ 2), so the binary gates on 2x; the row records the verdict.
        let within = slowdown <= 2.0 * bound;

        vec![
            measured.name.clone(),
            p.to_string(),
            f2(measured.gamma),
            f2(measured.delta),
            f3(measured.r2),
            g_hat.to_string(),
            l_hat.to_string(),
            t_abstract.get().to_string(),
            t_grounded.get().to_string(),
            f2(t_grounded.get() as f64 / t_abstract.get() as f64),
            hosted.bsp.cost.get().to_string(),
            f2(slowdown),
            f2(bound),
            within.to_string(),
        ]
    }

    /// One stack row, dispatching the generic tower over the topology tag
    /// (grounding needs a concrete `T: Topology + Clone`, not a trait
    /// object, so cells carry the tag and build on the worker thread).
    pub fn stack_row(
        net: Net,
        rounds: u64,
        seed: u64,
        opts: &RunOptions,
        captured: Option<&Registry>,
    ) -> Vec<String> {
        use bvl_net::{Array, Butterfly, Ccc, Hypercube, MeshOfTrees, ShuffleExchange};
        match net {
            Net::Array2d(s) => tower(Array::mesh2d(s), rounds, seed, opts, captured),
            Net::Array3d(s) => tower(Array::new(&[s, s, s]), rounds, seed, opts, captured),
            Net::Hypercube(k) => tower(Hypercube::new(k), rounds, seed, opts, captured),
            Net::Butterfly(k) => tower(Butterfly::new(k), rounds, seed, opts, captured),
            Net::Ccc(k) => tower(Ccc::new(k), rounds, seed, opts, captured),
            Net::ShuffleExchange(k) => {
                tower(ShuffleExchange::new(k), rounds, seed, opts, captured)
            }
            Net::MeshOfTrees(s) => tower(MeshOfTrees::new(s), rounds, seed, opts, captured),
        }
    }

    /// Compute one `stack` cell; same `captured` contract as
    /// [`thm1::run_cell_with`].
    pub fn run_cell_with(
        cell: &CellSpec,
        job: Job,
        captured: Option<&Registry>,
    ) -> Vec<Vec<String>> {
        let (net, _) = nets()[cell.index];
        let cap = if cell.force { captured } else { None };
        vec![stack_row(net, ROUNDS, SEED, &job.opts, cap)]
    }
}

pub mod sort {
    //! E-SORT grid: the BSP sample-sort study (`bvl_workloads::sort`) —
    //! one row per cell with the measured `w + g·h + ℓ` decomposition, the
    //! 1-optimality ratio against the bucket-balanced ideal, and the
    //! Theorem 2 cross-simulation leg with its envelope verdict.

    use super::*;
    use bvl_workloads::{run_sort, SortConfig};

    /// Key-generation master seed of the shipped grid.
    pub const SEED: u64 = 1996;

    /// The shipped study cells: block sizes growing toward the 1-optimal
    /// regime on two machine sizes, plus `(g, ℓ)` variations at fixed
    /// shape. All `p` are powers of two (the Theorem 2 leg routes through
    /// the power-of-two sorting network).
    pub fn configs() -> Vec<SortConfig> {
        let base = |p, n| SortConfig {
            p,
            n,
            g: 2,
            l: 16,
            seed: SEED,
        };
        vec![
            base(4, 256),
            base(8, 512),
            base(8, 4096),
            base(16, 2048),
            SortConfig { g: 4, l: 32, ..base(8, 512) },
            SortConfig { l: 64, ..base(8, 512) },
        ]
    }

    /// The cell-params string of one config (shared with the scenario doc).
    pub fn params_of(cfg: &SortConfig) -> String {
        format!("p={} n={} g={} l={} seed={}", cfg.p, cfg.n, cfg.g, cfg.l, cfg.seed)
    }

    /// The sort grid; no cell is forced — rows are pure measurements.
    pub fn grid() -> GridSpec {
        let mut g = GridSpec::new("sort", SEED);
        for (i, cfg) in configs().iter().enumerate() {
            g = g.cell(CellSpec::new("sort", i, params_of(cfg)));
        }
        g
    }

    /// The `sort` grids; smoke keeps the two small-block cells.
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        let mut g = grid();
        if smoke {
            g.cells.retain(|c| c.index <= 1);
        }
        vec![g]
    }

    /// One study row. Column order is load-bearing: the scenario auditor
    /// (`bvl_scenario::bounds`) reads cost(2), ratio(4), xsim(8), native(9)
    /// by index.
    pub fn sort_row(cfg: &SortConfig, opts: &RunOptions) -> Vec<String> {
        let study = run_sort(cfg, opts).expect("shipped sort config runs");
        vec![
            cfg.p.to_string(),
            cfg.n.to_string(),
            study.bsp.cost.to_string(),
            study.bsp.ideal.to_string(),
            f2(study.bsp.ratio),
            study.bsp.work.to_string(),
            study.bsp.comm.to_string(),
            study.bsp.sync.to_string(),
            study.xsim.total.to_string(),
            study.xsim.native.to_string(),
            f2(study.xsim.slowdown),
            f2(study.xsim.envelope),
            if study.sorted_ok { "yes" } else { "no" }.to_string(),
        ]
    }

    /// Compute one `sort` cell (registry contract as in the other kinds:
    /// nothing to attach, rows are registry-independent).
    pub fn run_cell_with(cell: &CellSpec, job: Job) -> Vec<Vec<String>> {
        vec![sort_row(&configs()[cell.index], &job.opts)]
    }
}

pub mod stream {
    //! E-STREAM grid: the pseudo-streaming study
    //! (`bvl_workloads::stream`) — the sample-sort workload run classically
    //! and through a bounded window, one row per window.

    use super::*;
    use bvl_workloads::{run_stream, SortConfig, StreamConfig};

    /// Key-generation master seed (shared with the sort grid's base cell).
    pub const SEED: u64 = 1996;

    /// The shipped cells: one base workload, windows narrowing from
    /// wider-than-any-relation (classical behaviour must reproduce) down
    /// to a few messages per round.
    pub fn configs() -> Vec<StreamConfig> {
        [10_000u64, 64, 16, 4]
            .into_iter()
            .map(|window| StreamConfig {
                sort: SortConfig {
                    p: 8,
                    n: 512,
                    g: 2,
                    l: 16,
                    seed: SEED,
                },
                window,
            })
            .collect()
    }

    /// The cell-params string of one config (shared with the scenario doc).
    pub fn params_of(cfg: &StreamConfig) -> String {
        format!(
            "p={} n={} window={} g={} l={} seed={}",
            cfg.sort.p, cfg.sort.n, cfg.window, cfg.sort.g, cfg.sort.l, cfg.sort.seed
        )
    }

    /// The stream grid; no forced cells.
    pub fn grid() -> GridSpec {
        let mut g = GridSpec::new("stream", SEED);
        for (i, cfg) in configs().iter().enumerate() {
            g = g.cell(CellSpec::new("stream", i, params_of(cfg)));
        }
        g
    }

    /// The `stream` grids; smoke keeps the widest and narrowest windows.
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        let mut g = grid();
        if smoke {
            g.cells.retain(|c| c.index == 0 || c.index == 3);
        }
        vec![g]
    }

    /// One study row. The auditor reads native(3), streamed(4), rounds(5),
    /// supersteps(6) by index.
    pub fn stream_row(cfg: &StreamConfig, opts: &RunOptions) -> Vec<String> {
        let study = run_stream(cfg, opts).expect("shipped stream config runs");
        vec![
            cfg.sort.p.to_string(),
            cfg.sort.n.to_string(),
            cfg.window.to_string(),
            study.native.to_string(),
            study.streamed.to_string(),
            study.rounds.to_string(),
            study.supersteps.to_string(),
            f2(study.overhead),
            if study.sorted_ok { "yes" } else { "no" }.to_string(),
        ]
    }

    /// Compute one `stream` cell.
    pub fn run_cell_with(cell: &CellSpec, job: Job) -> Vec<Vec<String>> {
        vec![stream_row(&configs()[cell.index], &job.opts)]
    }
}

pub mod bsf {
    //! E-BSF grid: the Bulk Synchronous Farm study
    //! (`bvl_workloads::bsf`) — one row per worker count, sweeping across
    //! the scalability boundary `p* = √(units·t_w / (2·t_t))`.

    use super::*;
    use bvl_workloads::{run_bsf, BsfParams};

    /// The shipped farm shape: `units·t_w/(2·t_t) = 256·4/4 = 256`, so the
    /// predicted curve bottoms out at `p* = 16` — the sweep brackets it
    /// from both sides.
    pub fn base() -> BsfParams {
        BsfParams::new(16, 256, 2, 4, 5, 3).expect("shipped BSF shape valid")
    }

    /// The shipped cells: the worker-count sweep across `p*`.
    pub fn configs() -> Vec<BsfParams> {
        [2usize, 4, 8, 16, 32, 64]
            .into_iter()
            .map(|w| base().with_workers(w))
            .collect()
    }

    /// The cell-params string of one config (shared with the scenario doc).
    pub fn params_of(p: &BsfParams) -> String {
        format!(
            "workers={} units={} tt={} tw={} ts={} iters={}",
            p.workers, p.units, p.tt, p.tw, p.ts, p.iters
        )
    }

    /// The bsf grid; no forced cells (the machine is RNG-free).
    pub fn grid() -> GridSpec {
        let mut g = GridSpec::new("bsf", 1996);
        for (i, cfg) in configs().iter().enumerate() {
            g = g.cell(CellSpec::new("bsf", i, params_of(cfg)));
        }
        g
    }

    /// The `bsf` grids; smoke keeps the two cells bracketing `p*` tightest.
    pub fn grids(smoke: bool) -> Vec<GridSpec> {
        let mut g = grid();
        if smoke {
            g.cells.retain(|c| c.index == 2 || c.index == 3);
        }
        vec![g]
    }

    /// One study row. The auditor reads simulated(2), predicted(3),
    /// speedup(5) by index.
    pub fn bsf_row(params: &BsfParams) -> Vec<String> {
        let study = run_bsf(params).expect("shipped BSF config runs");
        vec![
            params.workers.to_string(),
            params.units.to_string(),
            study.simulated.to_string(),
            study.predicted.to_string(),
            f2(study.ratio),
            f2(study.speedup),
            f2(study.optimal_workers),
        ]
    }

    /// Compute one `bsf` cell.
    pub fn run_cell_with(cell: &CellSpec, _job: Job) -> Vec<Vec<String>> {
        vec![bsf_row(&configs()[cell.index])]
    }
}

/// Every experiment the `lab` CLI and HTTP service can run. Since the
/// scenario plane landed these are compiled from the checked-in
/// `scenarios/*.scn` documents; `lab validate` and the equivalence tests
/// prove the compiled grids match the code-defined builders above bit for
/// bit, so cache keys are shared with the `exp_*` binaries either way.
pub fn experiments() -> Vec<Box<dyn Experiment>> {
    crate::scn::experiments()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_cover_the_binaries_cell_counts() {
        let count = |gs: &[GridSpec]| gs.iter().map(|g| g.cells.len()).sum::<usize>();
        assert_eq!(count(&table1::grids(false)), 8 + 6 + 3 + 1);
        assert_eq!(count(&thm1::grids(false)), 7 + 5);
        assert_eq!(count(&thm2::grids(false)), 12 + 3 + 3);
        assert_eq!(count(&[faults::grid(true)]), 21);
        assert_eq!(count(&[faults::grid(false)]), 42);
        assert_eq!(count(&stack::grids(false)), 2);
        assert_eq!(count(&stack::grids(true)), 1);
        assert_eq!(count(&sort::grids(false)), 6);
        assert_eq!(count(&sort::grids(true)), 2);
        assert_eq!(count(&stream::grids(false)), 4);
        assert_eq!(count(&stream::grids(true)), 2);
        assert_eq!(count(&bsf::grids(false)), 6);
        assert_eq!(count(&bsf::grids(true)), 2);
    }

    #[test]
    fn smoke_grids_carry_no_forced_cells() {
        for exp in experiments() {
            for grid in exp.grids(true) {
                assert!(
                    grid.cells.iter().all(|c| !c.force),
                    "{}: smoke grid has a forced cell",
                    exp.name()
                );
                assert_eq!(grid.exp, exp.name());
            }
        }
    }

    #[test]
    fn forced_cells_sit_where_the_binaries_flag_them() {
        let forced = |g: &GridSpec| -> Vec<usize> {
            g.cells.iter().filter(|c| c.force).map(|c| c.index).collect()
        };
        assert_eq!(forced(&thm1::scalings_grid()), vec![0]);
        assert_eq!(forced(&thm2::cells_grid()), vec![3]);
        assert_eq!(forced(&thm2::strategies_grid()), vec![2]);
        assert_eq!(forced(&stack::grid()), vec![1], "butterfly feeds the span export");
        assert!(forced(&table1::k6_grid()).is_empty(), "k6 payload caches");
    }

    #[test]
    fn fault_cells_carry_their_plan_lines() {
        let g = faults::grid(true);
        assert!(g.cells.iter().all(|c| c.plan.is_some()));
        // Distinct plans produce distinct content addresses even at equal
        // (domain, index, params) — guaranteed by cell_key, spot-checked
        // here end to end.
        let code = CodeFingerprint::from_parts("x", "0");
        let mut keys: Vec<String> = g.cells.iter().map(|c| g.key_of(&code, c)).collect();
        keys.sort();
        keys.dedup();
        assert_eq!(keys.len(), g.cells.len());
    }

    #[test]
    fn unopenable_store_degrades_to_uncached() {
        // A file where the store directory should be: open fails, and the
        // lab must warn and run uncached instead of aborting the process.
        let dir = std::env::temp_dir().join(format!("bvl-lab-blocked-{}", std::process::id()));
        std::fs::write(&dir, b"not a directory").unwrap();
        let lab = Lab::from_dir(Some(dir.to_str().unwrap()));
        std::fs::remove_file(&dir).unwrap();
        assert!(lab.store.is_none(), "bad store dir degrades to uncached");
        assert!(!lab.registry.is_enabled());
        assert!(Lab::from_dir(None::<&str>).store.is_none());
    }

    #[test]
    fn k6_registry_rebuilds_spans_from_payload() {
        let rows = vec![
            vec!["hypercube_k6".into(), "64".into(), "1.00".into(), "2.00".into(), "0.99".into()],
            vec!["1".into(), "12.5".into()],
            vec!["2".into(), "20.0".into()],
        ];
        let reg = table1::k6_registry(&rows);
        let spans = reg.spans();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].end.get(), 13); // 12.5 rounds to 13
        assert_eq!(spans[1].end.get(), 33);
    }
}

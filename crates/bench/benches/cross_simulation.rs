//! End-to-end cross-simulation throughput (the paper's core pipelines).

use bvl_bsp::BspParams;
use bvl_core::{
    route_deterministic, route_offline, route_randomized, simulate_logp_on_bsp, SortScheme,
    Theorem1Config,
};
use bvl_exec::RunOptions;
use bvl_logp::{LogpParams, Op, Script};
use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, Payload, ProcId};
use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;

fn bench_cross(c: &mut Criterion) {
    let mut group = c.benchmark_group("cross_simulation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_secs(1));

    let params = LogpParams::new(16, 16, 1, 2).unwrap();
    let mut rng = SeedStream::new(3).derive("rel", 0);
    let rel = HRelation::random_exact(&mut rng, 16, 8);

    group.bench_function("route_deterministic/p16_h8", |b| {
        let opts = RunOptions::new().seed(1);
        b.iter(|| route_deterministic(params, &rel, SortScheme::Network, &opts).unwrap().total);
    });
    group.bench_function("route_randomized/p16_h8", |b| {
        let roomy = LogpParams::new(16, 64, 1, 2).unwrap();
        let opts = RunOptions::new().seed(1);
        b.iter(|| route_randomized(roomy, &rel, 2.0, &opts).unwrap().time);
    });
    group.bench_function("route_offline/p16_h8", |b| {
        b.iter(|| route_offline(params, &rel, &RunOptions::new().seed(1)).unwrap().0);
    });

    group.bench_function("logp_on_bsp/ring16x8", |b| {
        let logp = LogpParams::new(16, 16, 1, 4).unwrap();
        let bsp = BspParams::new(16, 4, 16).unwrap();
        let build = || -> Vec<Script> {
            (0..16)
                .map(|i| {
                    let mut ops = Vec::new();
                    for r in 0..8 {
                        ops.push(Op::Send {
                            dst: ProcId(((i + 1) % 16) as u32),
                            payload: Payload::word(r as u32, i as i64),
                        });
                        ops.push(Op::Recv);
                    }
                    Script::new(ops)
                })
                .collect()
        };
        b.iter(|| {
            simulate_logp_on_bsp(logp, bsp, build(), Theorem1Config::default(), &RunOptions::new())
                .unwrap()
                .bsp
                .cost
        });
    });
    group.finish();
}

criterion_group!(benches, bench_cross);
criterion_main!(benches);

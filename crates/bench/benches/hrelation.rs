//! h-relation generation and degree computation.

use bvl_model::rngutil::SeedStream;
use bvl_model::{HRelation, ProcId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_hrel(c: &mut Criterion) {
    let mut group = c.benchmark_group("hrelation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    for (p, h) in [(256usize, 16usize), (1024, 8)] {
        group.bench_with_input(
            BenchmarkId::new("random_exact", format!("p{p}_h{h}")),
            &(p, h),
            |b, &(p, h)| {
                let seeds = SeedStream::new(9);
                b.iter(|| {
                    let mut rng = seeds.derive("r", 0);
                    HRelation::random_exact(&mut rng, p, h).len()
                });
            },
        );
    }

    let mut rng = SeedStream::new(10).derive("r", 0);
    let rel = HRelation::random_exact(&mut rng, 1024, 8);
    group.bench_function("degree/p1024_h8", |b| {
        b.iter(|| rel.degree());
    });
    group.bench_function("hot_spot_gen/p1024", |b| {
        b.iter(|| HRelation::hot_spot(1024, ProcId(0), 1023, 2).len());
    });
    group.finish();
}

criterion_group!(benches, bench_hrel);
criterion_main!(benches);

//! Micro-benchmarks for the two engine hot paths this repo optimizes:
//! the event timeline (bucket/calendar queue vs binary heap) and message
//! payloads (inline word store vs heap spill).
//!
//! The `timeline` group drives `bvl_logp::Timeline` directly with a
//! synthetic near-horizon event stream (the pattern the LogP engine
//! produces: deliveries within `L`, submissions within `max(o, G)`), plus a
//! whole-machine run under each `TimelineKind`. The `payload` group measures
//! construct+clone+read round-trips below and above `INLINE_WORDS`.

use bvl_exec::Phase;
use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script, Timeline, TimelineKind};
use bvl_model::{Payload, ProcId, Steps, INLINE_WORDS};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

/// Push/pop churn mimicking the engine: each popped event schedules a
/// successor a bounded distance ahead (span 16, like `max(L, G, o)`), with
/// an occasional far-future event exercising the overflow path.
fn churn(kind: TimelineKind, events: u64) -> u64 {
    let mut tl: Timeline<u64> = Timeline::new(kind, 16);
    for i in 0..32u64 {
        tl.push(Steps(i % 16), Phase::from_u8((i % 3) as u8), i);
    }
    let mut acc = 0u64;
    let mut processed = 0u64;
    while let Some((at, phase, v)) = tl.pop() {
        acc = acc.wrapping_add(v).wrapping_add(at.0);
        processed += 1;
        if processed >= events {
            continue; // drain without refilling
        }
        let ahead = 1 + (v % 16);
        tl.push(Steps(at.0 + ahead), phase, v.wrapping_mul(31).wrapping_add(7));
        if v % 257 == 0 {
            tl.push(Steps(at.0 + 10_000), Phase::Ready, v); // beyond any horizon
        }
    }
    acc
}

fn hot_spot_scripts(p: usize, k: usize) -> Vec<Script> {
    let mut v = vec![Script::new(vec![Op::Recv; (p - 1) * k])];
    v.extend((1..p).map(|i| {
        Script::new((0..k).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    v
}

fn bench_timeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for (name, kind) in [
        ("churn_bucket", TimelineKind::Bucket),
        ("churn_heap", TimelineKind::BinaryHeap),
    ] {
        group.bench_function(BenchmarkId::new(name, 100_000u64), |b| {
            b.iter(|| churn(kind, 100_000));
        });
    }

    for (name, kind) in [
        ("machine_hot_spot_bucket", TimelineKind::Bucket),
        ("machine_hot_spot_heap", TimelineKind::BinaryHeap),
    ] {
        group.bench_function(BenchmarkId::new(name, 64usize), |b| {
            let params = LogpParams::new(64, 8, 1, 2).unwrap();
            let config = LogpConfig {
                timeline: kind,
                ..LogpConfig::default()
            };
            b.iter(|| {
                let mut m =
                    LogpMachine::with_config(params, config, hot_spot_scripts(64, 4));
                m.run().unwrap().total_stall
            });
        });
    }
    group.finish();
}

fn bench_payload(c: &mut Criterion) {
    let mut group = c.benchmark_group("payload");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(600));

    let inline = vec![7i64; INLINE_WORDS]; // widest inline payload
    let spill = vec![7i64; INLINE_WORDS * 2]; // forced heap spill
    for (name, words) in [("inline", &inline), ("spill", &spill)] {
        group.bench_function(BenchmarkId::new(name, words.len()), |b| {
            b.iter(|| {
                let p = Payload::words(3, black_box(words));
                let q = p.clone();
                q.data().iter().sum::<i64>()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_timeline, bench_payload);
criterion_main!(benches);

//! Store-and-forward router throughput across topologies.

use bvl_model::rngutil::SeedStream;
use bvl_model::HRelation;
use bvl_net::{route_relation, Array, Hypercube, MeshOfTrees, PortMode, RouterConfig, Topology};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_routing");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    let seeds = SeedStream::new(5);
    let cases: Vec<(&str, Box<dyn Topology>)> = vec![
        ("hypercube_256", Box::new(Hypercube::new(8))),
        ("mesh2d_256", Box::new(Array::mesh2d(16))),
        ("mesh_of_trees_256", Box::new(MeshOfTrees::new(16))),
    ];
    for (name, topo) in &cases {
        let mut rng = seeds.derive("rel", 0);
        let rel = HRelation::random_exact(&mut rng, topo.num_processors(), 8);
        group.bench_with_input(BenchmarkId::new("h8_multi", name), &rel, |b, rel| {
            b.iter(|| {
                route_relation(topo.as_ref(), rel, RouterConfig::default())
                    .unwrap()
                    .time
            });
        });
    }

    let hc = Hypercube::new(8);
    let mut rng = seeds.derive("rel", 1);
    let rel = HRelation::random_exact(&mut rng, 256, 8);
    group.bench_function("hypercube_256/h8_single_port", |b| {
        let cfg = RouterConfig {
            mode: PortMode::Single,
            ..RouterConfig::default()
        };
        b.iter(|| route_relation(&hc, &rel, cfg).unwrap().time);
    });
    group.finish();
}

criterion_group!(benches, bench_routing);
criterion_main!(benches);

//! Throughput of the BSP superstep engine, sequential vs multithreaded.

use bvl_bsp::{BspMachine, BspParams, FnProcess, Status};
use bvl_model::{Payload, ProcId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn ring(p: usize, rounds: u64, work: u64) -> Vec<FnProcess<i64>> {
    (0..p)
        .map(|_| {
            FnProcess::new(0i64, move |acc, ctx| {
                let p = ctx.p();
                if ctx.superstep_index() > 0 {
                    *acc += ctx.recv().map(|m| m.payload.expect_word()).unwrap_or(0);
                }
                if ctx.superstep_index() < rounds {
                    // Real spinning so the multithreaded driver has
                    // something to parallelize.
                    let mut x = *acc;
                    for i in 0..work {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(i as i64);
                    }
                    *acc = x & 0xff;
                    ctx.charge(work);
                    let right = ProcId(((ctx.me().0 as usize + 1) % p) as u32);
                    ctx.send(right, Payload::word(0, *acc));
                    Status::Continue
                } else {
                    Status::Halt
                }
            })
        })
        .collect()
}

fn bench_bsp(c: &mut Criterion) {
    let mut group = c.benchmark_group("bsp_engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for p in [64usize, 256] {
        group.bench_with_input(BenchmarkId::new("ring_seq", p), &p, |b, &p| {
            let params = BspParams::new(p, 2, 16).unwrap();
            b.iter(|| {
                let mut m = BspMachine::new(params, ring(p, 8, 2000));
                m.run(16).unwrap().cost
            });
        });
        group.bench_with_input(BenchmarkId::new("ring_4threads", p), &p, |b, &p| {
            let params = BspParams::new(p, 2, 16).unwrap();
            b.iter(|| {
                let mut m = BspMachine::new(params, ring(p, 8, 2000));
                m.set_threads(4);
                m.run(16).unwrap().cost
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_bsp);
criterion_main!(benches);

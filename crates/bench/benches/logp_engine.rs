//! Throughput of the event-driven LogP engine.

use bvl_logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bvl_model::{Payload, ProcId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;

fn ring_scripts(p: usize, rounds: usize) -> Vec<Script> {
    (0..p)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..rounds {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % p) as u32),
                    payload: Payload::word(r as u32, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn hot_spot_scripts(p: usize, k: usize) -> Vec<Script> {
    let mut v = vec![Script::new(vec![Op::Recv; (p - 1) * k])];
    v.extend((1..p).map(|i| {
        Script::new((0..k).map(move |q| Op::Send {
            dst: ProcId(0),
            payload: Payload::word(q as u32, i as i64),
        }))
    }));
    v
}

fn bench_logp(c: &mut Criterion) {
    let mut group = c.benchmark_group("logp_engine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for p in [16usize, 64, 256] {
        group.bench_with_input(BenchmarkId::new("ring_x8", p), &p, |b, &p| {
            let params = LogpParams::new(p, 16, 1, 4).unwrap();
            b.iter(|| {
                let mut m = LogpMachine::new(params, ring_scripts(p, 8));
                m.run().unwrap().makespan
            });
        });
    }

    for p in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("hot_spot_stalling", p), &p, |b, &p| {
            let params = LogpParams::new(p, 8, 1, 2).unwrap();
            b.iter(|| {
                let mut m = LogpMachine::with_config(
                    params,
                    LogpConfig::default(),
                    hot_spot_scripts(p, 4),
                );
                m.run().unwrap().total_stall
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_logp);
criterion_main!(benches);

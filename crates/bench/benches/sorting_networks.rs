//! Sorting-network construction/evaluation and h-relation decomposition.

use bvl_core::bsp_on_logp::sortnet::{apply_network, bitonic_stages};
use bvl_model::decompose::{euler_split, koenig_color};
use bvl_model::rngutil::SeedStream;
use bvl_model::HRelation;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::Rng;
use std::time::Duration;

fn bench_sorting(c: &mut Criterion) {
    let mut group = c.benchmark_group("sorting_networks");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));

    for k in [8usize, 10] {
        let p = 1usize << k;
        group.bench_with_input(BenchmarkId::new("bitonic_build", p), &p, |b, &p| {
            b.iter(|| bitonic_stages(p).len());
        });
        let rounds = bitonic_stages(p);
        let mut rng = SeedStream::new(1).derive("v", k as u64);
        let input: Vec<i64> = (0..p).map(|_| rng.gen_range(-1000..1000)).collect();
        group.bench_with_input(BenchmarkId::new("bitonic_apply", p), &p, |b, _| {
            b.iter(|| {
                let mut v = input.clone();
                apply_network(&rounds, &mut v);
                v[0]
            });
        });
    }

    let mut rng = SeedStream::new(2).derive("rel", 0);
    let rel = HRelation::random_exact(&mut rng, 64, 16);
    group.bench_function("euler_split/64x16", |b| {
        b.iter(|| euler_split(&rel).num_rounds());
    });
    group.bench_function("koenig_color/64x16", |b| {
        b.iter(|| koenig_color(&rel).num_rounds());
    });
    group.finish();
}

criterion_group!(benches, bench_sorting);
criterion_main!(benches);

//! End-to-end cache acceptance for the retrofitted experiment binaries:
//! run a binary twice against one `BVL_LAB_DIR` store and require (a)
//! bit-identical stdout and (b) a warm hit rate ≥ 90%.
//!
//! The smoke-matrix test runs in the normal suite; the full `exp_table1`
//! timing test (the ISSUE's ≥10× warm speedup floor) is `#[ignore]`d here
//! and exercised by the `lab-warm-cache` CI job under `--release`
//! (debug-build timings are noise).

use std::path::PathBuf;
use std::process::{Command, Output};
use std::time::{Duration, Instant};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-lab-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn run(bin: &str, args: &[&str], store: &PathBuf, workdir: &PathBuf) -> (Output, Duration) {
    std::fs::create_dir_all(workdir).expect("workdir");
    let t0 = Instant::now();
    let out = Command::new(bin)
        .args(args)
        .env("BVL_LAB_DIR", store)
        .current_dir(workdir)
        .output()
        .expect("binary runs");
    (out, t0.elapsed())
}

fn hit_stats(stderr: &[u8]) -> (usize, usize) {
    // Sum the per-grid `[sweep] name: H hits / M misses ...` lines.
    let text = String::from_utf8_lossy(stderr);
    let mut hits = 0;
    let mut misses = 0;
    for line in text.lines().filter(|l| l.starts_with("[sweep]")) {
        let words: Vec<&str> = line.split_whitespace().collect();
        let grab = |marker: &str| -> usize {
            words
                .iter()
                .position(|w| *w == marker)
                .and_then(|i| words[i - 1].parse().ok())
                .unwrap_or(0)
        };
        hits += grab("hits");
        misses += grab("misses");
    }
    (hits, misses)
}

#[test]
fn warm_faults_smoke_hits_over_90_percent_with_identical_stdout() {
    let store = tmpdir("faults-store");
    let work = tmpdir("faults-work");
    let bin = env!("CARGO_BIN_EXE_exp_faults");

    let (cold, _) = run(bin, &["--smoke"], &store, &work);
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    let (warm, _) = run(bin, &["--smoke"], &store, &work);
    assert!(warm.status.success(), "warm run failed: {warm:?}");

    assert_eq!(
        cold.stdout, warm.stdout,
        "stdout must be bit-identical cold vs warm"
    );
    let (hits, misses) = hit_stats(&warm.stderr);
    assert_eq!(hits + misses, 21, "smoke matrix is 21 cells");
    let rate = hits as f64 / (hits + misses) as f64;
    assert!(rate >= 0.9, "warm hit rate {rate:.2} below 0.9");

    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&work);
}

#[test]
fn uncached_and_cached_smoke_stdout_agree() {
    // The determinism contract across the cache boundary: running with no
    // store at all must print the same bytes as a cold cached run.
    let work_a = tmpdir("nostore-work");
    let work_b = tmpdir("store-work");
    let store = tmpdir("store-dir");
    let bin = env!("CARGO_BIN_EXE_exp_faults");

    std::fs::create_dir_all(&work_a).expect("workdir");
    let plain = Command::new(bin)
        .arg("--smoke")
        .env_remove("BVL_LAB_DIR")
        .current_dir(&work_a)
        .output()
        .expect("binary runs");
    let (cached, _) = run(bin, &["--smoke"], &store, &work_b);
    assert!(plain.status.success() && cached.status.success());
    assert_eq!(plain.stdout, cached.stdout);

    for d in [&work_a, &work_b, &store] {
        let _ = std::fs::remove_dir_all(d);
    }
}

/// The ISSUE acceptance floor: a warm full `exp_table1` regeneration is
/// ≥ 10× faster than cold with bit-identical rows. Timing-sensitive, so
/// ignored in the debug suite; the `lab-warm-cache` CI job runs it with
/// `--release -- --ignored`.
#[test]
#[ignore = "timing assertion; run under --release (CI lab-warm-cache job)"]
fn warm_table1_is_ten_times_faster_and_identical() {
    let store = tmpdir("table1-store");
    let work = tmpdir("table1-work");
    let bin = env!("CARGO_BIN_EXE_exp_table1");

    let (cold, cold_elapsed) = run(bin, &[], &store, &work);
    assert!(cold.status.success(), "cold run failed: {cold:?}");
    let (warm, warm_elapsed) = run(bin, &[], &store, &work);
    assert!(warm.status.success(), "warm run failed: {warm:?}");

    assert_eq!(cold.stdout, warm.stdout, "stdout must be bit-identical");
    let (hits, misses) = hit_stats(&warm.stderr);
    assert_eq!((hits, misses), (18, 0), "warm table1 serves entirely from cache");

    let speedup = cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9);
    assert!(
        speedup >= 10.0,
        "warm speedup {speedup:.1}x below 10x (cold {cold_elapsed:?}, warm {warm_elapsed:?})"
    );

    let _ = std::fs::remove_dir_all(&store);
    let _ = std::fs::remove_dir_all(&work);
}

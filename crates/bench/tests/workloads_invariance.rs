//! Shard/thread invariance of the workload-study rows.
//!
//! The determinism contract extends to the new real-algorithm plane: an
//! `exp_sort` or `exp_bsf` row is a function of its cell's parameters
//! alone, bit-identical whatever `--shards` the engines run on and
//! whatever `RAYON_NUM_THREADS` the grid fans out over. (The sample-sort
//! output correctness proptest lives with the workload itself, in
//! `bvl_workloads::sort`.)
//!
//! Kept as a single `#[test]` on purpose: the vendored rayon shim reads
//! `RAYON_NUM_THREADS` on every pool query, so the test mutates the
//! process environment — concurrent tests in this binary would race on it.

use bvl_bench::labexp::{bsf, sort, stream};
use bvl_bench::scn;
use bvl_exec::RunOptions;
use bvl_lab::Job;
use bvl_model::rngutil::SeedStream;

/// Every row of the three workload grids, computed through the same
/// compiled-scenario dispatch the binaries and the lab service use.
fn all_rows(shards: usize) -> Vec<Vec<String>> {
    let mut rows = Vec::new();
    for name in ["sort", "stream", "bsf"] {
        let scenario = scn::compiled(name, false);
        for grid in &scenario.grids {
            let seeds = SeedStream::new(grid.spec.master);
            for (cell, work) in grid.spec.cells.iter().zip(&grid.work) {
                let job = Job {
                    index: cell.index,
                    rng: seeds.derive(&cell.domain, cell.index as u64),
                    opts: grid.spec.opts.clone().shards(shards),
                };
                let (cell_rows, _) = scn::run_work(work, cell, job, None);
                rows.extend(cell_rows);
            }
        }
    }
    rows
}

#[test]
fn workload_rows_are_shard_and_thread_invariant() {
    let baseline = all_rows(1);
    assert_eq!(
        baseline.len(),
        sort::configs().len() + stream::configs().len() + bsf::configs().len()
    );

    for shards in [2usize, 4] {
        assert_eq!(
            baseline,
            all_rows(shards),
            "rows diverged at --shards {shards}"
        );
    }

    for threads in ["1", "2", "4"] {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        assert_eq!(
            baseline,
            all_rows(1),
            "rows diverged at RAYON_NUM_THREADS={threads}"
        );
        // And the row builders agree with the scenario dispatch at any
        // thread count — the two entry points share one implementation.
        let direct: Vec<Vec<String>> = sort::configs()
            .iter()
            .map(|c| sort::sort_row(c, &RunOptions::new()))
            .chain(
                stream::configs()
                    .iter()
                    .map(|c| stream::stream_row(c, &RunOptions::new())),
            )
            .chain(bsf::configs().iter().map(bsf::bsf_row))
            .collect();
        assert_eq!(baseline, direct, "direct rows diverged at {threads} thread(s)");
    }
    std::env::remove_var("RAYON_NUM_THREADS");
}

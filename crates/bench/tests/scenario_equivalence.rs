//! The scenario plane's central promise: a checked-in `.scn` document
//! lowers to *exactly* the experiment the legacy code-defined builders
//! produce. `lab validate` and the `scn` unit tests prove the static half
//! (same documents, same grid digests, same store keys); this suite runs
//! the smoke grids both ways and requires bit-identical rows — the
//! dynamic half — plus shard-count invariance of the scenario path.

use bvl_bench::{labexp, scn};
use bvl_lab::{run_grid, CellSpec, GridReport, GridSpec, Job};
use bvl_obs::Registry;
use bvl_scenario::CompiledGrid;

fn legacy_rows(name: &str, spec: &GridSpec) -> Vec<Vec<Vec<String>>> {
    let registry = Registry::disabled();
    let dispatch = |cell: &CellSpec, job: Job| match name {
        "table1" | "scaling" => labexp::table1::run_cell(cell, job),
        "thm1" => labexp::thm1::run_cell_with(cell, job, None).0,
        "thm2" => labexp::thm2::run_cell_with(cell, job, None).0,
        "faults" => labexp::faults::run_cell(cell, job),
        "stack" => labexp::stack::run_cell_with(cell, job, None),
        other => panic!("unknown scenario '{other}'"),
    };
    run_grid(spec, None, &registry, dispatch)
        .expect("legacy grid runs")
        .rows
}

fn scenario_report(grid: &CompiledGrid) -> GridReport {
    let registry = Registry::disabled();
    run_grid(&grid.spec, None, &registry, |cell, job| {
        scn::run_work(scn::work_for(grid, cell), cell, job, None).0
    })
    .expect("scenario grid runs")
}

#[test]
fn scenario_smoke_rows_are_bit_identical_to_the_legacy_grids() {
    for name in ["table1", "thm1", "thm2", "faults", "stack", "scaling"] {
        let compiled = scn::compiled(name, true);
        let legacy = scn::legacy_grids(name, true).expect("shipped name");
        assert_eq!(compiled.grids.len(), legacy.len(), "{name}: grid count");
        for (cg, lg) in compiled.grids.iter().zip(&legacy) {
            let scenario = scenario_report(cg);
            // The rows the scenario produced pass the lower-bound audit...
            let violations = scn::audit(cg, &scenario.rows);
            assert!(violations.is_empty(), "{name}: audit fired: {violations:?}");
            // ...and match the legacy computation cell for cell.
            assert_eq!(
                scenario.rows,
                legacy_rows(name, lg),
                "{name}: rows diverged on grid '{}'",
                lg.exp
            );
        }
    }
}

#[test]
fn scenario_rows_are_invariant_under_shard_count() {
    let compiled = scn::compiled("thm1", true);
    for grid in &compiled.grids {
        let base = scenario_report(grid);
        let registry = Registry::disabled();
        let mut sharded = grid.spec.clone();
        sharded.opts = sharded.opts.clone().shards(4);
        let rep = run_grid(&sharded, None, &registry, |cell, job| {
            scn::run_work(scn::work_for(grid, cell), cell, job, None).0
        })
        .expect("sharded grid runs");
        assert_eq!(base.rows, rep.rows, "shards=4 moved grid '{}'", grid.spec.exp);
    }
}

//! Shard-count equivalence over the real experiment grids (ISSUE 9): a
//! scenario grid run through stores sharded 1, 2 and 4 ways produces
//! bit-identical rows and the same `grid_digest`, cold and warm. Sharding
//! is a placement decision — it must never touch what is computed, how
//! cells are keyed, or what a warm run serves.
//!
//! This test lives in `bvl-bench` (not `bvl-lab`) because `grid_digest`
//! comes from `bvl-scenario`, which itself depends on `bvl-lab` — the lab
//! crate cannot depend back on it.

use bvl_bench::scn;
use bvl_lab::{run_grid, CodeFingerprint, OnStale, ShardedStore};
use bvl_obs::Registry;
use bvl_scenario::grid_digest;
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bvl-bench-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One grid's report rows: cell → row → field.
type GridRows = Vec<Vec<Vec<String>>>;

/// Cold + warm rows for `scenario`'s smoke grids under `shards` shards,
/// plus the digest of every compiled grid spec.
fn run_at(scenario: &str, shards: usize) -> (Vec<GridRows>, Vec<String>, usize, usize) {
    let compiled = scn::compiled(scenario, true);
    let dir = tmpdir(&format!("{scenario}-{shards}"));
    let store =
        ShardedStore::open(&dir, shards, CodeFingerprint::current(), OnStale::Error).unwrap();
    let reg = Registry::disabled();
    let (mut rows, mut digests, mut hits, mut misses) = (Vec::new(), Vec::new(), 0, 0);
    for pass in 0..2 {
        for (i, grid) in compiled.grids.iter().enumerate() {
            let rep = run_grid(&grid.spec, Some(&store), &reg, |cell, job| {
                scn::run_work(scn::work_for(grid, cell), cell, job, None).0
            })
            .unwrap();
            if pass == 0 {
                rows.push(rep.rows);
                digests.push(grid_digest(&grid.spec));
                misses += rep.misses;
            } else {
                // Warm pass: identical rows straight from the shards.
                assert_eq!(rep.rows, rows[i], "warm rows moved for grid {i}");
                hits += rep.hits;
            }
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
    (rows, digests, hits, misses)
}

#[test]
fn thm2_grids_are_bit_identical_at_1_2_and_4_shards() {
    let (rows1, digests1, hits1, misses1) = run_at("thm2", 1);
    assert!(misses1 > 0, "cold pass computes");
    assert_eq!(hits1, misses1, "warm pass hits every cell");
    for shards in [2usize, 4] {
        let (rows, digests, hits, misses) = run_at("thm2", shards);
        assert_eq!(rows, rows1, "rows diverged at {shards} shards");
        assert_eq!(digests, digests1, "grid digests diverged at {shards} shards");
        assert_eq!((hits, misses), (hits1, misses1), "cache behavior moved at {shards} shards");
    }
}

#[test]
fn faults_grids_are_bit_identical_at_1_2_and_4_shards() {
    let (rows1, digests1, _, _) = run_at("faults", 1);
    for shards in [2usize, 4] {
        let (rows, digests, _, _) = run_at("faults", shards);
        assert_eq!(rows, rows1, "rows diverged at {shards} shards");
        assert_eq!(digests, digests1, "grid digests diverged at {shards} shards");
    }
}

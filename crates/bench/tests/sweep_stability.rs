//! Seed stability of the sweep harness across worker-thread counts.
//!
//! The sweep module's contract: same `(domain, master seed, configuration
//! list)` ⇒ bit-identical results, regardless of `RAYON_NUM_THREADS`.
//! These tests run the same real workload sweep at 1, 2 and 4 threads and
//! compare every per-cell result field exactly.
//!
//! Kept as a single `#[test]` on purpose: the vendored rayon shim reads
//! `RAYON_NUM_THREADS` on every pool query, so the test mutates the
//! process environment — concurrent tests in this binary would race on it.

use bvl_bench::sweep::{sweep, sweep_captured};
use bvl_core::route_randomized;
use bvl_exec::RunOptions;
use bvl_logp::LogpParams;
use bvl_model::HRelation;
use rand::RngCore;

/// One sweep over a grid of (p, h) routing cells. Each cell consumes the
/// job's private RNG (relation draw + an extra digest word) and runs a
/// real randomized-routing machine, so the result captures both the RNG
/// stream and the engine schedule.
fn routing_sweep() -> Vec<(usize, u64, u64, f64, u64)> {
    let configs: Vec<(usize, usize)> =
        vec![(4, 2), (4, 5), (8, 3), (8, 6), (16, 2), (16, 8), (8, 12)];
    let report = sweep("sweep-stability", 77, configs, |(p, h), mut job| {
        let params = LogpParams::new(p, 16, 1, 2).unwrap();
        let rel = HRelation::random_exact(&mut job.rng, p, h);
        let rep = route_randomized(params, &rel, 2.0, &job.opts.clone().seed(job.index as u64))
            .expect("routes");
        let digest = job.rng.next_u64();
        (job.index, rep.time.get(), rep.stall_episodes, rep.beta_measured, digest)
    });
    report.results
}

#[test]
fn sweep_results_are_identical_across_thread_counts() {
    let run_at = |threads: &str| {
        std::env::set_var("RAYON_NUM_THREADS", threads);
        routing_sweep()
    };
    let t1 = run_at("1");
    let t2 = run_at("2");
    let t4 = run_at("4");
    assert_eq!(t1, t2, "1-thread vs 2-thread sweeps diverged");
    assert_eq!(t1, t4, "1-thread vs 4-thread sweeps diverged");

    // Results arrive in input order, independent of scheduling.
    let indices: Vec<usize> = t1.iter().map(|r| r.0).collect();
    assert_eq!(indices, (0..t1.len()).collect::<Vec<_>>());

    // The captured variant must not disturb determinism either: the
    // flagged cell's observability capture changes what is *recorded*,
    // never what is *computed*.
    std::env::set_var("RAYON_NUM_THREADS", "1");
    let capture = |flag: Option<usize>| {
        sweep_captured("sweep-stability-cap", 78, vec![(8usize, 4usize); 4], flag, 8, |(p, h), mut job| {
            let params = LogpParams::new(p, 16, 1, 2).unwrap();
            let rel = HRelation::random_exact(&mut job.rng, p, h);
            let opts: RunOptions = job.opts.clone().seed(job.index as u64);
            route_randomized(params, &rel, 2.0, &opts).expect("routes").time.get()
        })
    };
    let (plain, _) = capture(None);
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let (flagged, registry) = capture(Some(2));
    assert_eq!(plain.results, flagged.results);
    assert!(
        !registry.spans().is_empty(),
        "the flagged cell must actually record spans"
    );
    std::env::remove_var("RAYON_NUM_THREADS");
}

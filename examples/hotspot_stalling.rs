//! Explore the LogP stalling regime interactively (§2.2).
//!
//! Ramps up the load on a single hot-spot processor and prints how the
//! Stalling Rule behaves: senders lose cycles, per-message latency grows,
//! yet the hot spot drains at the full bandwidth limit `1/G` — which is why
//! the paper observes that "the LogP performance model would actually
//! encourage the use of stalling" for concentration patterns.
//!
//! ```sh
//! cargo run --release --example hotspot_stalling
//! ```

use bsp_vs_logp::core::stalling::hot_spot_study;
use bsp_vs_logp::logp::LogpParams;

fn main() {
    let p = 32;
    let params = LogpParams::new(p, 16, 1, 2).unwrap();
    println!(
        "LogP machine: p = {p}, L = {}, o = {}, G = {} (capacity {})",
        params.l,
        params.o,
        params.g,
        params.capacity()
    );
    println!();
    println!(
        "{:>10} {:>8} {:>10} {:>12} {:>12} {:>14}",
        "senders*k", "msgs", "makespan", "drain rate", "stall time", "mean latency"
    );
    for (senders, k) in [(2, 1), (4, 1), (8, 2), (16, 2), (31, 4), (31, 8)] {
        let rep = hot_spot_study(params, senders, k, 7).unwrap();
        println!(
            "{:>10} {:>8} {:>10} {:>12.3} {:>12} {:>14.1}",
            format!("{senders}x{k}"),
            rep.delivered,
            rep.makespan.get(),
            rep.drain_rate,
            rep.total_stall.get(),
            rep.mean_latency,
        );
    }
    println!();
    println!(
        "bandwidth limit at the hot spot: 1/G = {:.3} deliveries/step",
        1.0 / params.g as f64
    );
    println!("note how the drain rate approaches it while latency degrades —");
    println!("stalling wastes the senders' cycles, not the network's bandwidth.");
}

//! Quickstart: build both machines, run a kernel on each, then run the
//! paper's cross-simulations in both directions.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use bsp_vs_logp::core::{simulate_bsp_on_logp, simulate_logp_on_bsp, Theorem1Config, Theorem2Config};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::bsp::{BspMachine, BspParams, FnProcess, Status};
use bsp_vs_logp::logp::{LogpConfig, LogpMachine, LogpParams, Op, Script};
use bsp_vs_logp::model::{Payload, ProcId};

const P: usize = 16;

/// A BSP workload: every processor sends its id to its right neighbour for
/// four rounds and accumulates what it receives.
fn bsp_ring() -> Vec<FnProcess<i64>> {
    (0..P)
        .map(|_| {
            FnProcess::new(0i64, |acc, ctx| {
                if ctx.superstep_index() > 0 {
                    *acc += ctx.recv().unwrap().payload.expect_word();
                }
                if ctx.superstep_index() < 4 {
                    let right = ProcId(((ctx.me().0 as usize + 1) % ctx.p()) as u32);
                    ctx.send(right, Payload::word(0, ctx.me().0 as i64));
                    Status::Continue
                } else {
                    Status::Halt
                }
            })
        })
        .collect()
}

/// The same communication pattern written natively for LogP.
fn logp_ring() -> Vec<Script> {
    (0..P)
        .map(|i| {
            let mut ops = Vec::new();
            for r in 0..4 {
                ops.push(Op::Send {
                    dst: ProcId(((i + 1) % P) as u32),
                    payload: Payload::word(r, i as i64),
                });
                ops.push(Op::Recv);
            }
            Script::new(ops)
        })
        .collect()
}

fn main() {
    // Matched parameters: g = G = 4, l = L = 16 (o = 1).
    let bsp_params = BspParams::new(P, 4, 16).unwrap();
    let logp_params = LogpParams::new(P, 16, 1, 4).unwrap();

    // --- Native BSP run -------------------------------------------------
    let mut bsp_machine = BspMachine::new(bsp_params, bsp_ring());
    let bsp_report = bsp_machine.run(16).unwrap();
    println!("native BSP   : {} supersteps, cost {} (w + g*h + l summed)",
        bsp_report.supersteps, bsp_report.cost);

    // --- Native LogP run --------------------------------------------------
    let mut logp_machine =
        LogpMachine::with_config(logp_params, LogpConfig::stall_free(), logp_ring());
    let logp_report = logp_machine.run().unwrap();
    println!("native LogP  : makespan {} steps, {} messages, stall-free = {}",
        logp_report.makespan, logp_report.delivered, logp_report.stall_free());

    // --- LogP program hosted on BSP (Theorem 1) ---------------------------
    let t1 = simulate_logp_on_bsp(
        logp_params,
        bsp_params,
        logp_ring(),
        Theorem1Config::default(),
        &RunOptions::new(),
    )
    .unwrap();
    println!(
        "LogP on BSP  : hosted cost {}, slowdown {:.2} (Theorem 1 bound 1 + g/G + l/L = 3)",
        t1.bsp.cost,
        t1.bsp.cost.get() as f64 / logp_report.makespan.get() as f64
    );

    // --- BSP program hosted on LogP (Theorem 2) ---------------------------
    let t2 =
        simulate_bsp_on_logp(logp_params, bsp_ring(), Theorem2Config::default(), &RunOptions::new())
            .unwrap();
    println!(
        "BSP on LogP  : simulated time {}, native reference {}, slowdown {:.2}",
        t2.total,
        t2.native_total,
        t2.slowdown()
    );
    for (i, s) in t2.supersteps.iter().enumerate() {
        println!(
            "  superstep {i}: w={} h={} t_synch={} t_rout={} total={}",
            s.w, s.h, s.t_synch, s.t_rout, s.total
        );
    }

    // Results agree across all four executions.
    let native: Vec<i64> = bsp_machine
        .into_processes()
        .iter()
        .map(|p| *p.state())
        .collect();
    let hosted: Vec<i64> = t2.programs.iter().map(|p| *p.state()).collect();
    assert_eq!(native, hosted, "cross-simulation preserves results");
    println!("\nresults identical across native and cross-simulated runs ✓");
}

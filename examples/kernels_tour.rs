//! A tour of the algorithm kernels on both machines, with their model costs
//! side by side — the "algorithm design guided by asymptotic analysis" use
//! case the paper's comparison is ultimately about.
//!
//! ```sh
//! cargo run --release --example kernels_tour
//! ```

use bsp_vs_logp::algos::bsp::prefix::prefix_sums;
use bsp_vs_logp::algos::bsp::radix::radix_sort;
use bsp_vs_logp::algos::bsp::reduce::reduce;
use bsp_vs_logp::algos::logp::alltoall::all_to_all;
use bsp_vs_logp::algos::logp::reduce::tree_reduce;
use bsp_vs_logp::algos::logp::scan::scan;
use bsp_vs_logp::bsp::BspParams;
use bsp_vs_logp::logp::LogpParams;
use bsp_vs_logp::model::rngutil::SeedStream;
use bsp_vs_logp::model::Word;
use rand::Rng;

const P: usize = 32;

fn main() {
    // Matched machines: g = G = 2, l = L = 16, o = 1.
    let bsp = BspParams::new(P, 2, 16).unwrap();
    let logp = LogpParams::new(P, 16, 1, 2).unwrap();
    let values: Vec<Word> = (0..P as Word).map(|i| i * 7 % 23).collect();

    println!("machines: BSP(p={P}, g=2, l=16) vs LogP(p={P}, L=16, o=1, G=2, cap={})\n", logp.capacity());
    println!("{:<26} {:>14} {:>14}", "kernel", "BSP cost", "LogP makespan");

    // Reduction.
    let (bsp_sum, bsp_rep) = reduce(bsp, &values, |a, b| a + b).unwrap();
    let (logp_sum, logp_t) = tree_reduce(logp, &values, |a, b| a + b, 1).unwrap();
    assert_eq!(bsp_sum, logp_sum);
    println!("{:<26} {:>14} {:>14}", "reduce (+)", bsp_rep.cost.get(), logp_t.get());

    // Prefix sums.
    let (bsp_pfx, bsp_rep) = prefix_sums(bsp, &values).unwrap();
    let (logp_pfx, logp_t) = scan(logp, &values, |a, b| a + b, 2).unwrap();
    assert_eq!(bsp_pfx, logp_pfx);
    println!("{:<26} {:>14} {:>14}", "prefix sums", bsp_rep.cost.get(), logp_t.get());

    // All-to-all (LogP) vs the BSP superstep that prices the same relation.
    let data: Vec<Vec<Word>> = (0..P).map(|i| (0..P).map(|j| (i + j) as Word).collect()).collect();
    let (_, logp_t) = all_to_all(logp, &data, 3).unwrap();
    let bsp_cost = bsp.superstep_cost(P as u64 - 1, P as u64 - 1);
    println!(
        "{:<26} {:>14} {:>14}",
        "all-to-all (p-1 relation)",
        bsp_cost.get(),
        logp_t.get()
    );

    // Radix sort (BSP-only here; the LogP counting hazard is exp_radix's
    // story).
    let mut rng = SeedStream::new(4).derive("keys", 0);
    let keys: Vec<Vec<Word>> = (0..P)
        .map(|_| (0..32).map(|_| rng.gen_range(0..1 << 12)).collect())
        .collect();
    let mut want: Vec<Word> = keys.iter().flatten().copied().collect();
    want.sort_unstable();
    let (blocks, rep) = radix_sort(bsp, keys, 3).unwrap();
    let got: Vec<Word> = blocks.iter().flatten().copied().collect();
    assert_eq!(got, want);
    println!(
        "{:<26} {:>14} {:>14}",
        "radix sort (1024 keys)",
        rep.cost.get(),
        "-"
    );

    println!("\nnotes:");
    println!("- tree kernels on LogP beat their BSP twins here because every BSP");
    println!("  superstep pays the full barrier l while LogP pipelines within the");
    println!("  tree — the flip side of BSP's simpler reasoning;");
    println!("- the all-to-all comparison is the bandwidth-bound regime where both");
    println!("  models charge ~G·h = g·h and the abstractions converge, as the");
    println!("  paper's equivalence results predict.");
}

//! The model duel: one realistic workload (parallel sample sort over 8k
//! keys), written once against BSP, executed natively and then hosted on a
//! LogP machine through each §4 routing strategy.
//!
//! ```sh
//! cargo run --release --example samplesort_duel
//! ```

use bsp_vs_logp::algos::bsp::sort::sample_sort;
use bsp_vs_logp::bsp::{BspParams, FnProcess, Status};
use bsp_vs_logp::core::{simulate_bsp_on_logp, RoutingStrategy, SortScheme, Theorem2Config};
use bsp_vs_logp::exec::RunOptions;
use bsp_vs_logp::logp::LogpParams;
use bsp_vs_logp::model::rngutil::SeedStream;
use bsp_vs_logp::model::{Payload, ProcId, Word};
use rand::Rng;

const P: usize = 16;
const PER: usize = 512;

/// Sample sort as reusable process objects (same program for both hosts).
fn sort_procs(keys: &[Vec<Word>]) -> Vec<FnProcess<(Vec<Word>, Vec<Word>)>> {
    keys.iter()
        .map(|block| {
            let block = block.clone();
            FnProcess::new((block, Vec::new()), move |(mine, recvd), ctx| {
                let p = ctx.p();
                let me = ctx.me().index();
                match ctx.superstep_index() {
                    0 => {
                        mine.sort_unstable();
                        ctx.charge(mine.len() as u64);
                        for k in 1..p {
                            let idx = (k * mine.len()) / p;
                            ctx.send(ProcId(0), Payload::word(1, mine[idx.min(mine.len() - 1)]));
                        }
                        Status::Continue
                    }
                    1 => {
                        if me == 0 {
                            let mut samples: Vec<Word> = Vec::new();
                            while let Some(m) = ctx.recv() {
                                samples.push(m.payload.expect_word());
                            }
                            samples.sort_unstable();
                            ctx.charge(samples.len() as u64);
                            let splitters: Vec<Word> = (1..p)
                                .map(|k| samples[(k * samples.len() / p).min(samples.len() - 1)])
                                .collect();
                            for j in 0..p {
                                ctx.send(ProcId::from(j), Payload::words(2, &splitters));
                            }
                        }
                        Status::Continue
                    }
                    2 => {
                        let splitters = ctx.recv().expect("splitters").payload.data().to_vec();
                        for &key in mine.iter() {
                            let owner = splitters.partition_point(|&s| s < key);
                            ctx.send(ProcId::from(owner), Payload::word(3, key));
                        }
                        ctx.charge(mine.len() as u64);
                        Status::Continue
                    }
                    _ => {
                        while let Some(m) = ctx.recv() {
                            recvd.push(m.payload.expect_word());
                        }
                        recvd.sort_unstable();
                        ctx.charge(recvd.len() as u64);
                        Status::Halt
                    }
                }
            })
        })
        .collect()
}

fn main() {
    let mut rng = SeedStream::new(2026).derive("keys", 0);
    let keys: Vec<Vec<Word>> = (0..P)
        .map(|_| (0..PER).map(|_| rng.gen_range(-10_000..10_000)).collect())
        .collect();
    let mut expect: Vec<Word> = keys.iter().flatten().copied().collect();
    expect.sort_unstable();

    // Native BSP (g = 2, l = 32 — the LogP machine's G and L below).
    let bsp_params = BspParams::new(P, 2, 32).unwrap();
    let (blocks, report) = sample_sort(bsp_params, keys.clone()).unwrap();
    let got: Vec<Word> = blocks.iter().flatten().copied().collect();
    assert_eq!(got, expect);
    println!(
        "native BSP    : sorted {} keys in {} supersteps, cost {}",
        expect.len(),
        report.supersteps,
        report.cost
    );
    for r in &report.records {
        println!("  superstep {}: w={} h={} cost={}", r.index, r.w, r.h, r.cost);
    }

    // Hosted on LogP with each routing strategy.
    let logp_params = LogpParams::new(P, 32, 1, 2).unwrap();
    for (name, strategy) in [
        ("offline (known relation)", RoutingStrategy::Offline),
        ("randomized (Thm 3)", RoutingStrategy::Randomized { slack: 2.0 }),
        ("deterministic (Thm 2)", RoutingStrategy::Deterministic(SortScheme::Network)),
    ] {
        let rep = simulate_bsp_on_logp(
            logp_params,
            sort_procs(&keys),
            Theorem2Config { strategy },
            &RunOptions::new(),
        )
        .unwrap();
        let got: Vec<Word> = rep
            .programs
            .iter()
            .flat_map(|p| p.state().1.iter().copied())
            .collect();
        assert_eq!(got, expect, "{name}");
        println!(
            "LogP-hosted {name:>26}: simulated time {:>7}, slowdown vs native {:.2}",
            rep.total,
            rep.slowdown()
        );
    }
    println!("\nall four executions produced identical sorted output ✓");
}

//! Measure a network's `(γ, δ)` and derive the BSP/LogP parameters it
//! supports — the §5 workflow as a tool.
//!
//! ```sh
//! cargo run --release --example network_parameters -- hypercube 6
//! cargo run --release --example network_parameters -- mesh 8
//! cargo run --release --example network_parameters -- mot 8
//! cargo run --release --example network_parameters -- butterfly 4
//! ```

use bsp_vs_logp::net::{
    measure_parameters, Array, Butterfly, Ccc, Hypercube, MeshOfTrees, RouterConfig,
    ShuffleExchange, Topology,
};

fn build(kind: &str, size: usize) -> Box<dyn Topology> {
    match kind {
        "hypercube" => Box::new(Hypercube::new(size as u32)),
        "mesh" => Box::new(Array::mesh2d(size)),
        "mesh3d" => Box::new(Array::new(&[size, size, size])),
        "chain" => Box::new(Array::chain(size)),
        "butterfly" => Box::new(Butterfly::new(size as u32)),
        "ccc" => Box::new(Ccc::new(size as u32)),
        "shuffle" => Box::new(ShuffleExchange::new(size as u32)),
        "mot" => Box::new(MeshOfTrees::new(size)),
        other => panic!("unknown topology {other:?} (try: hypercube, mesh, mesh3d, chain, butterfly, ccc, shuffle, mot)"),
    }
}

fn main() {
    let mut args = std::env::args().skip(1);
    let kind = args.next().unwrap_or_else(|| "hypercube".into());
    let size: usize = args
        .next()
        .map(|s| s.parse().expect("size must be an integer"))
        .unwrap_or(6);

    let topo = build(&kind, size);
    println!("measuring {} ({} nodes, {} processors)...", topo.name(), topo.nodes(), topo.num_processors());

    let m = measure_parameters(
        topo.as_ref(),
        &[1, 2, 4, 8, 16],
        3,
        42,
        RouterConfig::default(),
    );
    println!();
    println!("fit T(h) = γ·h + δ over random exact h-relations:");
    for (h, t) in &m.samples {
        println!("  h = {h:>3}: mean completion {t:.1} steps");
    }
    println!();
    println!("  γ̂ = {:.2}   δ̂ = {:.2}   (R² = {:.3}; diameter bound {})", m.gamma, m.delta, m.r2, m.diameter_bound);
    println!();
    let g = m.gamma.max(1.0).round() as u64;
    let l = m.delta.max(1.0).round() as u64;
    println!("=> this network supports BSP with   g* ≈ {g}, ℓ* ≈ {l}");
    println!("=> and stall-free LogP with         G* ≈ {g}, L* ≈ {} (Observation 1: L* = Θ(ℓ* + g*))", l + g);
    println!("   capacity constraint ⌈L/G⌉ ≈ {}", (l + g).div_ceil(g));
}

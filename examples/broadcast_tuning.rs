//! Broadcast strategy tuning on both models — the bread-and-butter use of a
//! bridging model: predict which algorithm wins from the machine parameters
//! alone, then check by running.
//!
//! ```sh
//! cargo run --release --example broadcast_tuning
//! ```

use bsp_vs_logp::algos::bsp::bcast::{broadcast, predicted_cost, BcastStrategy};
use bsp_vs_logp::algos::logp::bcast::{direct_broadcast, optimal_broadcast};
use bsp_vs_logp::bsp::BspParams;
use bsp_vs_logp::logp::LogpParams;

fn main() {
    println!("--- BSP: direct (1 superstep, h = p-1) vs doubling (log p supersteps, h = 1)\n");
    println!(
        "{:>4} {:>4} {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>8}",
        "p", "g", "l", "direct pred", "direct run", "dbl pred", "dbl run", "winner"
    );
    for (p, g, l) in [
        (64usize, 1u64, 4u64),   // cheap bandwidth, cheap sync
        (64, 1, 400),            // expensive barrier -> direct wins
        (64, 40, 4),             // expensive bandwidth -> doubling wins
        (256, 4, 64),
    ] {
        let params = BspParams::new(p, g, l).unwrap();
        let (_, dir) = broadcast(params, 1, BcastStrategy::Direct).unwrap();
        let (_, dbl) = broadcast(params, 1, BcastStrategy::Doubling).unwrap();
        let winner = if dir.cost < dbl.cost { "direct" } else { "doubling" };
        println!(
            "{:>4} {:>4} {:>6} | {:>12} {:>12} | {:>12} {:>12} | {:>8}",
            p,
            g,
            l,
            predicted_cost(&params, BcastStrategy::Direct),
            dir.cost.get(),
            predicted_cost(&params, BcastStrategy::Doubling),
            dbl.cost.get(),
            winner
        );
    }

    println!("\n--- LogP: root-sends-all vs the Karp et al. optimal schedule\n");
    println!(
        "{:>4} {:>4} {:>3} {:>3} | {:>10} {:>12} {:>11}",
        "p", "L", "o", "G", "direct", "optimal", "speedup"
    );
    for (p, l, o, g) in [
        (16usize, 8u64, 1u64, 2u64),
        (64, 8, 1, 2),
        (64, 32, 2, 4),
        (256, 16, 1, 2),
    ] {
        let params = LogpParams::new(p, l, o, g).unwrap();
        let dir = direct_broadcast(params, 1, 1).unwrap();
        let opt = optimal_broadcast(params, 1, 1).unwrap();
        assert!(opt.complete);
        println!(
            "{:>4} {:>4} {:>3} {:>3} | {:>10} {:>12} {:>11.2}",
            p,
            l,
            o,
            g,
            dir.get(),
            opt.makespan.get(),
            dir.get() as f64 / opt.makespan.get() as f64
        );
    }
    println!("\n(the LogP optimal schedule's measured makespan equals its offline");
    println!(" prediction exactly — see bvl-algos tests — a nice check that the");
    println!(" machine implements the model the algorithm was designed for)");
}

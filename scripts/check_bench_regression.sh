#!/usr/bin/env bash
# Bench regression gates against the committed baselines.
#
# Gate 1 re-runs `bench_engine` and compares it to BENCH_engine.json.
# Absolute wall-clock is environment-dependent (the baseline records its
# own host), so the gate is on *same-host relative* numbers: the
# bucket-timeline speedup over the binary-heap timeline per workload, and
# the inline-vs-spill payload ratio. Each must stay within 5% of the
# committed value (lower bound only — getting faster is not a regression).
# The `scaling` block is gated structurally: every baseline `p` row must
# still be present and complete under 60 s, and the small-`p` rows
# (p <= 10^4, which are stable) must stay within 3x of baseline — large-`p`
# wall clock swings 2-4x with host noise, so only completion is gated
# there.
#
# Gate 2 re-runs the `exp_faults` conformance matrix and compares it to
# BENCH_faults.json *exactly*: verdicts, attempts, and clean/faulted step
# counts are virtual-time quantities, so any drift is a behavior change,
# not noise. The gate is skipped with a notice when no baseline is
# committed.
#
# Gate 3 checks the committed BENCH_obs.json records a passing acceptance
# block, then re-runs `bench_obs` in a scratch directory. The committed
# wall-clock numbers belong to another host, so nothing is diffed against
# them — the binary gates *same-host relative* overheads (off/counters/
# sampled vs an uninstrumented baseline) itself and exits non-zero past
# the limits. Skipped with a notice when no baseline is committed.
#
# Gate 4 runs `lab audit` over the committed BENCH_faults.json: every row
# must respect the provable communication lower bounds (DESIGN.md §15).
# Skipped with a notice when no baseline is committed.
#
# Gate 5 checks the committed BENCH_serve.json records a passing serve
# acceptance block (concurrent-client floor, p99, error rate, replication
# digests), then re-runs `bench_serve --smoke` in a scratch directory —
# the binary gates its own same-host acceptance and exits non-zero on
# failure. Skipped with a notice when no baseline is committed.
#
# Gate 6 checks the committed BENCH_sort.json records a passing sample-
# sort acceptance block (every cell sorted, cross-simulation under the
# Theorem 2 envelope), audits it through the generic `lab audit --bench`
# acceptance path, and re-runs `exp_sort --smoke` in a scratch directory —
# the binary gates its own sortedness/envelope acceptance and exits
# non-zero on failure. Skipped with a notice when no baseline is
# committed.
#
# The committed BENCH_engine.json is restored afterwards; regenerating the
# baselines themselves is `scripts/regen_experiments.sh`'s job.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(mktemp)
faults_work=""
obs_work=""
serve_work=""
sort_work=""
cp BENCH_engine.json "$baseline"
restore() {
    cp "$baseline" BENCH_engine.json
    rm -f "$baseline"
    if [[ -n "$faults_work" ]]; then rm -rf "$faults_work"; fi
    if [[ -n "$obs_work" ]]; then rm -rf "$obs_work"; fi
    if [[ -n "$serve_work" ]]; then rm -rf "$serve_work"; fi
    if [[ -n "$sort_work" ]]; then rm -rf "$sort_work"; fi
}
trap restore EXIT

cargo run -q --release -p bvl-bench --bin bench_engine >/dev/null

python3 - "$baseline" <<'PY'
import json, sys

base = json.load(open(sys.argv[1]))
cur = json.load(open("BENCH_engine.json"))
TOL = 0.95  # current relative speedup must be >= 95% of baseline

fail = False
base_tl = {row["workload"]: row for row in base["timeline"]}
for row in cur["timeline"]:
    b = base_tl.get(row["workload"])
    if b is None:
        continue
    limit = b["speedup"] * TOL
    ok = row["speedup"] >= limit
    fail |= not ok
    print(f'{"PASS" if ok else "FAIL"} timeline/{row["workload"]}: '
          f'bucket speedup {row["speedup"]:.2f}x vs baseline {b["speedup"]:.2f}x '
          f'(floor {limit:.2f}x)')

def payload_ratio(doc):
    ns = {row["case"]: row["ns_per_op"] for row in doc["payload"]}
    return ns["spill_12w"] / ns["inline_6w"]

b_ratio, c_ratio = payload_ratio(base), payload_ratio(cur)
limit = b_ratio * TOL
ok = c_ratio >= limit
fail |= not ok
print(f'{"PASS" if ok else "FAIL"} payload: spill/inline ratio {c_ratio:.2f} '
      f'vs baseline {b_ratio:.2f} (floor {limit:.2f})')

if "scaling" in base:
    SMALL_P, SMALL_TOL, BUDGET_MS = 10_000, 3.0, 60_000.0
    b_rows = {row["p"]: row["ms"] for row in base["scaling"]["single_shard"]}
    c_rows = {row["p"]: row["ms"] for row in cur.get("scaling", {}).get("single_shard", [])}
    for p in sorted(b_rows):
        if p not in c_rows:
            print(f"FAIL scaling/p={p}: row missing from current run")
            fail = True
            continue
        ms = c_rows[p]
        if ms > BUDGET_MS:
            print(f"FAIL scaling/p={p}: {ms:.0f} ms exceeds the {BUDGET_MS:.0f} ms budget")
            fail = True
        elif p <= SMALL_P and ms > b_rows[p] * SMALL_TOL:
            print(f"FAIL scaling/p={p}: {ms:.2f} ms vs baseline {b_rows[p]:.2f} ms "
                  f"(ceiling {SMALL_TOL:.0f}x)")
            fail = True
        else:
            print(f"PASS scaling/p={p}: {ms:.2f} ms (baseline {b_rows[p]:.2f} ms)")

sys.exit(1 if fail else 0)
PY
echo "bench_engine regression gate: PASS (committed baseline restored)"

if [[ ! -f BENCH_faults.json ]]; then
    echo "notice: no committed BENCH_faults.json baseline; skipping fault-conformance gate"
else

# Run the full matrix in a scratch directory so the committed baseline and
# any working-tree fault-repros.txt stay untouched. `exp_faults` writes its
# JSON before exiting non-zero on failing cases, so the exact diff below
# sees verdict flips either way.
faults_work=$(mktemp -d)
repo_root=$PWD
(cd "$faults_work" && \
    cargo run -q --release --manifest-path "$repo_root/Cargo.toml" \
        -p bvl-bench --bin exp_faults >/dev/null 2>&1) || true

python3 - "$faults_work/BENCH_faults.json" <<'PY'
import json, os, sys

path = sys.argv[1]
if not os.path.exists(path):
    print("FAIL faults: exp_faults produced no BENCH_faults.json")
    sys.exit(1)

base = json.load(open("BENCH_faults.json"))
cur = json.load(open(path))
key = lambda r: (r["sim"], r["p"], r["h"], r["plan"])
b = {key(r): r for r in base["rows"]}
c = {key(r): r for r in cur["rows"]}

fail = False
for k in sorted(b.keys() | c.keys()):
    name = "{}/p{}/h{}/{}".format(*k)
    if k not in c:
        print(f"FAIL faults/{name}: case missing from current run")
        fail = True
        continue
    if k not in b:
        print(f"FAIL faults/{name}: case absent from baseline")
        fail = True
        continue
    diffs = [
        f"{f} {b[k][f]} -> {c[k][f]}"
        for f in ("clean", "faulted", "attempts", "ok")
        if b[k][f] != c[k][f]
    ]
    if diffs:
        print(f"FAIL faults/{name}: " + ", ".join(diffs))
        fail = True

if fail:
    sys.exit(1)
print(f"PASS faults: {len(b)} cases bit-identical to baseline")
PY
echo "exp_faults conformance gate: PASS (exact match)"

fi # BENCH_faults.json gate

# Gate 4: the communication lower-bound audit over the committed fault
# baselines (DESIGN.md §15). The bounds are theorems — delay-only faults
# can never speed a run up; the routers' clean legs pay (h-1)·G + L — so
# a baseline below them records a simulator bug, whatever it was diffed
# against. Skipped with a notice when no baseline is committed.
if [[ -f BENCH_faults.json ]]; then
    cargo run -q --release -p bvl-bench --bin lab -- audit --bench BENCH_faults.json
    echo "lower-bound audit gate: PASS (BENCH_faults.json respects the proven bounds)"
else
    echo "notice: no committed BENCH_faults.json baseline; skipping lower-bound audit gate"
fi

if [[ ! -f BENCH_obs.json ]]; then
    echo "notice: no committed BENCH_obs.json baseline; skipping obs-overhead gate"
else

# The committed baseline must itself record a passing acceptance block —
# a red baseline should never be committable by accident.
python3 - <<'PY'
import json, sys

acc = json.load(open("BENCH_obs.json"))["acceptance"]
if not acc.get("pass", False):
    print("FAIL obs: committed BENCH_obs.json records a failing acceptance block")
    sys.exit(1)
print(f'PASS obs baseline: worst off {acc["off_overhead_worst_pct"]:+.2f}% '
      f'(limit {acc["off_overhead_limit_pct"]:.0f}%), '
      f'counters {acc["counters_overhead_worst_pct"]:+.2f}% '
      f'(limit {acc["counters_overhead_limit_pct"]:.0f}%), '
      f'sampled {acc["sampled_overhead_worst_pct"]:+.2f}% '
      f'(limit {acc["sampled_overhead_limit_pct"]:.0f}%)')
PY

# Re-run in a scratch directory so the committed baseline stays untouched.
# bench_obs gates its own same-host relative overheads and exits non-zero
# past the limits; its per-workload rows go to stderr for the log.
obs_work=$(mktemp -d)
repo_root=$PWD
(cd "$obs_work" && \
    cargo run -q --release --manifest-path "$repo_root/Cargo.toml" \
        -p bvl-bench --bin bench_obs >/dev/null)
echo "bench_obs overhead gate: PASS (tiered overheads within limits on this host)"

fi # BENCH_obs.json gate

# Gate 5: the committed BENCH_serve.json must record a passing acceptance
# block — in particular ≥ its own min_concurrent_clients floor held
# simultaneously, p99 and error rate under the recorded limits, and the
# replication digests matching. The committed wall-clock numbers belong to
# another host, so nothing is diffed against them; instead `bench_serve
# --smoke` re-proves the front end on this host in a scratch directory
# (it gates its own same-host p99/error-rate/replication acceptance and
# exits non-zero on failure). Skipped with a notice when no baseline is
# committed.
if [[ ! -f BENCH_serve.json ]]; then
    echo "notice: no committed BENCH_serve.json baseline; skipping serve gate"
else

python3 - <<'PY'
import json, sys

doc = json.load(open("BENCH_serve.json"))
acc = doc["acceptance"]
fail = False
if not acc.get("pass", False):
    print("FAIL serve: committed BENCH_serve.json records a failing acceptance block")
    fail = True
floor = acc.get("min_concurrent_clients", 0)
held = acc.get("concurrent_clients", 0)
if held < floor:
    print(f"FAIL serve: baseline held {held} concurrent clients, floor is {floor}")
    fail = True
if fail:
    sys.exit(1)
print(f'PASS serve baseline: {held} concurrent clients (floor {floor}), '
      f'p99 {acc["p99_ms"]:.2f} ms (limit {acc["p99_limit_ms"]:.0f} ms), '
      f'error rate {acc["error_rate"]:.4f} (limit {acc["error_rate_limit"]:.4f}), '
      f'replication match {acc["replication_digest_match"]}')
PY

serve_work=$(mktemp -d)
repo_root=$PWD
(cd "$serve_work" && \
    cargo run -q --release --manifest-path "$repo_root/Cargo.toml" \
        -p bvl-bench --bin bench_serve -- --smoke >/dev/null)
echo "bench_serve gate: PASS (front end holds its smoke acceptance on this host)"

fi # BENCH_serve.json gate

# Gate 6: the committed BENCH_sort.json must record a passing sample-sort
# acceptance block — every cell sorted, every cross-simulation under its
# Theorem 2 envelope, and the worst 1-optimality ratio at or above the
# recorded floor. The per-cell costs are virtual-time quantities, but the
# committed grid belongs to a fixed seed set, so nothing is diffed here;
# `lab audit --bench` re-checks the acceptance gates and `exp_sort
# --smoke` re-proves the study in a scratch directory (it self-gates
# sortedness and the envelope and exits non-zero on failure). Skipped
# with a notice when no baseline is committed.
if [[ ! -f BENCH_sort.json ]]; then
    echo "notice: no committed BENCH_sort.json baseline; skipping sample-sort gate"
else

python3 - <<'PY'
import json, sys

acc = json.load(open("BENCH_sort.json"))["acceptance"]
fail = False
if not acc.get("pass", False):
    print("FAIL sort: committed BENCH_sort.json records a failing acceptance block")
    fail = True
for gate in ("sorted_ok", "envelope_ok"):
    if not acc.get(gate, False):
        print(f"FAIL sort: committed baseline has {gate} = false")
        fail = True
floor = acc.get("ratio_floor", 1.0)
worst = acc.get("worst_ratio", 0.0)
if worst < floor:
    print(f"FAIL sort: worst 1-optimality ratio {worst} below the floor {floor}")
    fail = True
if fail:
    sys.exit(1)
print(f'PASS sort baseline: {acc["cells"]} cells, all sorted, '
      f'worst ratio {worst:.2f} (floor {floor:.2f}), envelope holds')
PY

cargo run -q --release -p bvl-bench --bin lab -- audit --bench BENCH_sort.json

sort_work=$(mktemp -d)
repo_root=$PWD
(cd "$sort_work" && \
    cargo run -q --release --manifest-path "$repo_root/Cargo.toml" \
        -p bvl-bench --bin exp_sort -- --smoke >/dev/null)
echo "exp_sort gate: PASS (sample-sort acceptance holds on this host)"

fi # BENCH_sort.json gate

#!/usr/bin/env bash
# Engine-performance regression gate against the committed baseline.
#
# Re-runs `bench_engine` and compares it to BENCH_engine.json. Absolute
# wall-clock is environment-dependent (the baseline records its own host),
# so the gate is on *same-host relative* numbers: the bucket-timeline
# speedup over the binary-heap timeline per workload, and the inline-vs-
# spill payload ratio. Each must stay within 5% of the committed value
# (lower bound only — getting faster is not a regression).
#
# The committed BENCH_engine.json is restored afterwards; regenerating the
# baseline itself is `scripts/regen_experiments.sh`'s job.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=$(mktemp)
cp BENCH_engine.json "$baseline"
restore() { cp "$baseline" BENCH_engine.json; rm -f "$baseline"; }
trap restore EXIT

cargo run -q --release -p bvl-bench --bin bench_engine >/dev/null

python3 - "$baseline" <<'PY'
import json, sys

base = json.load(open(sys.argv[1]))
cur = json.load(open("BENCH_engine.json"))
TOL = 0.95  # current relative speedup must be >= 95% of baseline

fail = False
base_tl = {row["workload"]: row for row in base["timeline"]}
for row in cur["timeline"]:
    b = base_tl.get(row["workload"])
    if b is None:
        continue
    limit = b["speedup"] * TOL
    ok = row["speedup"] >= limit
    fail |= not ok
    print(f'{"PASS" if ok else "FAIL"} timeline/{row["workload"]}: '
          f'bucket speedup {row["speedup"]:.2f}x vs baseline {b["speedup"]:.2f}x '
          f'(floor {limit:.2f}x)')

def payload_ratio(doc):
    ns = {row["case"]: row["ns_per_op"] for row in doc["payload"]}
    return ns["spill_12w"] / ns["inline_6w"]

b_ratio, c_ratio = payload_ratio(base), payload_ratio(cur)
limit = b_ratio * TOL
ok = c_ratio >= limit
fail |= not ok
print(f'{"PASS" if ok else "FAIL"} payload: spill/inline ratio {c_ratio:.2f} '
      f'vs baseline {b_ratio:.2f} (floor {limit:.2f})')

sys.exit(1 if fail else 0)
PY
echo "bench_engine regression gate: PASS (committed baseline restored)"

#!/usr/bin/env bash
# Regenerate the "Raw outputs" appendix of EXPERIMENTS.md from the exp-*
# binaries. Run from the repository root.
set -euo pipefail
out=$(mktemp)
one=$(mktemp)
# A full exp_sort run also rewrites the BENCH_sort.json baseline (gate 6
# of scripts/check_bench_regression.sh) as a side effect.
for b in table1 thm1 cb thm2 thm3 stalling anomalies xover partition radix ablation stack faults sort stream bsf; do
  echo "### Output: exp_$b" >> "$out"
  echo '```' >> "$out"
  # Fail loudly: a non-zero exit from any experiment aborts the whole
  # regeneration (set -e), with the culprit named.
  if ! cargo run -q --release -p bvl-bench --bin "exp_$b" > "$one"; then
    echo "FATAL: exp_$b exited non-zero" >&2
    exit 1
  fi
  cat "$one" >> "$out"
  # Every experiment ends with one machine-greppable summary line
  # (makespan, stall episodes, max buffer, attribution residual, ...);
  # surface it on the console and fail if it is missing.
  if ! grep '^SUMMARY' "$one"; then
    echo "FATAL: exp_$b printed no SUMMARY line" >&2
    exit 1
  fi
  echo '```' >> "$out"
  echo >> "$out"
done
rm -f "$one"
# Replace everything after the appendix marker.
marker='(`scripts/regen_experiments.sh` regenerates this file).'
python3 - "$out" <<'PY'
import sys, pathlib
appendix = pathlib.Path(sys.argv[1]).read_text()
p = pathlib.Path("EXPERIMENTS.md")
text = p.read_text()
marker = "(`scripts/regen_experiments.sh` regenerates this file)."
head = text.split(marker)[0] + marker + "\n\n"
p.write_text(head + appendix)
PY
echo "EXPERIMENTS.md appendix regenerated."

# Engine perf snapshot: the event-queue/payload micro-bench feeds its
# measurements into the machine-readable BENCH_engine.json next to the
# whole-machine and sweep-level numbers (wall-clock — not diffed above).
mini=$(mktemp)
CRITERION_MINI_JSON="$mini" cargo bench -q -p bvl-bench --bench event_queue >/dev/null
CRITERION_JSONL="$mini" cargo run -q --release -p bvl-bench --bin bench_engine >/dev/null
rm -f "$mini"
echo "BENCH_engine.json regenerated."

# Observability overhead gate: baseline vs the tier ladder (off /
# counters / sampled / full), written to BENCH_obs.json; exits non-zero
# past the limits (off <= 2%, counters <= 4%, sampled <= 8%).
cargo run -q --release -p bvl-bench --bin bench_obs >/dev/null
echo "BENCH_obs.json regenerated."

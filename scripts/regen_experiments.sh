#!/usr/bin/env bash
# Regenerate the "Raw outputs" appendix of EXPERIMENTS.md from the exp-*
# binaries. Run from the repository root.
set -euo pipefail
out=$(mktemp)
for b in table1 thm1 cb thm2 thm3 stalling anomalies xover partition radix ablation; do
  echo "### Output: exp_$b" >> "$out"
  echo '```' >> "$out"
  cargo run -q --release -p bvl-bench --bin "exp_$b" >> "$out"
  echo '```' >> "$out"
  echo >> "$out"
done
# Replace everything after the appendix marker.
marker='(`scripts/regen_experiments.sh` regenerates this file).'
python3 - "$out" <<'PY'
import sys, pathlib
appendix = pathlib.Path(sys.argv[1]).read_text()
p = pathlib.Path("EXPERIMENTS.md")
text = p.read_text()
marker = "(`scripts/regen_experiments.sh` regenerates this file)."
head = text.split(marker)[0] + marker + "\n\n"
p.write_text(head + appendix)
PY
echo "EXPERIMENTS.md appendix regenerated."

# Engine perf snapshot: the event-queue/payload micro-bench feeds its
# measurements into the machine-readable BENCH_engine.json next to the
# whole-machine and sweep-level numbers (wall-clock — not diffed above).
mini=$(mktemp)
CRITERION_MINI_JSON="$mini" cargo bench -q -p bvl-bench --bench event_queue >/dev/null
CRITERION_JSONL="$mini" cargo run -q --release -p bvl-bench --bin bench_engine >/dev/null
rm -f "$mini"
echo "BENCH_engine.json regenerated."

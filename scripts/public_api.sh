#!/usr/bin/env bash
# Public-API inventory, diffed in CI against docs/public-api.txt so surface
# changes must be committed deliberately (and reviewed as such).
#
# cargo public-api needs a nightly toolchain and network access, neither of
# which this environment has, so the inventory is textual: every `pub` item
# declaration in library source, with file (not line) attribution so that
# moves within a file don't churn the diff. Noise (a `pub fn` in a private
# module) is acceptable — the gate is deterministic, and a reviewer reads
# the diff, not the absolute listing.
#
# Usage:
#   scripts/public_api.sh                      # print inventory
#   scripts/public_api.sh > docs/public-api.txt   # accept current surface
set -euo pipefail
cd "$(dirname "$0")/.."

grep -rn --include='*.rs' -E '^[[:space:]]*pub (fn|struct|enum|trait|type|const|static|mod|use)[[:space:](]' \
    crates/*/src src \
  | sed -E 's/^([^:]+):[0-9]+:[[:space:]]*/\1: /' \
  | sed -E 's/[[:space:]]+/ /g; s/ \{.*$//; s/;.*$//; s/ where .*$//' \
  | LC_ALL=C sort -u
